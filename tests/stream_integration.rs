//! Cross-layer agreement: the streaming engine's online filter must make
//! the same keep/drop decisions as the sequential relational `Executor`
//! running the same Q2-style selection with the MC baseline.
//!
//! The test relation uses well-separated clusters (TEP ≈ 0 or ≈ 1) so the
//! decision is statistically forced for both systems: any disagreement is
//! an engine bug, not sampling noise.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_uncertain::prelude::*;

fn acc() -> AccuracyRequirement {
    AccuracyRequirement::new(0.2, 0.05, 0.0, Metric::Ks).unwrap()
}

/// Cluster means: even tuples sit far below the predicate window, odd
/// tuples inside it.
fn cluster_mu(i: usize) -> f64 {
    if i.is_multiple_of(2) {
        0.0
    } else {
        5.0
    }
}

#[test]
fn stream_filter_decisions_agree_with_executor_mc_baseline() {
    let n = 64usize;
    let pred = Predicate::new(4.0, 6.0, 0.5).unwrap();

    // --- Sequential baseline: Executor::select over a finite relation. ---
    let schema = Schema::new(&["objID", "z"]);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: cluster_mu(i),
                    sigma: 0.1,
                },
            ])
        })
        .collect();
    let rel = Relation::new(schema, tuples).unwrap();
    let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
    let call = UdfCall::resolve(udf.clone(), rel.schema(), &["z"]).unwrap();
    let mut executor = Executor::new(EvalStrategy::Mc, acc(), &call, 10.0).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let rows = executor.select(&rel, &call, &pred, &mut rng).unwrap();
    let executor_kept: Vec<usize> = rows.iter().map(|r| r.source).collect();

    // --- Streaming engine: same tuples, same predicate, MC strategy. ---
    let stream_tuples: Vec<InputDistribution> = (0..n)
        .map(|i| InputDistribution::diagonal_gaussian(&[(cluster_mu(i), 0.1)]).unwrap())
        .collect();
    let mut session = Session::new(EngineConfig::new().workers(2).batch_size(16).seed(23));
    let q = session
        .subscribe(
            QuerySpec::new("sel", udf, acc(), StreamStrategy::Mc)
                .predicate(pred)
                .record_decisions(),
        )
        .unwrap();
    session.run(VecSource::new(stream_tuples), None).unwrap();

    let stream_kept: Vec<usize> = session
        .decisions(q)
        .unwrap()
        .expect("decisions recorded")
        .iter()
        .filter(|(_, kept)| *kept)
        .map(|(gidx, _)| *gidx as usize)
        .collect();

    assert_eq!(
        stream_kept, executor_kept,
        "stream engine and sequential executor disagree on kept tuples"
    );
    // And both must match the ground truth: exactly the odd tuples.
    let want: Vec<usize> = (0..n).filter(|i| i % 2 == 1).collect();
    assert_eq!(stream_kept, want);

    // Stats agree with the decision log.
    let stats = session.stats(q).unwrap();
    assert_eq!(stats.kept as usize, want.len());
    assert_eq!(stats.filtered as usize, n - want.len());
    assert_eq!(
        executor.stats().tuples_out as usize,
        want.len(),
        "executor baseline emitted an unexpected row count"
    );
}

#[test]
fn stream_gp_selection_agrees_with_executor_on_forced_decisions() {
    // GP path: impossible predicate (outside the UDF's range) must filter
    // everything in both systems; a covering predicate must keep all.
    let n = 24usize;
    let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
    let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();

    let schema = Schema::new(&["objID", "z"]);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 1.0 + 0.2 * i as f64,
                    sigma: 0.2,
                },
            ])
        })
        .collect();
    let rel = Relation::new(schema, tuples).unwrap();
    let call = UdfCall::resolve(udf.clone(), rel.schema(), &["z"]).unwrap();

    let impossible = Predicate::new(5.0, 6.0, 0.1).unwrap();
    let covering = Predicate::new(-2.0, 2.0, 0.5).unwrap();

    let mut rng = StdRng::seed_from_u64(31);
    let mut ex1 = Executor::new(EvalStrategy::Gp, acc, &call, 2.0).unwrap();
    assert!(ex1
        .select(&rel, &call, &impossible, &mut rng)
        .unwrap()
        .is_empty());
    let mut ex2 = Executor::new(EvalStrategy::Gp, acc, &call, 2.0).unwrap();
    assert_eq!(
        ex2.select(&rel, &call, &covering, &mut rng).unwrap().len(),
        n
    );

    let make_tuples = || -> Vec<InputDistribution> {
        (0..n)
            .map(|i| InputDistribution::diagonal_gaussian(&[(1.0 + 0.2 * i as f64, 0.2)]).unwrap())
            .collect()
    };
    for (pred, want_kept) in [(impossible, 0u64), (covering, n as u64)] {
        let mut session = Session::new(EngineConfig::new().workers(4).batch_size(8).seed(3));
        let q = session
            .subscribe(
                QuerySpec::new("gp-sel", udf.clone(), acc, StreamStrategy::Gp)
                    .output_range(2.0)
                    .predicate(pred),
            )
            .unwrap();
        session.run(VecSource::new(make_tuples()), None).unwrap();
        let stats = session.stats(q).unwrap();
        assert_eq!(stats.kept, want_kept, "predicate {pred:?}");
    }
}
