//! Cross-crate integration tests: the full pipeline from uncertain relations
//! through OLGAPRO to filtered query results, validated against
//! ground-truth Monte Carlo at scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_uncertain::prelude::*;
use udf_workloads::astro::{Cosmology, GalAge, GalaxyCatalog};
use udf_workloads::synthetic::{generate_inputs, InputKind, PaperFunction};

fn accuracy(eps: f64) -> AccuracyRequirement {
    AccuracyRequirement::new(eps, 0.05, 0.02, Metric::Discrepancy).unwrap()
}

/// The headline guarantee, for every paper function:
///
/// 1. the reported error bound dominates the realized λ-discrepancy against
///    a huge direct-MC reference (bound honesty, Theorem 4.1), and
/// 2. once OLGAPRO reports a bound within ε, the realized error is within ε.
///
/// The spiky functions legitimately need many training points (the paper's
/// Fig 5(a) shows F4 needing > 300), so the stream is replayed until a full
/// pass adds no training points ("at convergence", §5.4), with λ = 5% of
/// the range to keep test time moderate.
#[test]
fn olgapro_meets_accuracy_on_all_paper_functions() {
    for pf in PaperFunction::ALL {
        let f = pf.instantiate(1);
        let range = f.output_range();
        let eps = 0.2;
        let acc = AccuracyRequirement::new(eps, 0.05, 0.05 * range, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, range).unwrap();
        let udf = BlackBoxUdf::new(std::sync::Arc::new(f.clone()), CostModel::Free);
        let mut olga = Olgapro::new(udf.clone(), cfg);
        let mut rng = StdRng::seed_from_u64(42);

        let inputs = generate_inputs(InputKind::Gaussian, 1, 6, 0.5, &mut rng);
        // Replay the stream until convergence (no additions in a pass).
        for _pass in 0..12 {
            let before = olga.stats().points_added;
            for input in &inputs {
                olga.process(input, &mut rng).unwrap();
            }
            if olga.stats().points_added == before {
                break;
            }
        }
        let mut converged_inputs = 0;
        for (i, input) in inputs.iter().enumerate() {
            let out = olga.process(input, &mut rng).unwrap();
            let mut truth_rng = StdRng::seed_from_u64(1000 + i as u64);
            let samples: Vec<f64> = (0..30_000)
                .map(|_| {
                    let x = input.sample(&mut truth_rng);
                    udf_core::udf::UdfFunction::eval(&f, &x)
                })
                .collect();
            let truth = Ecdf::new(samples).unwrap();
            let d = udf_prob::metrics::lambda_discrepancy(&out.y_hat, &truth, acc.lambda);
            // Bound honesty (small slack for the reference's own noise).
            assert!(
                d <= out.error_bound() + 0.05,
                "{pf:?} input {i}: realized {d} exceeds reported bound {}",
                out.error_bound()
            );
            // Guarantee once the budget is met.
            if out.error_bound() <= eps {
                converged_inputs += 1;
                assert!(
                    d <= eps + 0.02,
                    "{pf:?} input {i}: λ-discrepancy {d} exceeds ε = {eps}"
                );
            }
        }
        // Flat functions converge on essentially every input; the spiky
        // ones force a short global lengthscale and legitimately need far
        // more training data (Fig 5a/5h), so within the test's 12-pass
        // budget only a subset of their inputs reaches the ε target.
        assert!(
            converged_inputs >= (inputs.len() / 3).max(1),
            "{pf:?}: only {converged_inputs}/{} inputs converged",
            inputs.len()
        );
    }
}

/// MC and GP agree on the same query answers (medians within the combined
/// error budgets).
#[test]
fn mc_and_gp_agree_on_medians() {
    let f = PaperFunction::F3.instantiate(2);
    let range = f.output_range();
    let udf = BlackBoxUdf::new(std::sync::Arc::new(f), CostModel::Free);
    let acc = AccuracyRequirement::new(0.1, 0.05, 0.01 * range, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, range).unwrap();
    let mc = McEvaluator::new(udf.fork_counter());
    let mut olga = Olgapro::new(udf.fork_counter(), cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let inputs = generate_inputs(InputKind::Gaussian, 2, 5, 0.5, &mut rng);
    for input in &inputs {
        let a = mc.compute(input, &acc, &mut rng).unwrap();
        let b = olga.process(input, &mut rng).unwrap();
        let (qa, qb) = (a.ecdf.quantile(0.5), b.y_hat.quantile(0.5));
        assert!(
            (qa - qb).abs() <= 0.2 * range,
            "medians diverge: MC {qa} vs GP {qb} (range {range})"
        );
    }
}

/// End-to-end Q1 on the astro catalog: ages decrease with redshift.
#[test]
fn q1_galage_monotone_in_redshift() {
    let mut rng = StdRng::seed_from_u64(2013);
    let catalog = GalaxyCatalog::generate(8, &mut rng);
    let cosmology = Cosmology::default();
    let schema = Schema::new(&["objID", "redshift"]);
    let mut rows: Vec<_> = catalog.rows().to_vec();
    rows.sort_by(|a, b| a.z_mean.partial_cmp(&b.z_mean).unwrap());
    let tuples: Vec<Tuple> = rows
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    let galaxy = Relation::new(schema, tuples).unwrap();
    let galage = BlackBoxUdf::new(std::sync::Arc::new(GalAge(cosmology)), CostModel::Free);
    let call = UdfCall::resolve(galage, galaxy.schema(), &["redshift"]).unwrap();
    let mut ex = Executor::new(EvalStrategy::Gp, accuracy(0.1), &call, 1.0).unwrap();
    let out = ex.project(&galaxy, &call, &mut rng).unwrap();
    // Tuples are sorted by redshift; median ages must be non-increasing
    // (modulo the accuracy budget).
    let medians: Vec<f64> = out.iter().map(|r| r.output.ecdf.quantile(0.5)).collect();
    for w in medians.windows(2) {
        assert!(
            w[1] <= w[0] + 0.05,
            "age should decrease with redshift: {medians:?}"
        );
    }
}

/// Filtering soundness at scale: tuples whose true TEP is comfortably above
/// θ are never dropped by either path.
#[test]
fn filtering_never_drops_clearly_passing_tuples() {
    let f = PaperFunction::F1.instantiate(1);
    let range = f.output_range();
    let udf = BlackBoxUdf::new(std::sync::Arc::new(f.clone()), CostModel::Free);
    let acc = AccuracyRequirement::new(0.1, 0.05, 0.01 * range, Metric::Discrepancy).unwrap();
    let pred = Predicate::new(-1.0, range * 2.0, 0.2).unwrap(); // always true
    let mut rng = StdRng::seed_from_u64(3);
    let inputs = generate_inputs(InputKind::Gaussian, 1, 5, 0.5, &mut rng);

    for input in &inputs {
        let d = udf_core::filtering::mc_filtered(&udf, input, &acc, &pred, &mut rng).unwrap();
        assert!(!d.is_filtered(), "MC dropped a certain tuple");
    }
    let cfg = OlgaproConfig::new(acc, range).unwrap();
    let mut olga = Olgapro::new(udf.fork_counter(), cfg);
    for input in &inputs {
        let d = udf_core::filtering::gp_filtered(&mut olga, input, &pred, &mut rng).unwrap();
        assert!(!d.is_filtered(), "GP dropped a certain tuple");
    }
}

/// The Theorem 4.1 error bound reported by OLGAPRO is itself an upper bound
/// on the realized error (with the configured confidence; checked with slack).
#[test]
fn reported_bound_dominates_realized_error() {
    let f = PaperFunction::F3.instantiate(1);
    let range = f.output_range();
    let acc = AccuracyRequirement::new(0.15, 0.05, 0.01 * range, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, range).unwrap();
    let udf = BlackBoxUdf::new(std::sync::Arc::new(f.clone()), CostModel::Free);
    let mut olga = Olgapro::new(udf, cfg);
    let mut rng = StdRng::seed_from_u64(11);
    let inputs = generate_inputs(InputKind::Gaussian, 1, 8, 0.5, &mut rng);
    let mut violations = 0;
    for (i, input) in inputs.iter().enumerate() {
        let out = olga.process(input, &mut rng).unwrap();
        let mut truth_rng = StdRng::seed_from_u64(500 + i as u64);
        let samples: Vec<f64> = (0..30_000)
            .map(|_| {
                let x = input.sample(&mut truth_rng);
                udf_core::udf::UdfFunction::eval(&f, &x)
            })
            .collect();
        let truth = Ecdf::new(samples).unwrap();
        let realized = udf_prob::metrics::lambda_discrepancy(&out.y_hat, &truth, acc.lambda);
        if realized > out.error_bound() {
            violations += 1;
        }
    }
    // δ = 0.05: allow at most 1 violation in 8 (generous slack for the
    // reference's own sampling noise).
    assert!(violations <= 1, "{violations}/8 bound violations");
}

/// Gamma- and exponential-distributed inputs work end to end (§6.1-B).
#[test]
fn non_gaussian_inputs_supported() {
    let f = PaperFunction::F1.instantiate(2);
    let range = f.output_range();
    let acc = AccuracyRequirement::new(0.2, 0.05, 0.01 * range, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, range).unwrap();
    let udf = BlackBoxUdf::new(std::sync::Arc::new(f), CostModel::Free);
    let mut olga = Olgapro::new(udf, cfg);
    let mut rng = StdRng::seed_from_u64(17);
    for kind in [InputKind::Gamma, InputKind::Exponential] {
        let inputs = generate_inputs(kind, 2, 3, 0.5, &mut rng);
        // Warm-up, then assert on the steady-state pass.
        for input in &inputs {
            olga.process(input, &mut rng).unwrap();
        }
        for input in &inputs {
            let out = olga.process(input, &mut rng).unwrap();
            assert!(out.error_bound() < 1.0, "bound {}", out.error_bound());
            assert!(out.y_hat.len() > 100);
        }
    }
}
