//! Quickstart: compute the output distribution of a black-box UDF on an
//! uncertain input with both evaluators, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use udf_uncertain::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // A "black-box" UDF. Pretend this is an expensive external C program;
    // we charge a nominal 1 ms per call through the cost model.
    // ------------------------------------------------------------------
    let udf = BlackBoxUdf::from_fn("decay", 1, |x| (-(x[0]) / 3.0).exp() * (x[0] * 1.3).sin())
        .with_cost(CostModel::Simulated(Duration::from_millis(1)));

    // An uncertain attribute: sensor reading N(2.0, 0.4²).
    let input = InputDistribution::diagonal_gaussian(&[(2.0, 0.4)]).unwrap();

    // Accuracy requirement: with probability 95%, every interval of length
    // ≥ 0.01 has probability within 0.1 of the truth (λ-discrepancy).
    let acc = AccuracyRequirement::new(0.1, 0.05, 0.01, Metric::Discrepancy).unwrap();

    // ------------------------------------------------------------------
    // Monte Carlo baseline (Algorithm 1).
    // ------------------------------------------------------------------
    let mc_udf = udf.fork_counter();
    let mc = McEvaluator::new(mc_udf.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let mc_out = mc.compute(&input, &acc, &mut rng).unwrap();
    let mc_wall = t0.elapsed();
    println!("— Monte Carlo (Algorithm 1) —");
    println!("  samples / UDF calls : {}", mc_out.udf_calls);
    println!("  charged UDF cost    : {:?}", mc_udf.charged_cost());
    println!("  algorithm overhead  : {mc_wall:?}");
    println!("  median              : {:.4}", mc_out.ecdf.quantile(0.5));

    // ------------------------------------------------------------------
    // OLGAPRO (Algorithm 5): online GP emulation.
    // ------------------------------------------------------------------
    let gp_udf = udf.fork_counter();
    let cfg = OlgaproConfig::new(acc, 1.0).unwrap();
    let mut olgapro = Olgapro::new(gp_udf.clone(), cfg);
    // Feed a stream of similar tuples — the model warms up online.
    let mut last = None;
    let t1 = Instant::now();
    for i in 0..10 {
        let mu = 1.5 + 0.1 * i as f64;
        let inp = InputDistribution::diagonal_gaussian(&[(mu, 0.4)]).unwrap();
        last = Some(olgapro.process(&inp, &mut rng).unwrap());
    }
    let gp_wall = t1.elapsed();
    let out = last.unwrap();
    println!("\n— OLGAPRO (Algorithm 5), after 10 tuples —");
    println!("  UDF calls total     : {}", gp_udf.calls());
    println!("  charged UDF cost    : {:?}", gp_udf.charged_cost());
    println!("  algorithm overhead  : {gp_wall:?}");
    println!("  training points     : {}", olgapro.model().len());
    println!(
        "  error bound         : ε_GP {:.4} + ε_MC {:.4} = {:.4}",
        out.eps_gp,
        out.eps_mc,
        out.error_bound()
    );
    println!("  median              : {:.4}", out.y_hat.quantile(0.5));
    println!("  simultaneous band   : f̂ ± {:.2}σ", out.z_alpha);

    // ------------------------------------------------------------------
    // The user-facing CDF (10 quantiles).
    // ------------------------------------------------------------------
    println!("\n  p     y(p)");
    for i in 1..10 {
        let p = i as f64 / 10.0;
        println!("  {:.1}   {:+.4}", p, out.y_hat.quantile(p));
    }

    let speedup = (mc_udf.charged_cost().as_secs_f64() * 10.0 + mc_wall.as_secs_f64() * 10.0)
        / (gp_udf.charged_cost().as_secs_f64() + gp_wall.as_secs_f64());
    println!("\nEffective speedup over MC for this 10-tuple stream: {speedup:.0}x");
}
