//! Batch-parallel stream processing (the paper's §8 future-work item):
//! after the model converges, tuple processing is read-only and
//! parallelizes across cores.
//!
//! ```sh
//! cargo run --release --example parallel_stream
//! ```

use std::time::Instant;
use udf_core::parallel::ParallelOlgapro;
use udf_uncertain::prelude::*;

fn main() {
    let udf = BlackBoxUdf::from_fn("wavefield", 2, |x| {
        (x[0] * 0.7).sin() * (x[1] * 0.4).cos() + 0.3 * (x[0] * 0.2).cos()
    });
    let acc = AccuracyRequirement::new(0.15, 0.05, 0.02, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, 2.6).unwrap();

    // A batch of 64 uncertain tuples.
    let batch: Vec<InputDistribution> = (0..64)
        .map(|i| {
            let mu0 = (i % 8) as f64 * 1.2 + 0.5;
            let mu1 = (i / 8) as f64 * 1.2 + 0.5;
            InputDistribution::diagonal_gaussian(&[(mu0, 0.3), (mu1, 0.3)]).unwrap()
        })
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let mut par = ParallelOlgapro::new(Olgapro::new(udf.fork_counter(), cfg.clone()), workers);
        // Warm up: the first batch trains the model (mostly sequential).
        let t0 = Instant::now();
        let (_, warm) = par.process_batch(&batch, 1).unwrap();
        let warm_time = t0.elapsed();
        // Steady state: subsequent batches are read-only and parallel.
        let t1 = Instant::now();
        let (outs, steady) = par.process_batch(&batch, 2).unwrap();
        let steady_time = t1.elapsed();
        println!(
            "workers = {workers}: warm-up {warm_time:>10.2?} ({} tuned), steady {steady_time:>10.2?} \
             ({} fast-path, {} tuned), model {} pts, median[0] {:+.3}",
            warm.slow_path,
            steady.fast_path,
            steady.slow_path,
            par.inner().model().len(),
            outs[0].y_hat.quantile(0.5),
        );
    }
    println!(
        "\nSteady-state batches scale with the worker count; warm-up is inherently sequential."
    );
}
