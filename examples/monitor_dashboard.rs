//! Continuous monitoring outside the REPL: a session that watches itself.
//!
//! A `Context` owns a registry-wide [`udf_obs::Monitor`] pre-wired with
//! the standard alert rules (cap-hit burst, reroute spike, throughput
//! decay). This example drives a mixed workload — relation scans, a
//! MODEL CAP burst, a bounded stream — while a background sampler ticks
//! the monitor, then prints the `\top`-style dashboard, the alert
//! transition log, and the collapsed-stack profile of where the session
//! spent its time.
//!
//! ```sh
//! cargo run --release --example monitor_dashboard
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use udf_uncertain::prelude::*;
use udf_uncertain::workloads::astro::GalaxyCatalog;

fn main() {
    let mut ctx = UqlContext::standard();
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = GalaxyCatalog::generate(192, &mut rng);
    let tuples = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    ctx.register_relation(
        "sky",
        Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap(),
    );
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 11))
    });

    // A background sampler at 5 ms keeps the rings warm between
    // statements; explicit ticks after each statement pin a sample at
    // every boundary (the REPL's cadence). Both only read snapshots —
    // results are byte-identical with the monitor idle.
    let sampler = ctx.monitor().start(Duration::from_millis(5));
    let statements = [
        "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 \
         USING gp WORKERS 2 SEED 7",
        // A tight model cap on a fresh strategy: every post-cap slow-path
        // tuple counts a cap hit, bursting `olgapro.cap_hits.rate` and
        // firing the standard `cap_hits_burst` rule.
        "SELECT GalAge(z) FROM sky USING gp MODEL CAP 12 SEED 5 WORKERS 2",
        "SELECT F3(x) FROM STREAM synth USING mc LIMIT 256 SEED 3",
    ];
    for q in statements {
        println!("uql> {q}");
        match ctx.run(q) {
            Ok(out) => print!("{}", out.report()),
            Err(e) => println!("{}", e.render(q)),
        }
        ctx.monitor().tick();
    }
    drop(sampler);

    println!("\n--- \\top ---");
    print!("{}", ctx.monitor().render_top(8));

    println!("\n--- alert log ---");
    for ev in ctx.monitor().alert_log() {
        println!(
            "[{:>8.3}s] {} {} on {} value={:.1}",
            ev.t_ns as f64 / 1e9,
            if ev.firing { "FIRING" } else { "RESOLVED" },
            ev.rule,
            ev.metric,
            ev.value
        );
    }

    println!("\n--- collapsed-stack profile (flamegraph.pl input) ---");
    print!("{}", ctx.trace().to_collapsed());
}
