//! Batch-parallel relational execution: the paper's Q1/Q2 query shapes
//! (§1) on the shared two-phase scheduler core.
//!
//! A `SELECT GalAge(z) FROM galaxies` projection and a
//! `... WHERE sin(z) ∈ [a, b] WITH Pr ≥ θ` selection run as single batches
//! on a persistent `BatchScheduler` worker pool: read-only GP inference
//! fans out across workers, only ε_GP-budget misses take the sequential
//! tuning path, and the rows are byte-identical for any worker count.
//!
//! ```sh
//! cargo run --release --example batch_query
//! ```

use std::time::Instant;
use udf_uncertain::prelude::*;

fn galaxies(n: usize) -> Relation {
    let schema = Schema::new(&["objID", "z"]);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.4 + (i as f64 * 0.37) % 5.0,
                    sigma: 0.25,
                },
            ])
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

fn main() {
    let rel = galaxies(512);
    let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
    let call = UdfCall::resolve(udf, rel.schema(), &["z"]).unwrap();
    let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
    let seed = 42u64;

    println!("Q1 projection over {} tuples (GP strategy):", rel.len());
    let mut reference: Option<Vec<f64>> = None;
    for workers in [1usize, 2, 4, 8] {
        let sched = BatchScheduler::new(workers);
        let mut ex = Executor::new(EvalStrategy::Gp, acc, &call, 2.0).unwrap();
        let t0 = Instant::now();
        let rows = ex.project_batch(&rel, &call, &sched, seed).unwrap();
        let elapsed = t0.elapsed();
        let medians: Vec<f64> = rows.iter().map(|r| r.output.ecdf.quantile(0.5)).collect();
        match &reference {
            None => reference = Some(medians),
            Some(want) => assert_eq!(
                want, &medians,
                "worker count must not change the output rows"
            ),
        }
        println!(
            "  workers = {workers}: {elapsed:>9.2?}, {} rows, {} UDF calls",
            rows.len(),
            ex.stats().udf_calls,
        );
    }
    println!("  (identical rows at every worker count)\n");

    println!("Q2 selection, sin(0.8 z) in [0.3, 1.5] with Pr >= 0.4:");
    let pred = Predicate::new(0.3, 1.5, 0.4).unwrap();
    let sched = BatchScheduler::new(4);
    let mut ex = Executor::new(EvalStrategy::Gp, acc, &call, 2.0).unwrap();
    let rows = ex.select_batch(&rel, &call, &pred, &sched, seed).unwrap();
    let stats = ex.stats();
    println!(
        "  kept {} / {} tuples with {} UDF calls (filtered tuples cost zero \
         calls on the fast path)",
        rows.len(),
        stats.tuples_in,
        stats.udf_calls,
    );
}
