//! The paper's motivating astrophysics queries (§1) end-to-end on a
//! synthetic SDSS-like catalog:
//!
//! * **Q1**: `SELECT objID, GalAge(redshift) FROM Galaxy`
//! * **Q2**: `SELECT ..., ComoveVol(g1.z, g2.z, AREA) FROM Galaxy g1, Galaxy g2
//!            WHERE AngDist(g1.z, g2.z) ∈ [l, u]`
//!
//! ```sh
//! cargo run --release --example astro_pipeline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_uncertain::prelude::*;
use udf_workloads::astro::GalaxyCatalog;

fn main() {
    let mut rng = StdRng::seed_from_u64(2013);
    // All three astro UDFs (with output-range metadata) come from the
    // shared registry instead of ad-hoc construction.
    let udfs = UdfCatalog::standard();

    // Synthetic SDSS-like catalog (see DESIGN.md §3 for the substitution).
    let catalog = GalaxyCatalog::generate(12, &mut rng);
    let schema = Schema::new(&["objID", "redshift"]);
    let tuples: Vec<Tuple> = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    let galaxy = Relation::new(schema, tuples).unwrap();

    let acc = AccuracyRequirement::new(0.1, 0.05, 0.005, Metric::Discrepancy).unwrap();

    // ------------------------------------------------------------------
    // Q1: GalAge over every galaxy, GP strategy (GalAge is a slow UDF).
    // ------------------------------------------------------------------
    let galage = udfs.get("GalAge").unwrap();
    let call = UdfCall::resolve(galage.udf.clone(), galaxy.schema(), &["redshift"]).unwrap();
    let mut ex = Executor::new(EvalStrategy::Gp, acc, &call, galage.output_range).unwrap();
    let rows = ex.project(&galaxy, &call, &mut rng).unwrap();

    println!("Q1: SELECT objID, GalAge(redshift) FROM Galaxy");
    println!("objID  z(mean)   age p10    age p50    age p90   [1/H0]  ±ε");
    for row in &rows {
        let t = &galaxy.tuples()[row.source];
        println!(
            "{:>5}  {:.3}     {:.4}     {:.4}     {:.4}          {:.3}",
            t.value(0).mean(),
            t.value(1).mean(),
            row.output.ecdf.quantile(0.1),
            row.output.ecdf.quantile(0.5),
            row.output.ecdf.quantile(0.9),
            row.output.error_bound,
        );
    }
    println!(
        "UDF calls: {} (MC sampling would need {})\n",
        ex.stats().udf_calls,
        acc.mc_samples() as u64 * galaxy.len() as u64
    );

    // ------------------------------------------------------------------
    // Q2: self-join + AngDist selection + ComoveVol projection.
    // ------------------------------------------------------------------
    let pairs = galaxy
        .cross_join("g1", &galaxy, "g2", |i, j| i < j)
        .unwrap();
    println!(
        "Q2: {} candidate pairs after self-join (i < j)",
        pairs.len()
    );

    // WHERE AngDist(g1.z, g2.z) ∈ [0.05, 0.35] with TEP ≥ 0.1.
    let angdist = udfs.get("AngDist").unwrap();
    let where_call = UdfCall::resolve(
        angdist.udf.clone(),
        pairs.schema(),
        &["g1.redshift", "g2.redshift"],
    )
    .unwrap();
    let pred = Predicate::new(0.05, 0.35, 0.1).unwrap();
    let mut where_ex =
        Executor::new(EvalStrategy::Gp, acc, &where_call, angdist.output_range).unwrap();
    let surviving = where_ex
        .select(&pairs, &where_call, &pred, &mut rng)
        .unwrap();
    println!(
        "  AngDist ∈ [0.05, 0.35] keeps {} pairs (filtered {}), UDF calls {}",
        surviving.len(),
        pairs.len() - surviving.len(),
        where_ex.stats().udf_calls
    );

    // SELECT ComoveVol(g1.z, g2.z, AREA) on survivors.
    let survivors = Relation::new(
        pairs.schema().clone(),
        surviving
            .iter()
            .map(|r| pairs.tuples()[r.source].clone())
            .collect(),
    )
    .unwrap();
    let comovevol = udfs.get("ComoveVol").unwrap();
    let vol_call = UdfCall::resolve(
        comovevol.udf.clone(),
        survivors.schema(),
        &["g1.redshift", "g2.redshift"],
    )
    .unwrap();
    let mut vol_ex =
        Executor::new(EvalStrategy::Gp, acc, &vol_call, comovevol.output_range).unwrap();
    let volumes = vol_ex.project(&survivors, &vol_call, &mut rng).unwrap();

    println!("\n  pair   TEP     vol p50 [(c/H0)³]  ±ε");
    for (row, vol) in surviving.iter().zip(&volumes) {
        println!(
            "  #{:<4}  {:.3}   {:.5}           {:.3}",
            row.source,
            row.tep,
            vol.output.ecdf.quantile(0.5),
            vol.output.error_bound
        );
    }
}
