//! The paper's §1 motivating query **Q2** end to end, twice:
//!
//! * declaratively, as a UQL `JOIN` statement (`FROM sky a JOIN sky b`);
//! * programmatically, through the `udf-join` API — the same engine path,
//!   with and without envelope-based pair pruning.
//!
//! ```sh
//! cargo run --release --example q2_join
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use udf_uncertain::core::config::{AccuracyRequirement, Metric};
use udf_uncertain::core::sched::BatchScheduler;
use udf_uncertain::prelude::*;
use udf_uncertain::workloads::astro::GalaxyCatalog;

/// A synthetic SDSS-like catalog as an uncertain relation.
fn sky(n: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = GalaxyCatalog::generate(n, &mut rng);
    let tuples = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn main() {
    let n = 48;

    // ── Q2, declaratively ───────────────────────────────────────────────
    let mut ctx = UqlContext::standard();
    ctx.register_relation("sky", sky(n));
    let q = "SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 \
             FROM sky a JOIN sky b ON a.objID < b.objID \
             WHERE PR(AngDist(a.z, b.z) IN [0.25, 0.32]) >= 0.5 \
             USING gp WORKERS 2 SEED 7 PRUNE";
    println!("uql> {q}\n");
    match ctx.run(q) {
        Ok(out) => print!("{}", out.report()),
        Err(e) => println!("{}", e.render(q)),
    }

    // ── The same join through the udf-join API ─────────────────────────
    let rel = sky(n);
    let entry = ctx.udfs().get("AngDist").unwrap().clone();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let sched = BatchScheduler::new(2);
    for prune in [false, true] {
        let spec = JoinSpec::new(
            &rel,
            "a",
            &rel,
            "b",
            entry.udf.clone(),
            &[(Side::Left, "z"), (Side::Right, "z")],
            accuracy,
            entry.output_range,
        )
        .unwrap()
        .on_less_than("objID", "objID")
        .unwrap()
        .predicate(Predicate::new(0.25, 0.32, 0.5).unwrap())
        .strategy(EvalStrategy::Gp)
        .prune(prune)
        .seed(7);
        let t0 = Instant::now();
        let out = JoinExecutor::new(&spec).unwrap().run(&sched).unwrap();
        println!(
            "\napi  prune={prune:<5} {:>8.2?}  {}",
            t0.elapsed(),
            out.stats
        );
        if prune {
            println!(
                "     pruning skipped {} of {} candidate pairs without per-sample inference",
                out.stats.pairs_pruned, out.stats.pairs_generated
            );
        }
    }
}
