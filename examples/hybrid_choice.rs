//! The hybrid MC/GP solution (§5.4): measure the UDF on the fly and commit
//! to the cheaper evaluator.
//!
//! ```sh
//! cargo run --release --example hybrid_choice
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use udf_core::hybrid::rule_based_choice;
use udf_uncertain::prelude::*;

fn run_case(name: &str, cost: CostModel) {
    let udf = BlackBoxUdf::from_fn("wave", 1, |x| (x[0] * 0.9).sin() * (-(x[0]) / 8.0).exp())
        .with_cost(cost);
    let acc = AccuracyRequirement::new(0.15, 0.05, 0.01, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, 1.5).unwrap();
    let mut hybrid = HybridEvaluator::new(udf, cfg, 3);
    let mut rng = StdRng::seed_from_u64(5);
    for i in 0..8 {
        let input = InputDistribution::diagonal_gaussian(&[(1.0 + i as f64 * 0.8, 0.4)]).unwrap();
        hybrid.process(&input, &mut rng).unwrap();
    }
    let (mc_t, gp_t) = hybrid.measured();
    println!(
        "{name:<22} calibration: MC {mc_t:>12?}  GP {gp_t:>12?}  → committed to {:?}",
        hybrid.choice()
    );
}

fn main() {
    println!("Measured hybrid (3-tuple calibration window):");
    run_case("free UDF", CostModel::Free);
    run_case(
        "0.1 ms UDF",
        CostModel::Simulated(Duration::from_micros(100)),
    );
    run_case("5 ms UDF", CostModel::Simulated(Duration::from_millis(5)));

    println!("\nRule-based shortcut (§6.3 findings):");
    for (d, t_us) in [
        (1usize, 1u64),
        (1, 1000),
        (2, 200),
        (5, 1_000),
        (5, 50_000),
        (10, 10_000),
        (10, 200_000),
    ] {
        let t = Duration::from_micros(t_us);
        println!(
            "  d = {d:<2}  T = {t:>10?}  → {:?}",
            rule_based_choice(d, t)
        );
    }
}
