//! Online filtering on a data stream (§2.2-B, §5.5): a tornado-detection-style
//! monitor keeps only tuples whose UDF output is probably inside an alert
//! interval, deciding early from confidence bounds.
//!
//! ```sh
//! cargo run --release --example streaming_filter
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use udf_uncertain::prelude::*;

fn main() {
    // A "detection score" UDF over two noisy sensor features. Pretend each
    // evaluation runs an expensive physics model (0.5 ms charged).
    let udf = BlackBoxUdf::from_fn("score", 2, |x| {
        let core = (-(x[0] - 6.0).powi(2) / 4.0).exp();
        let modulation = 0.5 + 0.5 * (x[1] * 0.7).tanh();
        core * modulation
    })
    .with_cost(CostModel::Simulated(Duration::from_micros(500)));

    let acc = AccuracyRequirement::new(0.1, 0.05, 0.01, Metric::Discrepancy).unwrap();
    // Alert when the score is probably above 0.5 (θ = 0.1 as in Expt 6).
    let pred = Predicate::new(0.5, 1.0, 0.1).unwrap();

    let mut rng = StdRng::seed_from_u64(99);
    let stream: Vec<InputDistribution> = (0..40)
        .map(|_| {
            let mu0 = rng.gen_range(0.0..10.0);
            let mu1 = rng.gen_range(-3.0..3.0);
            InputDistribution::diagonal_gaussian(&[(mu0, 0.3), (mu1, 0.3)]).unwrap()
        })
        .collect();

    // --- MC with online filtering (Remark 2.1) ---
    let mc_udf = udf.fork_counter();
    let mut mc_kept = 0;
    for inp in &stream {
        let d = udf_core::filtering::mc_filtered(&mc_udf, inp, &acc, &pred, &mut rng).unwrap();
        if !d.is_filtered() {
            mc_kept += 1;
        }
    }
    let mc_calls = mc_udf.calls();
    println!("— MC + online filtering (Remark 2.1) —");
    println!(
        "  kept {mc_kept}/40 tuples, UDF calls {mc_calls}, charged {:?}",
        mc_udf.charged_cost()
    );
    let full = acc.mc_samples() as u64 * 40;
    println!(
        "  vs. {full} calls without early stopping ({:.1}x saved)",
        full as f64 / mc_calls as f64
    );

    // --- GP with online filtering (§5.5) ---
    let gp_udf = udf.fork_counter();
    let cfg = OlgaproConfig::new(acc, 1.0).unwrap();
    let mut olga = Olgapro::new(gp_udf.clone(), cfg);
    let mut gp_kept = 0;
    let mut decisions = Vec::new();
    for inp in &stream {
        let d = udf_core::filtering::gp_filtered(&mut olga, inp, &pred, &mut rng).unwrap();
        match &d {
            FilterDecision::Kept { tep, .. } => {
                gp_kept += 1;
                decisions.push(format!("keep (TEP {tep:.2})"));
            }
            FilterDecision::Filtered { rho_upper, .. } => {
                decisions.push(format!("drop (ρ_U {rho_upper:.3})"));
            }
        }
    }
    println!("\n— GP + online filtering (§5.5) —");
    println!(
        "  kept {gp_kept}/40 tuples, UDF calls {}, charged {:?}, model size {}",
        gp_udf.calls(),
        gp_udf.charged_cost(),
        olga.model().len()
    );
    println!("  first 8 decisions: {:?}", &decisions[..8]);
    println!(
        "\nAgreement: MC kept {mc_kept}, GP kept {gp_kept} (small differences at the \
         threshold are expected — both sides hold their own (ε, δ) guarantees)"
    );
}
