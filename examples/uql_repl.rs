//! An interactive UQL shell over a demo context.
//!
//! Reads one statement per line from stdin until EOF — pipe a script for
//! non-interactive use (this is what the CI smoke step does):
//!
//! ```sh
//! cargo run --release --example uql_repl
//! printf 'SELECT GalAge(z) FROM sky USING gp SEED 1\n' | \
//!     cargo run --release --example uql_repl
//! ```
//!
//! The demo context registers [`UdfCatalog::standard`] (F1–F4 +
//! GalAge/ComoveVol/AngDist), a 256-galaxy `sky` relation with
//! Gaussian-uncertain redshifts, and three stream sources: `synth` (1-D
//! synthetic), `sky_stream` (catalog redshifts), `pairs` (redshift pairs).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, BufRead, Write as _};
use udf_uncertain::prelude::*;
use udf_uncertain::workloads::astro::GalaxyCatalog;
use udf_uncertain::workloads::synthetic::DOMAIN;

fn demo_context() -> UqlContext {
    let mut ctx = UqlContext::standard();

    // A synthetic SDSS-like catalog as the `sky` relation.
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = GalaxyCatalog::generate(256, &mut rng);
    let tuples = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    ctx.register_relation(
        "sky",
        Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap(),
    );

    // A small catalog for JOIN demos: n² pair evaluation is quadratic, so
    // the self-join playground stays deliberately compact (24 galaxies →
    // 276 ordered pairs).
    let tuples = (0..24)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / 24.0,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    ctx.register_relation(
        "stars",
        Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap(),
    );

    // A relation on the synthetic functions' domain, for F1–F4 queries.
    let tuples = (0..256)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: DOMAIN.0 + (i as f64 * 0.61) % (DOMAIN.1 - DOMAIN.0),
                    sigma: 0.5,
                },
            ])
        })
        .collect();
    ctx.register_relation(
        "points",
        Relation::new(Schema::new(&["id", "x"]), tuples).unwrap(),
    );

    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 11))
    });
    ctx.register_stream("sky_stream", 1, || {
        let mut rng = StdRng::seed_from_u64(42);
        Box::new(AstroSource::galage(GalaxyCatalog::generate(256, &mut rng)))
    });
    ctx.register_stream("pairs", 2, || {
        let mut rng = StdRng::seed_from_u64(42);
        Box::new(AstroSource::pairs(GalaxyCatalog::generate(256, &mut rng)))
    });
    ctx
}

fn print_catalog(ctx: &UqlContext) {
    println!("UDFs:");
    for (name, e) in ctx.udfs().iter() {
        println!(
            "  {name:<10} dim={} range≈{:<8.3} {}",
            e.dim(),
            e.output_range,
            e.description
        );
    }
    println!("Relations: {}", ctx.relation_names().join(", "));
    println!("Streams:   {}", ctx.stream_names().join(", "));
}

fn main() {
    let mut ctx = demo_context();
    println!("UQL shell — `\\d` lists the catalog, `\\h` shows the grammar, `\\prepared` lists prepared statements, `\\metrics` dumps counters, `\\top` shows the live dashboard, `\\trace` / `\\profile` export the trace, `\\q` quits.");
    println!("Example: SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 USING gp WORKERS 2 SEED 7");

    let stdin = io::stdin();
    loop {
        print!("uql> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "\\q" | "quit" | "exit" => break,
            "\\d" => {
                print_catalog(&ctx);
                continue;
            }
            "\\metrics" => {
                print!("{}", ctx.metrics().render());
                continue;
            }
            "\\top" => {
                // The loop already ticks once per executed statement, so
                // the dashboard is current; ticking again here would fold
                // a near-empty window and spuriously resolve rate alerts.
                print!("{}", ctx.monitor().render_top(8));
                continue;
            }
            "\\prepared" => {
                if ctx.prepared().is_empty() {
                    println!("no prepared statements (PREPARE name AS SELECT ...)");
                } else {
                    for (name, entry) in ctx.prepared() {
                        println!(
                            "  {name:<12} params={} execs={} {} {}",
                            entry.arity(),
                            entry.executions(),
                            if entry.is_warm() { "warm" } else { "cold" },
                            entry.text(),
                        );
                    }
                }
                continue;
            }
            "\\metrics reset" => {
                ctx.metrics().reset();
                println!("metrics reset (uptime clock restarted)");
                continue;
            }
            "\\h" | "help" => {
                println!(
                    "SELECT f(attr, ...) [WITH ACCURACY eps delta [METRIC ks|disc]]\n\
                     FROM <relation> | STREAM <source> | <rel> a JOIN <rel> b [ON a.key < b.key]\n\
                     [WHERE PR(f(attr, ...) IN [lo, hi]) >= theta]\n\
                     [USING mc|gp|auto] [WORKERS n] [BATCH n] [SEED n] [LIMIT n] [MODEL CAP n]\n\
                     [PRUNE]\n\
                     JOIN queries qualify attributes with their alias (AngDist(a.z, b.z));\n\
                     PRUNE enables envelope-based pair pruning on GP joins with a WHERE.\n\
                     PREPARE name AS SELECT ... prepares a plan ($1, $2, ... as\n\
                     parameters in numeric positions); EXECUTE name (args...) runs it\n\
                     (re-execution reuses the warmed model); DEALLOCATE name drops it.\n\
                     Prefix with EXPLAIN to print the plan without executing,\n\
                     EXPLAIN ANALYZE to execute and print per-operator timings, or\n\
                     EXPLAIN TRACE to execute and print the statement's trace\n\
                     (reroute causes, model lifecycle, certificate misses);\n\
                     `\\prepared` lists the session's prepared statements,\n\
                     `\\metrics` dumps the session's metrics registry,\n\
                     `\\metrics <prefix>` dumps only metrics under a prefix,\n\
                     `\\metrics reset` zeroes it,\n\
                     `\\top` shows the live dashboard (top rates, alerts, trends),\n\
                     `\\monitor export [path]` dumps the monitor's time-series as JSON Lines,\n\
                     `\\trace [path]` exports the session trace as chrome://tracing JSON,\n\
                     `\\profile [path]` exports it as collapsed stacks for flamegraph.pl."
                );
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line.strip_prefix("\\trace") {
            let path = rest.trim();
            let json = ctx.trace().to_chrome_json();
            if path.is_empty() {
                println!("{json}");
            } else {
                match std::fs::write(path, &json) {
                    Ok(()) => println!("trace written to {path} ({} bytes)", json.len()),
                    Err(e) => println!("cannot write {path}: {e}"),
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\profile") {
            let path = rest.trim();
            let folded = ctx.trace().to_collapsed();
            if path.is_empty() {
                print!("{folded}");
            } else {
                match std::fs::write(path, &folded) {
                    Ok(()) => println!(
                        "profile written to {path} ({} frames; flamegraph.pl renders it)",
                        folded.lines().count()
                    ),
                    Err(e) => println!("cannot write {path}: {e}"),
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\monitor export") {
            let path = rest.trim();
            let jsonl = ctx.monitor().export_jsonl();
            if path.is_empty() {
                print!("{jsonl}");
            } else {
                match std::fs::write(path, &jsonl) {
                    Ok(()) => println!(
                        "monitor series written to {path} ({} points)",
                        jsonl.lines().count()
                    ),
                    Err(e) => println!("cannot write {path}: {e}"),
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\metrics ") {
            let prefix = rest.trim();
            if !prefix.is_empty() {
                println!("metrics filtered by prefix `{prefix}`:");
                print!("{}", ctx.metrics().snapshot().filtered(prefix).render());
                continue;
            }
        }
        match ctx.run(line) {
            Ok(out) => print!("{}", out.report()),
            Err(e) => println!("{}", e.render(line)),
        }
        // One monitor sample per executed statement, so `\top` trends and
        // alert debounce advance in statement time even without a
        // background sampler. Output-blind: the tick only reads snapshots.
        ctx.monitor().tick();
    }
    println!("bye");
}
