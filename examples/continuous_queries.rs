//! Continuous queries: many concurrent `(query, UDF)` subscriptions over
//! one unbounded uncertain-tuple stream, driven by the `udf_stream` engine.
//!
//! Five subscriptions with mixed strategies (warm-model GP, direct MC,
//! rule-based auto) and mixed shapes (projections and filtered selections)
//! ride a single synthetic stream. With the default 25 000 tuples that is
//! 125 000 tuple-evaluations across ≥ 4 concurrent queries.
//!
//! ```sh
//! cargo run --release --example continuous_queries
//! UDF_STREAM_TUPLES=100000 UDF_STREAM_WORKERS=8 cargo run --release --example continuous_queries
//! ```

use std::sync::Arc;
use udf_uncertain::prelude::*;
use udf_uncertain::workloads::synthetic::PaperFunction;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let tuples = env_usize("UDF_STREAM_TUPLES", 25_000) as u64;
    let workers = env_usize("UDF_STREAM_WORKERS", 2);

    // The paper's default accuracy: ε = 0.2 here to keep the MC baselines
    // snappy; δ = 0.05, λ = 1% of the (unit-ish) output range.
    let acc = AccuracyRequirement::new(0.25, 0.05, 0.0, Metric::Ks).unwrap();

    // Four distinct UDFs from the paper's synthetic family (Fig. 4).
    let f1 = PaperFunction::F1.instantiate(1);
    let f2 = PaperFunction::F2.instantiate(1);
    let f3 = PaperFunction::F3.instantiate(1);
    let f4 = PaperFunction::F4.instantiate(1);

    let udf = |f: &udf_uncertain::workloads::GaussianMixtureFn| {
        BlackBoxUdf::new(Arc::new(f.clone()), CostModel::Free)
    };

    let mut session = Session::new(
        EngineConfig::new()
            .workers(workers)
            .batch_size(512)
            .queue_depth(4)
            .seed(42),
    );

    // Q1/Q2: projections — every tuple's output distribution is emitted.
    let q1 = session
        .subscribe(
            QuerySpec::new("f1-gp", udf(&f1), acc, StreamStrategy::Gp)
                .output_range(f1.output_range())
                .max_model_points(128),
        )
        .unwrap();
    let q2 = session
        .subscribe(QuerySpec::new("f2-mc", udf(&f2), acc, StreamStrategy::Mc))
        .unwrap();

    // Q3/Q4: selections — keep a tuple only when Pr[f(X) ∈ [a, b]] ≥ θ;
    // the online filter drops the rest from the envelope/Hoeffding bounds.
    let hi3 = f3.output_range();
    let q3 = session
        .subscribe(
            QuerySpec::new("f3-gp-sel", udf(&f3), acc, StreamStrategy::Gp)
                .output_range(hi3)
                .max_model_points(128)
                .predicate(Predicate::new(0.5 * hi3, 1.1 * hi3, 0.5).unwrap()),
        )
        .unwrap();
    let q4 = session
        .subscribe(
            QuerySpec::new("f4-mc-sel", udf(&f4), acc, StreamStrategy::Mc)
                .predicate(Predicate::new(0.4, 2.0, 0.5).unwrap()),
        )
        .unwrap();

    // Q5: the §6.3 rule-based hybrid pick — a nominally 2 ms UDF resolves
    // to GP, a free one to MC.
    let q5 = session
        .subscribe(
            QuerySpec::new(
                "f1-auto",
                udf(&f1).with_cost(CostModel::Simulated(std::time::Duration::from_millis(2))),
                acc,
                StreamStrategy::Auto,
            )
            .output_range(f1.output_range())
            .max_model_points(128),
        )
        .unwrap();

    println!("streaming {tuples} tuples into 5 subscriptions ({workers} workers)...\n");
    let source = SyntheticSource::gaussian(1, 0.5, 7).with_limit(tuples);
    let run = session.run(source, None).unwrap();

    // One line per subscription via the shared `StreamStats` display (the
    // same KvLine-backed rendering the REPL and CI smoke greps consume).
    for id in [q1, q2, q3, q4, q5] {
        println!("{}", session.stats(id).unwrap());
    }

    println!(
        "\nlast emitted tuples of {}:",
        session.stats(q3).unwrap().query
    );
    for k in session.recent(q3).unwrap().iter().take(4) {
        println!(
            "  tuple {:>8}  median {:>8.4}  ±{:<7.4}  TEP {:.3}",
            k.tuple, k.median, k.error_bound, k.tep
        );
    }

    println!("\nengine: {run}");
    println!(
        "digests (determinism witnesses): {:#018x} {:#018x} {:#018x} {:#018x} {:#018x}",
        session.digest(q1).unwrap(),
        session.digest(q2).unwrap(),
        session.digest(q3).unwrap(),
        session.digest(q4).unwrap(),
        session.digest(q5).unwrap(),
    );
}
