//! Local inference (§5.1).
//!
//! Far-away training points carry negligible kernel weight, so inference per
//! input tuple can run against a *subset* of training points chosen around
//! the bounding box of the input's Monte Carlo samples. The approximation
//! error in the posterior mean is bounded by
//!
//! `γ = max_j |Σ_{ℓ excluded} k(x_j, x*_ℓ) α_ℓ|`
//!
//! which is bracketed per excluded point by the kernel value at the box's
//! nearest/farthest corners (monotone isotropic kernels). The selection
//! radius expands until `γ ≤ Γ`. As the paper's implementation note
//! suggests, the sample box is bisected into sub-boxes and γ evaluated per
//! sub-box for a tighter bound.

use crate::model::{GpModel, Prediction};
use crate::{GpError, Result};
use udf_linalg::{dot, Cholesky, Matrix};
use udf_spatial::BoundingBox;

/// Result of choosing training points for local inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSelection {
    /// Selected training-point indices (into the model's training arrays).
    pub indices: Vec<usize>,
    /// Upper bound on the posterior-mean error |f̂ − f̂_L| over the sample box.
    pub gamma: f64,
    /// Final retrieval radius around the sample bounding box.
    pub radius: f64,
}

/// Choose training points near `sample_box` so the mean-approximation error
/// is at most `gamma_threshold` (the paper's Γ).
///
/// Requires an isotropic kernel (near/far-corner bracketing); returns
/// [`GpError::InvalidParameter`] otherwise.
pub fn select_local(
    model: &GpModel,
    sample_box: &BoundingBox,
    gamma_threshold: f64,
) -> Result<LocalSelection> {
    if model.is_empty() {
        return Err(GpError::EmptyModel);
    }
    if model.kernel().eval_dist(0.0).is_none() {
        return Err(GpError::InvalidParameter {
            what: "local inference requires an isotropic kernel",
            value: f64::NAN,
        });
    }
    if gamma_threshold <= 0.0 || gamma_threshold.is_nan() {
        return Err(GpError::InvalidParameter {
            what: "gamma_threshold",
            value: gamma_threshold,
        });
    }

    let n = model.len();
    // Radius step: the kernel's half-value distance, found by bisection.
    let step = half_value_distance(model);
    let mut radius = step;
    loop {
        let mut selected = model.spatial_index().query_within(sample_box, radius);
        selected.sort_unstable();
        let gamma = gamma_bound(model, sample_box, &selected);
        if gamma <= gamma_threshold || selected.len() == n {
            return Ok(LocalSelection {
                indices: selected,
                gamma,
                radius,
            });
        }
        radius += step;
    }
}

/// Distance at which the kernel decays to half its zero-distance value.
fn half_value_distance(model: &GpModel) -> f64 {
    let k = model.kernel();
    let k0 = k.eval_dist(0.0).expect("checked isotropic");
    let target = 0.5 * k0;
    let mut hi = 1.0;
    while k.eval_dist(hi).expect("isotropic") > target && hi < 1e6 {
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if k.eval_dist(mid).expect("isotropic") > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Upper bound γ on the mean-approximation error over the sample box given
/// the selected subset (γ = 0 when nothing is excluded).
pub fn gamma_bound(model: &GpModel, sample_box: &BoundingBox, selected: &[usize]) -> f64 {
    let n = model.len();
    if selected.len() == n {
        return 0.0;
    }
    let mut is_selected = vec![false; n];
    for &i in selected {
        is_selected[i] = true;
    }
    let kernel = model.kernel();
    let alpha = model.alpha();
    let xs = model.inputs();

    // Sub-box refinement: split along the longest axes (2^min(d,3) boxes).
    let sub_boxes = sample_box.bisect(sample_box.dim().min(3));
    let mut gamma = 0.0f64;
    for sb in &sub_boxes {
        let (mut lo_sum, mut hi_sum) = (0.0f64, 0.0f64);
        for l in 0..n {
            if is_selected[l] {
                continue;
            }
            let near = sb.min_dist(&xs[l]);
            let far = sb.max_dist(&xs[l]);
            let k_near = kernel.eval_dist(near).expect("isotropic");
            let k_far = kernel.eval_dist(far).expect("isotropic");
            let a = alpha[l];
            if a >= 0.0 {
                hi_sum += k_near * a;
                lo_sum += k_far * a;
            } else {
                hi_sum += k_far * a;
                lo_sum += k_near * a;
            }
        }
        gamma = gamma.max(hi_sum.abs()).max(lo_sum.abs());
    }
    gamma
}

/// Inference against a fixed subset of training points.
///
/// The posterior mean uses the *global* weight vector restricted to the
/// subset (the paper's `α_L`), so `γ` bounds its deviation from global
/// inference; the posterior variance uses the subset's own covariance
/// factor, which is conservative (never smaller than the global variance).
#[derive(Debug)]
pub struct LocalPredictor<'m> {
    model: &'m GpModel,
    indices: Vec<usize>,
    chol: Cholesky,
}

impl<'m> LocalPredictor<'m> {
    /// Build the subset factorization (O(l³) for l selected points).
    pub fn new(model: &'m GpModel, indices: Vec<usize>) -> Result<Self> {
        if indices.is_empty() {
            return Err(GpError::EmptyModel);
        }
        let xs = model.inputs();
        let k = Matrix::from_symmetric_fn(indices.len(), |i, j| {
            model.kernel().eval(&xs[indices[i]], &xs[indices[j]])
        });
        let (chol, _) = Cholesky::factor_with_jitter(&k, model.jitter(), 8)?;
        Ok(LocalPredictor {
            model,
            indices,
            chol,
        })
    }

    /// Number of selected training points `l`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no points were selected (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Posterior mean/variance at `x` using only the selected subset —
    /// O(l) mean, O(l²) variance.
    pub fn predict(&self, x: &[f64]) -> Result<Prediction> {
        if x.len() != self.model.dim() {
            return Err(GpError::DimensionMismatch {
                expected: self.model.dim(),
                found: x.len(),
            });
        }
        let xs = self.model.inputs();
        let alpha = self.model.alpha();
        let kernel = self.model.kernel();
        let k: Vec<f64> = self
            .indices
            .iter()
            .map(|&i| kernel.eval(&xs[i], x))
            .collect();
        // Mean with the restricted global weights α_L.
        let mean = self
            .indices
            .iter()
            .zip(&k)
            .map(|(&i, kv)| kv * alpha[i])
            .sum();
        let v = self.chol.solve_lower(&k)?;
        let var = (kernel.eval(x, x) - dot(&v, &v)).max(0.0);
        Ok(Prediction { mean, var })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SquaredExponential, SquaredExponentialArd};
    use crate::model::GpModel;

    /// 1-D model with clustered training data far from / near the query box.
    fn clustered_model() -> GpModel {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 0.5)), 1);
        let mut xs = Vec::new();
        // Cluster A near 0, cluster B near 100.
        for i in 0..20 {
            xs.push(vec![i as f64 * 0.1]);
        }
        for i in 0..20 {
            xs.push(vec![100.0 + i as f64 * 0.1]);
        }
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.7).sin()).collect();
        m.fit(xs, ys).unwrap();
        m
    }

    #[test]
    fn far_cluster_is_excluded() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.5], vec![1.5]);
        let sel = select_local(&m, &qbox, 1e-6).unwrap();
        assert!(sel.indices.len() < m.len(), "should not select everything");
        assert!(
            sel.indices.iter().all(|&i| i < 20),
            "far cluster leaked into selection: {:?}",
            sel.indices
        );
        assert!(sel.gamma <= 1e-6);
    }

    #[test]
    fn local_mean_close_to_global() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.5], vec![1.5]);
        let gamma_threshold = 1e-4;
        let sel = select_local(&m, &qbox, gamma_threshold).unwrap();
        let lp = LocalPredictor::new(&m, sel.indices.clone()).unwrap();
        for q in [0.55, 0.9, 1.2, 1.45] {
            let g = m.predict(&[q]).unwrap();
            let l = lp.predict(&[q]).unwrap();
            assert!(
                (g.mean - l.mean).abs() <= gamma_threshold + 1e-9,
                "q={q}: |{} - {}| > γ",
                g.mean,
                l.mean
            );
            // Local variance is conservative.
            assert!(l.var >= g.var - 1e-9, "q={q}");
        }
    }

    #[test]
    fn gamma_zero_when_all_selected() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.0], vec![100.0]);
        let all: Vec<usize> = (0..m.len()).collect();
        assert_eq!(gamma_bound(&m, &qbox, &all), 0.0);
    }

    #[test]
    fn tighter_threshold_selects_more_points() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.5], vec![1.5]);
        let loose = select_local(&m, &qbox, 1e-2).unwrap();
        let tight = select_local(&m, &qbox, 1e-10).unwrap();
        assert!(tight.indices.len() >= loose.indices.len());
    }

    #[test]
    fn ard_kernel_rejected() {
        let mut m = GpModel::new(Box::new(SquaredExponentialArd::new(1.0, &[1.0, 1.0])), 2);
        m.fit(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![0.0, 1.0])
            .unwrap();
        let qbox = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(matches!(
            select_local(&m, &qbox, 0.1),
            Err(GpError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn gamma_bound_is_sound() {
        // The bound must dominate the actual |global − local| mean error at
        // any point inside the box.
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![1.0], vec![3.0]);
        for threshold in [1e-2, 1e-4] {
            let sel = select_local(&m, &qbox, threshold).unwrap();
            let lp = LocalPredictor::new(&m, sel.indices.clone()).unwrap();
            for i in 0..=20 {
                let q = 1.0 + 2.0 * i as f64 / 20.0;
                let g = m.predict_mean(&[q]).unwrap();
                let l = lp.predict(&[q]).unwrap().mean;
                assert!(
                    (g - l).abs() <= sel.gamma + 1e-12,
                    "actual error {} exceeds γ {}",
                    (g - l).abs(),
                    sel.gamma
                );
            }
        }
    }

    #[test]
    fn empty_selection_rejected() {
        let m = clustered_model();
        assert!(LocalPredictor::new(&m, vec![]).is_err());
    }
}
