//! Local inference (§5.1).
//!
//! Far-away training points carry negligible kernel weight, so inference per
//! input tuple can run against a *subset* of training points chosen around
//! the bounding box of the input's Monte Carlo samples. The approximation
//! error in the posterior mean is bounded by
//!
//! `γ = max_j |Σ_{ℓ excluded} k(x_j, x*_ℓ) α_ℓ|`
//!
//! which is bracketed per excluded point by the kernel value at the box's
//! nearest/farthest corners (monotone isotropic kernels). The selection
//! radius expands until `γ ≤ Γ`. As the paper's implementation note
//! suggests, the sample box is bisected into sub-boxes and γ evaluated per
//! sub-box for a tighter bound.

use crate::model::{GpModel, Prediction};
use crate::{GpError, Result};
use std::sync::Arc;
use udf_linalg::{dot, Cholesky, Matrix};
use udf_spatial::BoundingBox;

/// Result of choosing training points for local inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSelection {
    /// Selected training-point indices (into the model's training arrays).
    pub indices: Vec<usize>,
    /// Upper bound on the posterior-mean error |f̂ − f̂_L| over the sample box.
    pub gamma: f64,
    /// Final retrieval radius around the sample bounding box.
    pub radius: f64,
}

/// Reusable buffers for the selection loop. One instance per worker (or per
/// sequential caller) makes steady-state selection allocation-free: the
/// R-tree query fills `selected` in place and `gamma_bound` reuses its mask
/// and distance/kernel-value buffers across every radius-expansion iteration
/// instead of allocating fresh vectors per call.
#[derive(Debug, Default, Clone)]
pub struct SelectScratch {
    /// Output of the last [`select_local_with`]: the selected indices.
    pub selected: Vec<usize>,
    /// γ-bound working buffers.
    bufs: GammaBufs,
}

/// Working buffers for [`gamma_bound`]'s per-sub-box sweep.
#[derive(Debug, Default, Clone)]
struct GammaBufs {
    /// Selection mask over training indices (all-false between calls).
    mask: Vec<bool>,
    /// Interleaved near/far corner distances, `2n` per sub-box.
    dists: Vec<f64>,
    /// Bulk kernel values for `dists` (the per-point γ brackets).
    kvals: Vec<f64>,
}

/// Choose training points near `sample_box` so the mean-approximation error
/// is at most `gamma_threshold` (the paper's Γ).
///
/// Requires an isotropic kernel (near/far-corner bracketing); returns
/// [`GpError::InvalidParameter`] otherwise.
pub fn select_local(
    model: &GpModel,
    sample_box: &BoundingBox,
    gamma_threshold: f64,
) -> Result<LocalSelection> {
    let mut scratch = SelectScratch::default();
    let (gamma, radius) = select_local_with(model, sample_box, gamma_threshold, &mut scratch)?;
    Ok(LocalSelection {
        indices: scratch.selected,
        gamma,
        radius,
    })
}

/// [`select_local`] with caller-provided scratch: returns `(gamma, radius)`
/// and leaves the selected indices (sorted ascending) in
/// `scratch.selected`. Identical selection, γ, and radius to
/// [`select_local`] — only the allocations differ.
pub fn select_local_with(
    model: &GpModel,
    sample_box: &BoundingBox,
    gamma_threshold: f64,
    scratch: &mut SelectScratch,
) -> Result<(f64, f64)> {
    if model.is_empty() {
        return Err(GpError::EmptyModel);
    }
    if model.kernel().eval_dist(0.0).is_none() {
        return Err(GpError::InvalidParameter {
            what: "local inference requires an isotropic kernel",
            value: f64::NAN,
        });
    }
    if gamma_threshold <= 0.0 || gamma_threshold.is_nan() {
        return Err(GpError::InvalidParameter {
            what: "gamma_threshold",
            value: gamma_threshold,
        });
    }

    let n = model.len();
    // Radius step: the kernel's half-value distance (bisected once per
    // hyperparameter setting and cached on the model).
    let step = model.half_value_distance().expect("checked isotropic");
    // The near/far corner distances — and so the per-point kernel brackets —
    // depend only on the sample box and the training set, never on the
    // current selection, so every radius-expansion iteration reuses one
    // up-front evaluation instead of re-walking the kernel per excluded
    // point. Same distances, same kernel values, same accumulation order:
    // γ is bit-identical to evaluating from scratch each iteration.
    let n_sub = gamma_precompute(model, sample_box, &mut scratch.bufs);
    let mut radius = step;
    loop {
        model
            .spatial_index()
            .query_within_into(sample_box, radius, &mut scratch.selected);
        scratch.selected.sort_unstable();
        let gamma = gamma_from_precomputed(model, &scratch.selected, &mut scratch.bufs, n_sub);
        if gamma <= gamma_threshold || scratch.selected.len() == n {
            return Ok((gamma, radius));
        }
        radius += step;
    }
}

/// Upper bound γ on the mean-approximation error over the sample box given
/// the selected subset (γ = 0 when nothing is excluded).
pub fn gamma_bound(model: &GpModel, sample_box: &BoundingBox, selected: &[usize]) -> f64 {
    if selected.len() == model.len() {
        return 0.0; // nothing excluded; skip the bracket evaluation
    }
    let mut bufs = GammaBufs::default();
    let n_sub = gamma_precompute(model, sample_box, &mut bufs);
    gamma_from_precomputed(model, selected, &mut bufs, n_sub)
}

/// Evaluate the per-point kernel brackets for every sub-box of
/// `sample_box`: `kvals[s·2n + 2l]` / `kvals[s·2n + 2l + 1]` hold
/// `k(near corner)` / `k(far corner)` of training point `l` against sub-box
/// `s`. Selection-independent, so one evaluation serves every iteration of
/// the radius-expansion loop. Returns the sub-box count.
///
/// # Panics
/// Panics for non-isotropic kernels (callers check first).
fn gamma_precompute(model: &GpModel, sample_box: &BoundingBox, bufs: &mut GammaBufs) -> usize {
    let xs = model.inputs();
    // Sub-box refinement: split along the longest axes (2^min(d,3) boxes).
    let sub_boxes = sample_box.bisect(sample_box.dim().min(3));
    bufs.dists.clear();
    for sb in &sub_boxes {
        for x in xs {
            bufs.dists.push(sb.min_dist(x));
            bufs.dists.push(sb.max_dist(x));
        }
    }
    bufs.kvals.resize(bufs.dists.len(), 0.0);
    let isotropic = model.kernel().eval_dist_many(&bufs.dists, &mut bufs.kvals);
    assert!(isotropic, "gamma_bound requires an isotropic kernel");
    sub_boxes.len()
}

/// γ from precomputed brackets ([`gamma_precompute`] must have filled
/// `bufs` for this model/box). The mask must be all-false on entry; it is
/// restored to all-false before returning (only the entries set for
/// `selected` are touched, so the reset is O(|selected|)). Values and
/// accumulation order match the per-point scalar evaluation exactly.
fn gamma_from_precomputed(
    model: &GpModel,
    selected: &[usize],
    bufs: &mut GammaBufs,
    n_sub: usize,
) -> f64 {
    let n = model.len();
    if selected.len() == n {
        return 0.0;
    }
    if bufs.mask.len() < n {
        bufs.mask.resize(n, false);
    }
    for &i in selected {
        bufs.mask[i] = true;
    }
    let alpha = model.alpha();
    let mut gamma = 0.0f64;
    for s in 0..n_sub {
        let kv = &bufs.kvals[s * 2 * n..(s + 1) * 2 * n];
        let (mut lo_sum, mut hi_sum) = (0.0f64, 0.0f64);
        for l in 0..n {
            if bufs.mask[l] {
                continue;
            }
            let (k_near, k_far) = (kv[2 * l], kv[2 * l + 1]);
            let a = alpha[l];
            if a >= 0.0 {
                hi_sum += k_near * a;
                lo_sum += k_far * a;
            } else {
                hi_sum += k_far * a;
                lo_sum += k_near * a;
            }
        }
        gamma = gamma.max(hi_sum.abs()).max(lo_sum.abs());
    }
    // Restore the all-false invariant so the buffer can be reused.
    for &i in selected {
        bufs.mask[i] = false;
    }
    gamma
}

/// Inference against a fixed subset of training points.
///
/// The posterior mean uses the *global* weight vector restricted to the
/// subset (the paper's `α_L`), so `γ` bounds its deviation from global
/// inference; the posterior variance uses the subset's own covariance
/// factor, which is conservative (never smaller than the global variance).
#[derive(Debug)]
pub struct LocalPredictor<'m> {
    model: &'m GpModel,
    indices: Vec<usize>,
    /// Shared so [`crate::batch::LocalPredictorCache`] can hand the same
    /// factor to consecutive tuples without re-running the O(l³) build.
    chol: Arc<Cholesky>,
}

impl<'m> LocalPredictor<'m> {
    /// Build the subset factorization (O(l³) for l selected points).
    pub fn new(model: &'m GpModel, indices: Vec<usize>) -> Result<Self> {
        if indices.is_empty() {
            return Err(GpError::EmptyModel);
        }
        let xs = model.inputs();
        let k = Matrix::from_symmetric_fn(indices.len(), |i, j| {
            model.kernel().eval(&xs[indices[i]], &xs[indices[j]])
        });
        let (chol, _) = Cholesky::factor_with_jitter(&k, model.jitter(), 8)?;
        Ok(LocalPredictor {
            model,
            indices,
            chol: Arc::new(chol),
        })
    }

    /// Assemble a predictor from a cached factor (see
    /// [`crate::batch::LocalPredictorCache`]). The caller guarantees `chol`
    /// was factored from exactly `indices` on this model state.
    pub(crate) fn from_cached(
        model: &'m GpModel,
        indices: Vec<usize>,
        chol: Arc<Cholesky>,
    ) -> Self {
        LocalPredictor {
            model,
            indices,
            chol,
        }
    }

    /// The subset Cholesky factor (shared handle).
    pub(crate) fn factor_arc(&self) -> &Arc<Cholesky> {
        &self.chol
    }

    /// The selected training-point indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of selected training points `l`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no points were selected (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Posterior mean/variance at `x` using only the selected subset —
    /// O(l) mean, O(l²) variance.
    pub fn predict(&self, x: &[f64]) -> Result<Prediction> {
        if x.len() != self.model.dim() {
            return Err(GpError::DimensionMismatch {
                expected: self.model.dim(),
                found: x.len(),
            });
        }
        let xs = self.model.inputs();
        let alpha = self.model.alpha();
        let kernel = self.model.kernel();
        let k: Vec<f64> = self
            .indices
            .iter()
            .map(|&i| kernel.eval(&xs[i], x))
            .collect();
        // Mean with the restricted global weights α_L.
        let mean = self
            .indices
            .iter()
            .zip(&k)
            .map(|(&i, kv)| kv * alpha[i])
            .sum();
        let v = self.chol.solve_lower(&k)?;
        let var = (kernel.eval(x, x) - dot(&v, &v)).max(0.0);
        Ok(Prediction { mean, var })
    }

    /// Predict at all `m` samples of a tuple as one blocked operation (one
    /// kernel-matrix build + one multi-RHS solve). Bit-identical to calling
    /// [`LocalPredictor::predict`] per sample — see [`crate::batch`].
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<Prediction>> {
        let mut scratch = crate::batch::PredictScratch::default();
        let mut out = Vec::with_capacity(xs.len());
        self.predict_batch_with(xs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`LocalPredictor::predict_batch`] with caller-provided scratch and
    /// output buffers (allocation-free in steady state). Clears `out` and
    /// fills it with one prediction per sample.
    pub fn predict_batch_with(
        &self,
        xs: &[Vec<f64>],
        scratch: &mut crate::batch::PredictScratch,
        out: &mut Vec<Prediction>,
    ) -> Result<()> {
        for x in xs {
            if x.len() != self.model.dim() {
                return Err(GpError::DimensionMismatch {
                    expected: self.model.dim(),
                    found: x.len(),
                });
            }
        }
        crate::batch::batch_predict_core(
            self.model.kernel(),
            self.model.inputs(),
            Some(&self.indices),
            self.model.alpha(),
            &self.chol,
            xs,
            scratch,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{SquaredExponential, SquaredExponentialArd};
    use crate::model::GpModel;

    /// 1-D model with clustered training data far from / near the query box.
    fn clustered_model() -> GpModel {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 0.5)), 1);
        let mut xs = Vec::new();
        // Cluster A near 0, cluster B near 100.
        for i in 0..20 {
            xs.push(vec![i as f64 * 0.1]);
        }
        for i in 0..20 {
            xs.push(vec![100.0 + i as f64 * 0.1]);
        }
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.7).sin()).collect();
        m.fit(xs, ys).unwrap();
        m
    }

    #[test]
    fn far_cluster_is_excluded() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.5], vec![1.5]);
        let sel = select_local(&m, &qbox, 1e-6).unwrap();
        assert!(sel.indices.len() < m.len(), "should not select everything");
        assert!(
            sel.indices.iter().all(|&i| i < 20),
            "far cluster leaked into selection: {:?}",
            sel.indices
        );
        assert!(sel.gamma <= 1e-6);
    }

    #[test]
    fn local_mean_close_to_global() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.5], vec![1.5]);
        let gamma_threshold = 1e-4;
        let sel = select_local(&m, &qbox, gamma_threshold).unwrap();
        let lp = LocalPredictor::new(&m, sel.indices.clone()).unwrap();
        for q in [0.55, 0.9, 1.2, 1.45] {
            let g = m.predict(&[q]).unwrap();
            let l = lp.predict(&[q]).unwrap();
            assert!(
                (g.mean - l.mean).abs() <= gamma_threshold + 1e-9,
                "q={q}: |{} - {}| > γ",
                g.mean,
                l.mean
            );
            // Local variance is conservative.
            assert!(l.var >= g.var - 1e-9, "q={q}");
        }
    }

    #[test]
    fn gamma_zero_when_all_selected() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.0], vec![100.0]);
        let all: Vec<usize> = (0..m.len()).collect();
        assert_eq!(gamma_bound(&m, &qbox, &all), 0.0);
    }

    #[test]
    fn tighter_threshold_selects_more_points() {
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![0.5], vec![1.5]);
        let loose = select_local(&m, &qbox, 1e-2).unwrap();
        let tight = select_local(&m, &qbox, 1e-10).unwrap();
        assert!(tight.indices.len() >= loose.indices.len());
    }

    #[test]
    fn ard_kernel_rejected() {
        let mut m = GpModel::new(Box::new(SquaredExponentialArd::new(1.0, &[1.0, 1.0])), 2);
        m.fit(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![0.0, 1.0])
            .unwrap();
        let qbox = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(matches!(
            select_local(&m, &qbox, 0.1),
            Err(GpError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn gamma_bound_is_sound() {
        // The bound must dominate the actual |global − local| mean error at
        // any point inside the box.
        let m = clustered_model();
        let qbox = BoundingBox::new(vec![1.0], vec![3.0]);
        for threshold in [1e-2, 1e-4] {
            let sel = select_local(&m, &qbox, threshold).unwrap();
            let lp = LocalPredictor::new(&m, sel.indices.clone()).unwrap();
            for i in 0..=20 {
                let q = 1.0 + 2.0 * i as f64 / 20.0;
                let g = m.predict_mean(&[q]).unwrap();
                let l = lp.predict(&[q]).unwrap().mean;
                assert!(
                    (g - l).abs() <= sel.gamma + 1e-12,
                    "actual error {} exceeds γ {}",
                    (g - l).abs(),
                    sel.gamma
                );
            }
        }
    }

    #[test]
    fn empty_selection_rejected() {
        let m = clustered_model();
        assert!(LocalPredictor::new(&m, vec![]).is_err());
    }
}
