//! Gaussian-process emulation substrate (§3–§5 of Tran et al., VLDB 2013).
//!
//! A GP models the black-box UDF: after `n` evaluations `(x*, f(x*))` the
//! posterior mean `f̂` serves as a cheap emulator and the posterior variance
//! `σ²(x)` quantifies modeling error. This crate provides:
//!
//! * [`kernel`] — covariance functions (squared-exponential, isotropic and
//!   ARD, plus Matérn 3/2 and 5/2) with analytic first and second
//!   derivatives w.r.t. log-hyperparameters (needed for MLE training, §3.4,
//!   and the Newton retraining heuristic, §5.3);
//! * [`model`] — exact GP regression with Cholesky factors, **incremental
//!   training-point addition** (§5.2) and an integrated R-tree over the
//!   training inputs;
//! * [`train`] — maximum-likelihood hyperparameter fitting by adaptive
//!   gradient ascent, plus the Newton first-step size used to decide
//!   *whether* to retrain (§5.3);
//! * [`local`] — local inference with the bounding-box γ error bound
//!   (§5.1);
//! * [`band`] — simultaneous confidence bands `f̂ ± z_α σ` via the expected
//!   Euler characteristic approximation (§4.2, Eq. 5, after Adler \[3\]).

pub mod band;
pub mod batch;
pub mod kernel;
pub mod local;
pub mod model;
pub mod train;

pub use batch::{LocalPredictorCache, PredictScratch};
pub use kernel::{Kernel, Matern32, Matern52, SquaredExponential, SquaredExponentialArd};
pub use local::{LocalSelection, SelectScratch};
pub use model::GpModel;

use std::fmt;
use udf_linalg::LinalgError;

/// Errors raised by GP operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// The underlying linear algebra failed (usually: covariance not SPD).
    Linalg(LinalgError),
    /// Operation requires a trained (non-empty) model.
    EmptyModel,
    /// A point has the wrong dimensionality.
    DimensionMismatch { expected: usize, found: usize },
    /// Invalid hyperparameter or configuration value.
    InvalidParameter { what: &'static str, value: f64 },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            GpError::EmptyModel => write!(f, "GP model has no training data"),
            GpError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            GpError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what} = {value}")
            }
        }
    }
}

impl std::error::Error for GpError {}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

/// Result alias for GP operations.
pub type Result<T> = std::result::Result<T, GpError>;
