//! Exact GP regression with incremental updates (§3.3, §5.2).

use crate::kernel::Kernel;
use crate::{GpError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use udf_linalg::{dot, Cholesky, Matrix};
use udf_spatial::RTree;

/// Process-wide source of unique model identities (see [`GpModel::model_id`]).
static NEXT_MODEL_ID: AtomicU64 = AtomicU64::new(1);

/// Default diagonal jitter added to the training covariance. The paper's
/// UDFs are deterministic, so this is numerical regularization rather than
/// observation noise.
pub const DEFAULT_JITTER: f64 = 1e-8;

/// A Gaussian-process regression model over a black-box function.
///
/// Maintains the training set `(X*, y*)`, the Cholesky factor of
/// `K(X*, X*) + jitter·I`, the weight vector `α = K⁻¹ y*` (the paper's α,
/// §5.1), and an R-tree over the inputs for local inference.
#[derive(Debug)]
pub struct GpModel {
    kernel: Box<dyn Kernel>,
    dim: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    jitter: f64,
    chol: Option<Cholesky>,
    alpha: Vec<f64>,
    index: RTree,
    /// Process-unique identity, used by caches keyed on "same model".
    model_id: u64,
    /// Mutation counter: bumped by every operation that can change
    /// predictions (fit / add / evict / hyperparameter change), so cached
    /// derived state (e.g. a subset Cholesky factor) can detect staleness.
    epoch: u64,
    /// Cached kernel half-value distance (depends only on hyperparameters).
    half_value: OnceLock<f64>,
}

impl Clone for GpModel {
    /// Clones take a **fresh** `model_id`: the clone's training set may
    /// diverge from the original's, and caches key on `(model_id, epoch)` —
    /// two models sharing an id with different contents would poison any
    /// `LocalPredictorCache` they pass through. The cost of the fresh id is
    /// one first-tuple cache miss per cloned model; outputs are unaffected.
    fn clone(&self) -> Self {
        GpModel {
            kernel: self.kernel.clone(),
            dim: self.dim,
            xs: self.xs.clone(),
            ys: self.ys.clone(),
            jitter: self.jitter,
            chol: self.chol.clone(),
            alpha: self.alpha.clone(),
            index: self.index.clone(),
            model_id: NEXT_MODEL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: self.epoch,
            half_value: self.half_value.clone(),
        }
    }
}

/// A posterior prediction at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean `f̂(x)`.
    pub mean: f64,
    /// Posterior variance `σ²(x)` (clamped at 0).
    pub var: f64,
}

impl GpModel {
    /// Empty model for `dim`-dimensional inputs.
    pub fn new(kernel: Box<dyn Kernel>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        GpModel {
            kernel,
            dim,
            xs: Vec::new(),
            ys: Vec::new(),
            jitter: DEFAULT_JITTER,
            chol: None,
            alpha: Vec::new(),
            index: RTree::new(dim),
            model_id: NEXT_MODEL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
            half_value: OnceLock::new(),
        }
    }

    /// Process-unique identity of this model instance.
    #[inline]
    pub fn model_id(&self) -> u64 {
        self.model_id
    }

    /// Mutation counter; any change that can alter predictions bumps it.
    /// `(model_id, epoch)` together are a fingerprint caches can key on.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Override the diagonal jitter (must be non-negative).
    pub fn with_jitter(mut self, jitter: f64) -> Result<Self> {
        if !(jitter >= 0.0 && jitter.is_finite()) {
            return Err(GpError::InvalidParameter {
                what: "jitter",
                value: jitter,
            });
        }
        self.jitter = jitter;
        self.epoch += 1;
        Ok(self)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of training points `n`.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no training data is present.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Training inputs.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Training targets.
    pub fn targets(&self) -> &[f64] {
        &self.ys
    }

    /// The weight vector `α = K(X*, X*)⁻¹ y*`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Borrow the kernel.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Borrow the spatial index over training inputs.
    pub fn spatial_index(&self) -> &RTree {
        &self.index
    }

    /// Jitter in use.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Replace the kernel hyperparameters and refactor (O(n³)).
    pub fn set_hyperparams(&mut self, theta: &[f64]) -> Result<()> {
        self.kernel.set_params(theta);
        // The half-value distance depends on the hyperparameters just
        // replaced; drop the cached value so it is re-bisected on demand.
        self.half_value = OnceLock::new();
        self.epoch += 1;
        self.refit()
    }

    /// Distance at which the kernel decays to half its zero-distance value,
    /// found by bisection once and cached until the hyperparameters change.
    /// `None` for non-isotropic kernels. This is the radius step of the
    /// local-inference selection loop (§5.1), which used to re-run the
    /// 60-iteration bisection on every call.
    pub fn half_value_distance(&self) -> Option<f64> {
        self.kernel.eval_dist(0.0)?;
        Some(
            *self
                .half_value
                .get_or_init(|| half_value_bisect(self.kernel.as_ref())),
        )
    }

    /// Replace all training data and refactor (O(n³)).
    pub fn fit(&mut self, xs: Vec<Vec<f64>>, ys: Vec<f64>) -> Result<()> {
        if xs.len() != ys.len() {
            return Err(GpError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        for x in &xs {
            if x.len() != self.dim {
                return Err(GpError::DimensionMismatch {
                    expected: self.dim,
                    found: x.len(),
                });
            }
        }
        self.xs = xs;
        self.ys = ys;
        self.index = RTree::bulk_load(
            self.dim,
            self.xs
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, p)| (p, i))
                .collect(),
        );
        self.epoch += 1;
        self.refit()
    }

    /// Re-factor the covariance from scratch (after hyperparameter change).
    fn refit(&mut self) -> Result<()> {
        if self.xs.is_empty() {
            self.chol = None;
            self.alpha.clear();
            return Ok(());
        }
        let n = self.xs.len();
        let k = Matrix::from_symmetric_fn(n, |i, j| self.kernel.eval(&self.xs[i], &self.xs[j]));
        let (chol, _) = Cholesky::factor_with_jitter(&k, self.jitter, 8)?;
        self.alpha = chol.solve(&self.ys)?;
        self.chol = Some(chol);
        Ok(())
    }

    /// Add one training point incrementally: O(n²) Cholesky append plus an
    /// O(n²) re-solve for α (§5.2's block-matrix update).
    pub fn add_point(&mut self, x: Vec<f64>, y: f64) -> Result<()> {
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        self.epoch += 1;
        match &mut self.chol {
            None => {
                self.xs.push(x.clone());
                self.ys.push(y);
                self.index.insert(x, self.xs.len() - 1);
                self.refit()
            }
            Some(chol) => {
                let k: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, &x)).collect();
                let kss = self.kernel.eval(&x, &x) + self.jitter;
                match chol.append(&k, kss) {
                    Ok(()) => {
                        self.xs.push(x.clone());
                        self.ys.push(y);
                        self.index.insert(x, self.xs.len() - 1);
                        self.alpha = self
                            .chol
                            .as_ref()
                            .expect("factor present")
                            .solve(&self.ys)?;
                        Ok(())
                    }
                    Err(_) => {
                        // Nearly duplicate point: fall back to a fresh
                        // factorization with escalated jitter.
                        self.xs.push(x.clone());
                        self.ys.push(y);
                        self.index.insert(x, self.xs.len() - 1);
                        self.refit()
                    }
                }
            }
        }
    }

    /// Remove the oldest training point and refactor from scratch —
    /// O(n³) in the *remaining* size, so under a fixed model budget the
    /// cost per eviction stays bounded. Used by evict-oldest model-cap
    /// policies; errors on an empty model.
    pub fn remove_oldest(&mut self) -> Result<()> {
        if self.xs.is_empty() {
            return Err(GpError::EmptyModel);
        }
        self.epoch += 1;
        self.xs.remove(0);
        self.ys.remove(0);
        self.index = RTree::bulk_load(
            self.dim,
            self.xs
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, p)| (p, i))
                .collect(),
        );
        self.refit()
    }

    /// Posterior mean and variance at `x` (global inference, Eq. 2).
    pub fn predict(&self, x: &[f64]) -> Result<Prediction> {
        let chol = self.chol.as_ref().ok_or(GpError::EmptyModel)?;
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        let k: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean = dot(&k, &self.alpha);
        // σ²(x) = k(x,x) − kᵀ K⁻¹ k, via v = L⁻¹k.
        let v = chol.solve_lower(&k)?;
        let var = (self.kernel.eval(x, x) - dot(&v, &v)).max(0.0);
        Ok(Prediction { mean, var })
    }

    /// Posterior mean only — O(n) per point (§5.1 notes the mean is the
    /// cheap part; the variance dominates inference cost).
    pub fn predict_mean(&self, x: &[f64]) -> Result<f64> {
        if self.chol.is_none() {
            return Err(GpError::EmptyModel);
        }
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                expected: self.dim,
                found: x.len(),
            });
        }
        let k: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        Ok(dot(&k, &self.alpha))
    }

    /// Predict at many points as one blocked operation: a single kernel
    /// matrix build, one multi-RHS triangular solve for all variances, and
    /// lane-unrolled per-sample mean/variance accumulation.
    ///
    /// Bit-identical to calling [`GpModel::predict`] once per point — the
    /// per-sample reduction orders are preserved exactly (see
    /// [`crate::batch`]).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<Prediction>> {
        let mut scratch = crate::batch::PredictScratch::default();
        let mut out = Vec::with_capacity(xs.len());
        self.predict_batch_with(xs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`GpModel::predict_batch`] with caller-provided scratch and output
    /// buffers, so steady-state batch inference performs no allocation.
    /// Clears `out` and fills it with one prediction per query point.
    pub fn predict_batch_with(
        &self,
        xs: &[Vec<f64>],
        scratch: &mut crate::batch::PredictScratch,
        out: &mut Vec<Prediction>,
    ) -> Result<()> {
        let chol = self.chol.as_ref().ok_or(GpError::EmptyModel)?;
        for x in xs {
            if x.len() != self.dim {
                return Err(GpError::DimensionMismatch {
                    expected: self.dim,
                    found: x.len(),
                });
            }
        }
        crate::batch::batch_predict_core(
            self.kernel.as_ref(),
            &self.xs,
            None,
            &self.alpha,
            chol,
            xs,
            scratch,
            out,
        )
    }

    /// Log marginal likelihood `log p(y* | X*, θ)` (§3.4):
    /// `−½ y*ᵀα − Σ log L_ii − (n/2) log 2π`.
    pub fn log_marginal_likelihood(&self) -> Result<f64> {
        let chol = self.chol.as_ref().ok_or(GpError::EmptyModel)?;
        let n = self.xs.len() as f64;
        Ok(-0.5 * dot(&self.ys, &self.alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }

    /// Gradient of the log marginal likelihood w.r.t. the kernel's
    /// log-hyperparameters: `∂L/∂θ_j = ½ tr((ααᵀ − K⁻¹) ∂K/∂θ_j)`.
    pub fn lml_gradient(&self) -> Result<Vec<f64>> {
        let chol = self.chol.as_ref().ok_or(GpError::EmptyModel)?;
        let n = self.xs.len();
        let p = self.kernel.n_params();
        let kinv = chol.inverse()?;
        let mut grad = vec![0.0; p];
        for i in 0..n {
            for j in 0..n {
                let g = self.kernel.grad(&self.xs[i], &self.xs[j]);
                let w = self.alpha[i] * self.alpha[j] - kinv[(i, j)];
                for (gj, gv) in grad.iter_mut().zip(&g) {
                    *gj += 0.5 * w * gv;
                }
            }
        }
        Ok(grad)
    }

    /// Diagonal second derivatives of the log marginal likelihood,
    /// `∂²L/∂θ_j²`, used by the Newton retraining heuristic (§5.3):
    ///
    /// `∂²L/∂θ² = ½ αᵀK''α − αᵀK'K⁻¹K'α − ½ tr(K⁻¹K'') + ½ tr(K⁻¹K'K⁻¹K')`.
    #[allow(clippy::needless_range_loop)] // out[j] paired with the j-th K' matrix
    pub fn lml_hessian_diag(&self) -> Result<Vec<f64>> {
        let chol = self.chol.as_ref().ok_or(GpError::EmptyModel)?;
        let n = self.xs.len();
        let p = self.kernel.n_params();
        let kinv = chol.inverse()?;
        let mut out = vec![0.0; p];
        // Materialize K' per hyperparameter (p small: 2..=d+1).
        for j in 0..p {
            let kp =
                Matrix::from_symmetric_fn(n, |r, c| self.kernel.grad(&self.xs[r], &self.xs[c])[j]);
            let kpp = Matrix::from_symmetric_fn(n, |r, c| {
                self.kernel.second_deriv(&self.xs[r], &self.xs[c])[j]
            });
            let kp_alpha = kp.matvec(&self.alpha)?;
            let kinv_kp_alpha = chol.solve(&kp_alpha)?;
            let term1 = 0.5 * dot(&self.alpha, &kpp.matvec(&self.alpha)?);
            let term2 = dot(&kp_alpha, &kinv_kp_alpha);
            // tr(K⁻¹K'') and tr(K⁻¹K'K⁻¹K').
            let kinv_kpp = kinv.matmul(&kpp)?;
            let kinv_kp = kinv.matmul(&kp)?;
            let tr1 = kinv_kpp.trace()?;
            let prod = kinv_kp.matmul(&kinv_kp)?;
            let tr2 = prod.trace()?;
            out[j] = term1 - term2 - 0.5 * tr1 + 0.5 * tr2;
        }
        Ok(out)
    }
}

/// Bisection for the distance at which an isotropic kernel decays to half
/// its zero-distance value (callers go through the cached
/// [`GpModel::half_value_distance`]).
fn half_value_bisect(k: &dyn Kernel) -> f64 {
    let k0 = k.eval_dist(0.0).expect("checked isotropic");
    let target = 0.5 * k0;
    let mut hi = 1.0;
    while k.eval_dist(hi).expect("isotropic") > target && hi < 1e6 {
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if k.eval_dist(mid).expect("isotropic") > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn toy_model(n: usize) -> GpModel {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        m.fit(xs, ys).unwrap();
        m
    }

    #[test]
    fn interpolates_training_points() {
        let m = toy_model(10);
        for (x, y) in m.inputs().to_vec().iter().zip(m.targets().to_vec()) {
            let p = m.predict(x).unwrap();
            assert!((p.mean - y).abs() < 1e-3, "mean {} vs {}", p.mean, y);
            assert!(p.var < 1e-4, "variance at training point: {}", p.var);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let m = toy_model(6); // points in [0, 2.5]
        let near = m.predict(&[1.0]).unwrap();
        let far = m.predict(&[10.0]).unwrap();
        assert!(far.var > near.var);
        // At great distance the prior variance σ_f² is recovered.
        assert!((far.var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn incremental_add_matches_batch_fit() {
        let mut inc = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].cos()).collect();
        for (x, y) in xs.iter().zip(&ys) {
            inc.add_point(x.clone(), *y).unwrap();
        }
        let mut batch = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        batch.fit(xs, ys).unwrap();
        for q in [0.13, 1.77, 3.9, 6.0] {
            let a = inc.predict(&[q]).unwrap();
            let b = batch.predict(&[q]).unwrap();
            assert!((a.mean - b.mean).abs() < 1e-8, "q={q}");
            assert!((a.var - b.var).abs() < 1e-8, "q={q}");
        }
    }

    #[test]
    fn duplicate_points_fall_back_gracefully() {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        for _ in 0..5 {
            m.add_point(vec![1.0], 2.0).unwrap();
        }
        let p = m.predict(&[1.0]).unwrap();
        assert!((p.mean - 2.0).abs() < 1e-3);
    }

    #[test]
    fn remove_oldest_matches_suffix_fit() {
        let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 * 0.4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].cos()).collect();
        let mut evicting = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        evicting.fit(xs.clone(), ys.clone()).unwrap();
        evicting.remove_oldest().unwrap();
        evicting.remove_oldest().unwrap();
        let mut suffix = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        suffix.fit(xs[2..].to_vec(), ys[2..].to_vec()).unwrap();
        assert_eq!(evicting.len(), 7);
        assert_eq!(evicting.spatial_index().len(), 7);
        for q in [0.1, 1.3, 2.6] {
            let a = evicting.predict(&[q]).unwrap();
            let b = suffix.predict(&[q]).unwrap();
            assert!((a.mean - b.mean).abs() < 1e-9, "q={q}");
            assert!((a.var - b.var).abs() < 1e-9, "q={q}");
        }
        let mut empty = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        assert!(matches!(empty.remove_oldest(), Err(GpError::EmptyModel)));
    }

    #[test]
    fn empty_model_errors() {
        let m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 2);
        assert!(matches!(m.predict(&[0.0, 0.0]), Err(GpError::EmptyModel)));
        assert!(matches!(
            m.log_marginal_likelihood(),
            Err(GpError::EmptyModel)
        ));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let m = toy_model(4);
        assert!(matches!(
            m.predict(&[0.0, 0.0]),
            Err(GpError::DimensionMismatch { .. })
        ));
        let mut m2 = toy_model(4);
        assert!(m2.add_point(vec![0.0, 1.0], 0.0).is_err());
    }

    #[test]
    fn lml_gradient_matches_finite_difference() {
        let mut m = toy_model(8);
        let theta0 = m.kernel().params();
        let grad = m.lml_gradient().unwrap();
        let eps = 1e-5;
        for j in 0..theta0.len() {
            let mut tp = theta0.clone();
            tp[j] += eps;
            m.set_hyperparams(&tp).unwrap();
            let lp = m.log_marginal_likelihood().unwrap();
            let mut tm = theta0.clone();
            tm[j] -= eps;
            m.set_hyperparams(&tm).unwrap();
            let lm = m.log_marginal_likelihood().unwrap();
            m.set_hyperparams(&theta0).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[j]).abs() < 1e-4 * (1.0 + grad[j].abs()),
                "grad[{j}]: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn lml_hessian_diag_matches_finite_difference() {
        let mut m = toy_model(8);
        let theta0 = m.kernel().params();
        let hess = m.lml_hessian_diag().unwrap();
        let eps = 1e-4;
        for j in 0..theta0.len() {
            let mut tp = theta0.clone();
            tp[j] += eps;
            m.set_hyperparams(&tp).unwrap();
            let gp = m.lml_gradient().unwrap()[j];
            let mut tm = theta0.clone();
            tm[j] -= eps;
            m.set_hyperparams(&tm).unwrap();
            let gm = m.lml_gradient().unwrap()[j];
            m.set_hyperparams(&theta0).unwrap();
            let fd = (gp - gm) / (2.0 * eps);
            assert!(
                (fd - hess[j]).abs() < 1e-3 * (1.0 + hess[j].abs()),
                "hess[{j}]: fd {fd} vs analytic {}",
                hess[j]
            );
        }
    }

    #[test]
    fn spatial_index_stays_in_sync() {
        let mut m = toy_model(5);
        assert_eq!(m.spatial_index().len(), 5);
        m.add_point(vec![9.0], 0.5).unwrap();
        assert_eq!(m.spatial_index().len(), 6);
        let mut all = m.spatial_index().all_ids();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }
}
