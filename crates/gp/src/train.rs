//! Hyperparameter learning (§3.4) and the retraining decision (§5.3).
//!
//! MLE is performed by adaptive gradient *ascent* on the log marginal
//! likelihood over log-hyperparameters: the step doubles after an improving
//! step and halves (with rollback) after a worsening one. This is the
//! "gradient descent" of §3.4 modulo sign conventions, robust without
//! line-search machinery.
//!
//! The retraining decision uses the paper's §5.3 heuristic: compute the
//! *first Newton step* `δθ = −L''(θ)⁻¹ L'(θ)` (diagonal Hessian) and retrain
//! only when `‖δθ‖∞` exceeds the threshold Δθ — i.e. when the optimizer
//! "would move far" from the current hyperparameters.

use crate::model::GpModel;
use crate::Result;

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Log marginal likelihood before training.
    pub initial_lml: f64,
    /// Log marginal likelihood after training.
    pub final_lml: f64,
    /// Gradient-ascent iterations performed.
    pub iterations: usize,
    /// Final log-hyperparameters.
    pub theta: Vec<f64>,
}

/// Configuration for gradient-ascent MLE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum gradient steps.
    pub max_iters: usize,
    /// Stop when the infinity-norm of the gradient falls below this.
    pub grad_tol: f64,
    /// Initial step size in log-parameter space.
    pub initial_step: f64,
    /// Hyperparameters are clamped to `[-bound, bound]` in log space to
    /// keep the covariance numerically sane.
    pub log_bound: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_iters: 50,
            grad_tol: 1e-3,
            initial_step: 0.1,
            log_bound: 8.0,
        }
    }
}

/// Maximize the log marginal likelihood in place.
pub fn train(model: &mut GpModel, config: &TrainConfig) -> Result<TrainReport> {
    let initial_lml = model.log_marginal_likelihood()?;
    let mut best_lml = initial_lml;
    let mut theta = model.kernel().params();
    let mut step = config.initial_step;
    let mut iterations = 0;

    for _ in 0..config.max_iters {
        iterations += 1;
        let grad = model.lml_gradient()?;
        let gnorm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        if gnorm < config.grad_tol {
            break;
        }
        // Normalized ascent step, clamped into the trust box.
        let proposal: Vec<f64> = theta
            .iter()
            .zip(&grad)
            .map(|(t, g)| (t + step * g / gnorm).clamp(-config.log_bound, config.log_bound))
            .collect();
        model.set_hyperparams(&proposal)?;
        let lml = model.log_marginal_likelihood()?;
        if lml > best_lml {
            best_lml = lml;
            theta = proposal;
            step = (step * 2.0).min(1.0);
        } else {
            // Roll back and shrink.
            model.set_hyperparams(&theta)?;
            step *= 0.5;
            if step < 1e-4 {
                break;
            }
        }
    }
    Ok(TrainReport {
        initial_lml,
        final_lml: best_lml,
        iterations,
        theta,
    })
}

/// Size of the first Newton step `‖−L''⁻¹ L'‖∞` over the diagonal Hessian.
///
/// Coordinates with non-negative curvature (locally convex or flat in that
/// direction) fall back to a unit-curvature gradient step, which errs toward
/// retraining — the safe direction.
pub fn newton_step_norm(model: &GpModel) -> Result<f64> {
    let grad = model.lml_gradient()?;
    let hess = model.lml_hessian_diag()?;
    let mut norm = 0.0f64;
    for (g, h) in grad.iter().zip(&hess) {
        let step = if *h < -1e-12 { -g / h } else { *g };
        norm = norm.max(step.abs());
    }
    Ok(norm)
}

/// The §5.3 retraining decision: retrain iff the first Newton step exceeds
/// `delta_theta`.
pub fn should_retrain(model: &GpModel, delta_theta: f64) -> Result<bool> {
    Ok(newton_step_norm(model)? > delta_theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use crate::model::GpModel;

    /// A smooth 1-D function sampled on a grid.
    fn fitted_model(lengthscale_guess: f64, n: usize) -> GpModel {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, lengthscale_guess)), 1);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 10.0 / n as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.8).sin() * 2.0).collect();
        m.fit(xs, ys).unwrap();
        m
    }

    #[test]
    fn training_improves_likelihood() {
        // Deliberately bad initial lengthscale.
        let mut m = fitted_model(0.05, 25);
        let report = train(&mut m, &TrainConfig::default()).unwrap();
        assert!(
            report.final_lml > report.initial_lml + 1.0,
            "LML {} -> {}",
            report.initial_lml,
            report.final_lml
        );
        // Hyperparameters actually moved.
        assert!(report.iterations > 1);
    }

    #[test]
    fn training_improves_prediction() {
        let mut m = fitted_model(0.05, 25);
        let before = m.predict(&[5.17]).unwrap().mean;
        train(&mut m, &TrainConfig::default()).unwrap();
        let after = m.predict(&[5.17]).unwrap().mean;
        let truth = (5.17f64 * 0.8).sin() * 2.0;
        assert!(
            (after - truth).abs() <= (before - truth).abs() + 1e-9,
            "prediction got worse: {before} -> {after} (truth {truth})"
        );
    }

    #[test]
    fn converged_model_stops_quickly() {
        let mut m = fitted_model(1.0, 25);
        let big = TrainConfig {
            max_iters: 400,
            ..TrainConfig::default()
        };
        let r1 = train(&mut m, &big).unwrap();
        // Once converged, another run barely moves the likelihood.
        let r2 = train(&mut m, &big).unwrap();
        assert!(r2.final_lml >= r1.final_lml - 1e-9);
        assert!(
            (r2.final_lml - r2.initial_lml).abs() < 0.5,
            "second run still improved by {}",
            r2.final_lml - r2.initial_lml
        );
    }

    #[test]
    fn newton_step_large_when_misfit_small_when_fit() {
        let mut m = fitted_model(0.05, 25);
        let before = newton_step_norm(&m).unwrap();
        train(&mut m, &TrainConfig::default()).unwrap();
        let after = newton_step_norm(&m).unwrap();
        assert!(
            before > after,
            "Newton step should shrink after training: {before} -> {after}"
        );
        assert!(should_retrain(&m, before).unwrap() == (after > before));
    }

    #[test]
    fn should_retrain_thresholding() {
        let m = fitted_model(0.05, 20);
        let step = newton_step_norm(&m).unwrap();
        assert!(should_retrain(&m, step * 0.5).unwrap());
        assert!(!should_retrain(&m, step * 2.0).unwrap());
    }
}
