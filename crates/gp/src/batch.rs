//! Blocked batch inference (the warm fast path, §5.1).
//!
//! Per-tuple inference evaluates all `m` Monte Carlo samples against the
//! same (local or global) model. Doing that one sample at a time costs one
//! kernel-vector build and one `O(l²)` triangular solve *per sample*, plus a
//! handful of allocations per call. This module evaluates the whole tuple as
//! one blocked operation:
//!
//! 1. build the `l x m` kernel matrix `K` once (row `r` = selected training
//!    point `r` against every sample);
//! 2. accumulate all `m` posterior means as `Kᵀ α` via lane-unrolled axpy
//!    over rows;
//! 3. run one column-blocked multi-RHS forward substitution `V = L⁻¹ K`
//!    ([`Cholesky::solve_lower_in_place`]) and accumulate all `m` squared
//!    norms `‖v_c‖²` row-wise for the variances.
//!
//! **Bit-identity contract.** Every per-sample reduction preserves the
//! scalar path's order exactly: means and squared norms accumulate over
//! training rows in ascending order (the same order `dot` walks them), and
//! the multi-RHS solve performs the scalar `solve_lower` op sequence per
//! column (`k` ascending, true division by the diagonal). SIMD-style
//! unrolling happens only *across* samples, which are independent outputs.
//! So `predict_batch(xs)[c] == predict(xs[c])` bit for bit — the property
//! the digest-pinning test suites rely on.
//!
//! [`LocalPredictorCache`] additionally skips the `O(l³)` subset
//! refactorization when consecutive tuples select the same training subset
//! from the same model state — common under clustered workloads where
//! neighboring tuples share a local neighborhood.

use crate::kernel::Kernel;
use crate::local::LocalPredictor;
use crate::model::{GpModel, Prediction};
use crate::Result;
use std::sync::Arc;
use udf_linalg::{lanes, Cholesky};

/// Reusable buffers for blocked batch prediction. One instance per worker
/// (or per sequential caller) makes steady-state inference allocation-free.
#[derive(Debug, Default, Clone)]
pub struct PredictScratch {
    /// Row-major `l x m` kernel matrix, overwritten in place by `V = L⁻¹ K`.
    kv: Vec<f64>,
    /// Per-sample mean accumulators (`m`).
    means: Vec<f64>,
    /// Per-sample squared-norm accumulators (`m`).
    sq: Vec<f64>,
}

/// Shared core of [`GpModel::predict_batch_with`] and
/// [`LocalPredictor::predict_batch_with`].
///
/// `indices: None` selects every training row (global inference);
/// `Some(idx)` restricts rows and weights to the subset, in subset order —
/// exactly the rows/weights the scalar paths walk. `chol` must be the
/// factor over the chosen rows. Dimension checks are the caller's job.
#[allow(clippy::too_many_arguments)] // internal seam shared by two thin wrappers
pub(crate) fn batch_predict_core(
    kernel: &dyn Kernel,
    xs: &[Vec<f64>],
    indices: Option<&[usize]>,
    alpha: &[f64],
    chol: &Cholesky,
    queries: &[Vec<f64>],
    scratch: &mut PredictScratch,
    out: &mut Vec<Prediction>,
) -> Result<()> {
    let l = chol.dim();
    let m = queries.len();
    out.clear();
    if m == 0 {
        return Ok(());
    }

    // 1. Kernel matrix K (l x m): row r = training point r vs every sample.
    scratch.kv.clear();
    scratch.kv.resize(l * m, 0.0);
    for r in 0..l {
        let xi = match indices {
            Some(idx) => &xs[idx[r]],
            None => &xs[r],
        };
        // One virtual call per row; `eval_row` is bit-identical to the
        // per-entry `eval` loop it replaces (trait contract).
        kernel.eval_row(xi, queries, &mut scratch.kv[r * m..(r + 1) * m]);
    }

    // 2. Means: Kᵀ α accumulated row-by-row (training index ascending — the
    //    same reduction order as the scalar `dot(k, α)`). Accumulators start
    //    at -0.0, the additive identity `Iterator::sum` folds floats from:
    //    a far query whose kernel row underflows to zero against a negative
    //    weight sums to -0.0 on the scalar path, and +0.0 + -0.0 = +0.0
    //    would break bit-identity exactly there.
    scratch.means.clear();
    scratch.means.resize(m, -0.0);
    for r in 0..l {
        let a = match indices {
            Some(idx) => alpha[idx[r]],
            None => alpha[r],
        };
        lanes::axpy(a, &scratch.kv[r * m..(r + 1) * m], &mut scratch.means);
    }

    // 3. Variances: V = L⁻¹ K in place, then ‖v_c‖² accumulated row-by-row.
    chol.solve_lower_in_place(&mut scratch.kv, m)?;
    scratch.sq.clear();
    scratch.sq.resize(m, -0.0); // same fold identity as `dot(v, v)`
    for r in 0..l {
        lanes::sq_accum(&scratch.kv[r * m..(r + 1) * m], &mut scratch.sq);
    }

    out.reserve(m);
    for (c, q) in queries.iter().enumerate() {
        let var = (kernel.eval(q, q) - scratch.sq[c]).max(0.0);
        out.push(Prediction {
            mean: scratch.means[c],
            var,
        });
    }
    Ok(())
}

/// One-entry cache of the last subset factorization, keyed by
/// `(model_id, epoch, indices)`.
///
/// Consecutive tuples whose sample boxes select the same training subset —
/// the common case on clustered or slowly-drifting inputs once the model
/// stops growing — reuse the `O(l³)` Cholesky factor instead of rebuilding
/// it. The `(model_id, epoch)` fingerprint makes a stale hit impossible:
/// any model mutation bumps the epoch, and distinct models never share an
/// id, so cross-model or post-update reuse misses by construction.
#[derive(Debug, Default, Clone)]
pub struct LocalPredictorCache {
    model_id: u64,
    epoch: u64,
    indices: Vec<usize>,
    chol: Option<Arc<Cholesky>>,
    hits: u64,
    misses: u64,
}

impl LocalPredictorCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a predictor for `indices` on `model`, reusing the cached
    /// factor when the selection and model state match. The boolean is
    /// `true` on a cache hit.
    pub fn get_or_build<'m>(
        &mut self,
        model: &'m GpModel,
        indices: &[usize],
    ) -> Result<(LocalPredictor<'m>, bool)> {
        if let Some(chol) = &self.chol {
            if self.model_id == model.model_id()
                && self.epoch == model.epoch()
                && self.indices == indices
            {
                self.hits += 1;
                return Ok((
                    LocalPredictor::from_cached(model, indices.to_vec(), Arc::clone(chol)),
                    true,
                ));
            }
        }
        self.misses += 1;
        let lp = LocalPredictor::new(model, indices.to_vec())?;
        self.model_id = model.model_id();
        self.epoch = model.epoch();
        self.indices.clear();
        self.indices.extend_from_slice(indices);
        self.chol = Some(Arc::clone(lp.factor_arc()));
        Ok((lp, false))
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use crate::local::select_local;
    use udf_spatial::BoundingBox;

    fn model(n: usize) -> GpModel {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 0.6)), 1);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.31]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 1.3).sin()).collect();
        m.fit(xs, ys).unwrap();
        m
    }

    #[test]
    fn global_batch_bit_identical_to_scalar() {
        let m = model(40);
        let queries: Vec<Vec<f64>> = (0..97).map(|i| vec![i as f64 * 0.13 - 1.0]).collect();
        let batch = m.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let s = m.predict(q).unwrap();
            assert_eq!(s.mean.to_bits(), b.mean.to_bits());
            assert_eq!(s.var.to_bits(), b.var.to_bits());
        }
    }

    #[test]
    fn local_batch_bit_identical_to_scalar() {
        let m = model(60);
        let qbox = BoundingBox::new(vec![2.0], vec![4.0]);
        let sel = select_local(&m, &qbox, 1e-5).unwrap();
        let lp = LocalPredictor::new(&m, sel.indices).unwrap();
        let queries: Vec<Vec<f64>> = (0..64).map(|i| vec![2.0 + i as f64 * 2.0 / 63.0]).collect();
        let batch = lp.predict_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            let s = lp.predict(q).unwrap();
            assert_eq!(s.mean.to_bits(), b.mean.to_bits());
            assert_eq!(s.var.to_bits(), b.var.to_bits());
        }
    }

    #[test]
    fn empty_query_batch_is_empty() {
        let m = model(8);
        assert!(m.predict_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn cache_hits_on_repeat_and_invalidates_on_mutation() {
        let m0 = model(30);
        let indices: Vec<usize> = (5..20).collect();
        let other: Vec<usize> = (0..12).collect();
        let mut cache = LocalPredictorCache::new();

        let (_, hit) = cache.get_or_build(&m0, &indices).unwrap();
        assert!(!hit);
        let (lp, hit) = cache.get_or_build(&m0, &indices).unwrap();
        assert!(hit, "same model+selection must hit");
        // A hit must produce the same factor bit-for-bit.
        let fresh = LocalPredictor::new(&m0, indices.clone()).unwrap();
        for (a, b) in lp
            .factor_arc()
            .lower()
            .as_slice()
            .iter()
            .zip(fresh.factor_arc().lower().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Different selection misses.
        let (_, hit) = cache.get_or_build(&m0, &other).unwrap();
        assert!(!hit);

        // Model mutation bumps the epoch and invalidates.
        let mut m1 = model(30);
        let (_, hit) = cache.get_or_build(&m1, &other).unwrap();
        assert!(!hit, "different model id must miss");
        let (_, hit) = cache.get_or_build(&m1, &other).unwrap();
        assert!(hit);
        m1.add_point(vec![50.0], 0.3).unwrap();
        let (_, hit) = cache.get_or_build(&m1, &other).unwrap();
        assert!(!hit, "mutated model must miss");
        assert_eq!(cache.stats(), (2, 4));
    }

    #[test]
    fn epoch_tracks_all_mutations() {
        let mut m = model(10);
        let e0 = m.epoch();
        m.add_point(vec![9.9], 0.1).unwrap();
        let e1 = m.epoch();
        assert!(e1 > e0);
        m.remove_oldest().unwrap();
        let e2 = m.epoch();
        assert!(e2 > e1);
        let theta = m.kernel().params();
        m.set_hyperparams(&theta).unwrap();
        assert!(m.epoch() > e2);
        // Distinct models never share an id.
        assert_ne!(model(3).model_id(), model(3).model_id());
    }

    #[test]
    fn half_value_distance_cached_and_invalidated() {
        let mut m = model(10);
        let d0 = m.half_value_distance().expect("isotropic");
        assert_eq!(
            d0.to_bits(),
            m.half_value_distance().unwrap().to_bits(),
            "cached value must be stable"
        );
        // Doubling the lengthscale doubles the half-value distance.
        let mut theta = m.kernel().params();
        theta[1] += std::f64::consts::LN_2; // params are log-scale
        m.set_hyperparams(&theta).unwrap();
        let d1 = m.half_value_distance().unwrap();
        assert!(
            (d1 / d0 - 2.0).abs() < 1e-9,
            "expected ~2x after doubling lengthscale, got {}",
            d1 / d0
        );
    }
}
