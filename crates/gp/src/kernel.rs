//! Covariance functions.
//!
//! Hyperparameters are exposed in **log space** (`θ_j = log p_j`): MLE over
//! log-parameters keeps them positive without constrained optimization and
//! matches the paper's gradient/Newton machinery (§3.4, §5.3).
//!
//! The paper works with the squared-exponential kernel
//! `k(x, x') = σ_f² exp(−‖x−x'‖² / (2ℓ²))` and notes that Matérn kernels
//! suit rougher functions (§3.2); all are provided.

/// A positive-definite covariance function with log-space hyperparameters.
pub trait Kernel: Send + Sync + std::fmt::Debug {
    /// Covariance `k(a, b)`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Number of hyperparameters.
    fn n_params(&self) -> usize;

    /// Current log-hyperparameters `θ`.
    fn params(&self) -> Vec<f64>;

    /// Replace the log-hyperparameters.
    ///
    /// # Panics
    /// Panics if `theta.len() != n_params()` (caller bug).
    fn set_params(&mut self, theta: &[f64]);

    /// Gradient `∂k(a, b)/∂θ_j` for every hyperparameter.
    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64>;

    /// Second derivatives `∂²k(a, b)/∂θ_j²` (diagonal of the Hessian),
    /// needed by the Newton retraining heuristic (§5.3).
    fn second_deriv(&self, a: &[f64], b: &[f64]) -> Vec<f64>;

    /// Evaluate `k(x, q)` for every `q` in `qs` into `out` (same length).
    ///
    /// Bitwise identical to calling [`Kernel::eval`] per point — overrides
    /// may hoist hyperparameter transforms out of the loop (`exp` of the
    /// same input is deterministic) but must keep the per-entry arithmetic
    /// exactly the scalar expression. One virtual call per row instead of
    /// per entry is what makes blocked kernel-matrix builds cheap.
    ///
    /// # Panics
    /// Panics if `out.len() != qs.len()` (caller bug).
    fn eval_row(&self, x: &[f64], qs: &[Vec<f64>], out: &mut [f64]) {
        assert_eq!(out.len(), qs.len(), "eval_row: wrong output length");
        for (o, q) in out.iter_mut().zip(qs) {
            *o = self.eval(x, q);
        }
    }

    /// For isotropic kernels: `k` as a function of Euclidean distance `r`.
    /// `None` for non-isotropic kernels (e.g. ARD); local inference's
    /// near/far-corner bound requires isotropy.
    fn eval_dist(&self, r: f64) -> Option<f64>;

    /// Bulk [`Kernel::eval_dist`]: `out[i] = eval_dist(rs[i])` for every
    /// `i`, bitwise identical to the scalar calls. Returns `false` (with
    /// `out` unspecified) for non-isotropic kernels.
    ///
    /// # Panics
    /// Panics if `out.len() != rs.len()` (caller bug).
    fn eval_dist_many(&self, rs: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(out.len(), rs.len(), "eval_dist_many: wrong output length");
        for (o, &r) in out.iter_mut().zip(rs) {
            match self.eval_dist(r) {
                Some(v) => *o = v,
                None => return false,
            }
        }
        true
    }

    /// Second spectral moment `λ₂` per input dimension of the associated
    /// stationary field (`λ₂ = −k''(0)/k(0)` for isotropic kernels),
    /// used by the Euler-characteristic confidence band (§4.2).
    fn spectral_moment(&self) -> Vec<f64>;

    /// Signal variance `σ_f²` (the prior variance at a point).
    fn signal_variance(&self) -> f64;

    /// Clone into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Kernel>;
}

impl Clone for Box<dyn Kernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Isotropic squared-exponential kernel
/// `k(a, b) = σ_f² exp(−‖a−b‖²/(2ℓ²))` — the paper's default (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredExponential {
    /// log σ_f
    log_sigma_f: f64,
    /// log ℓ
    log_len: f64,
}

impl SquaredExponential {
    /// Create with natural-scale parameters.
    ///
    /// # Panics
    /// Panics when parameters are not positive (caller bug — configs are
    /// validated upstream).
    pub fn new(sigma_f: f64, lengthscale: f64) -> Self {
        assert!(
            sigma_f > 0.0 && lengthscale > 0.0,
            "parameters must be positive"
        );
        SquaredExponential {
            log_sigma_f: sigma_f.ln(),
            log_len: lengthscale.ln(),
        }
    }

    /// Current lengthscale ℓ.
    pub fn lengthscale(&self) -> f64 {
        self.log_len.exp()
    }

    /// Current signal standard deviation σ_f.
    pub fn sigma_f(&self) -> f64 {
        self.log_sigma_f.exp()
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let l2 = (2.0 * self.log_len).exp();
        (2.0 * self.log_sigma_f).exp() * (-0.5 * sq_dist(a, b) / l2).exp()
    }

    fn eval_row(&self, x: &[f64], qs: &[Vec<f64>], out: &mut [f64]) {
        assert_eq!(out.len(), qs.len(), "eval_row: wrong output length");
        // `eval` with the hyperparameter transforms hoisted: `exp` of the
        // same input is deterministic, and the per-entry expression is the
        // scalar one verbatim, so each entry is bit-identical to `eval`.
        let l2 = (2.0 * self.log_len).exp();
        let sf2 = (2.0 * self.log_sigma_f).exp();
        for (o, q) in out.iter_mut().zip(qs) {
            *o = sf2 * (-0.5 * sq_dist(x, q) / l2).exp();
        }
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f, self.log_len]
    }

    fn set_params(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), 2, "SquaredExponential has 2 hyperparameters");
        self.log_sigma_f = theta[0];
        self.log_len = theta[1];
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let k = self.eval(a, b);
        let l2 = (2.0 * self.log_len).exp();
        let u = sq_dist(a, b) / l2; // r²/ℓ²
        vec![2.0 * k, k * u]
    }

    fn second_deriv(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let k = self.eval(a, b);
        let l2 = (2.0 * self.log_len).exp();
        let u = sq_dist(a, b) / l2;
        // ∂²k/∂(log σf)² = 4k; ∂²k/∂(log ℓ)² = k(u² − 2u).
        vec![4.0 * k, k * (u * u - 2.0 * u)]
    }

    fn eval_dist(&self, r: f64) -> Option<f64> {
        let l2 = (2.0 * self.log_len).exp();
        Some((2.0 * self.log_sigma_f).exp() * (-0.5 * r * r / l2).exp())
    }

    fn eval_dist_many(&self, rs: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(out.len(), rs.len(), "eval_dist_many: wrong output length");
        // `eval_dist` with the transforms hoisted; bit-identical per entry.
        let l2 = (2.0 * self.log_len).exp();
        let sf2 = (2.0 * self.log_sigma_f).exp();
        for (o, &r) in out.iter_mut().zip(rs) {
            *o = sf2 * (-0.5 * r * r / l2).exp();
        }
        true
    }

    fn spectral_moment(&self) -> Vec<f64> {
        // λ₂ = 1/ℓ² for the SE kernel (per dimension; isotropic).
        vec![(-2.0 * self.log_len).exp()]
    }

    fn signal_variance(&self) -> f64 {
        (2.0 * self.log_sigma_f).exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Squared-exponential kernel with per-dimension (ARD) lengthscales:
/// `k(a, b) = σ_f² exp(−½ Σ_i (a_i−b_i)²/ℓ_i²)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredExponentialArd {
    log_sigma_f: f64,
    log_lens: Vec<f64>,
}

impl SquaredExponentialArd {
    /// Create with natural-scale parameters.
    ///
    /// # Panics
    /// Panics when any parameter is non-positive or no lengthscales given.
    pub fn new(sigma_f: f64, lengthscales: &[f64]) -> Self {
        assert!(sigma_f > 0.0, "sigma_f must be positive");
        assert!(
            !lengthscales.is_empty() && lengthscales.iter().all(|l| *l > 0.0),
            "lengthscales must be positive and non-empty"
        );
        SquaredExponentialArd {
            log_sigma_f: sigma_f.ln(),
            log_lens: lengthscales.iter().map(|l| l.ln()).collect(),
        }
    }

    fn weighted_sq_dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.log_lens.len());
        a.iter()
            .zip(b)
            .zip(&self.log_lens)
            .map(|((x, y), ll)| {
                let d = x - y;
                d * d * (-2.0 * ll).exp()
            })
            .sum()
    }
}

impl Kernel for SquaredExponentialArd {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (2.0 * self.log_sigma_f).exp() * (-0.5 * self.weighted_sq_dist(a, b)).exp()
    }

    fn n_params(&self) -> usize {
        1 + self.log_lens.len()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.n_params());
        p.push(self.log_sigma_f);
        p.extend_from_slice(&self.log_lens);
        p
    }

    fn set_params(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), self.n_params(), "wrong hyperparameter count");
        self.log_sigma_f = theta[0];
        self.log_lens.copy_from_slice(&theta[1..]);
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let k = self.eval(a, b);
        let mut g = Vec::with_capacity(self.n_params());
        g.push(2.0 * k);
        for (i, ll) in self.log_lens.iter().enumerate() {
            let d = a[i] - b[i];
            g.push(k * d * d * (-2.0 * ll).exp());
        }
        g
    }

    fn second_deriv(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let k = self.eval(a, b);
        let mut h = Vec::with_capacity(self.n_params());
        h.push(4.0 * k);
        for (i, ll) in self.log_lens.iter().enumerate() {
            let d = a[i] - b[i];
            let u = d * d * (-2.0 * ll).exp();
            h.push(k * (u * u - 2.0 * u));
        }
        h
    }

    fn eval_dist(&self, _r: f64) -> Option<f64> {
        None // not isotropic
    }

    fn spectral_moment(&self) -> Vec<f64> {
        self.log_lens.iter().map(|ll| (-2.0 * ll).exp()).collect()
    }

    fn signal_variance(&self) -> f64 {
        (2.0 * self.log_sigma_f).exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Matérn ν = 3/2 kernel: `k = σ_f² (1 + s) e^{−s}`, `s = √3 r / ℓ` —
/// for once-differentiable sample paths (§3.2's "less smooth" option).
#[derive(Debug, Clone, PartialEq)]
pub struct Matern32 {
    log_sigma_f: f64,
    log_len: f64,
}

impl Matern32 {
    /// Create with natural-scale parameters.
    ///
    /// # Panics
    /// Panics when parameters are not positive.
    pub fn new(sigma_f: f64, lengthscale: f64) -> Self {
        assert!(
            sigma_f > 0.0 && lengthscale > 0.0,
            "parameters must be positive"
        );
        Matern32 {
            log_sigma_f: sigma_f.ln(),
            log_len: lengthscale.ln(),
        }
    }
}

impl Kernel for Matern32 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_dist(sq_dist(a, b).sqrt()).expect("isotropic")
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f, self.log_len]
    }

    fn set_params(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), 2, "Matern32 has 2 hyperparameters");
        self.log_sigma_f = theta[0];
        self.log_len = theta[1];
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let sf2 = (2.0 * self.log_sigma_f).exp();
        let s = 3.0f64.sqrt() * sq_dist(a, b).sqrt() / self.log_len.exp();
        let e = (-s).exp();
        // ∂k/∂logσf = 2k; ∂k/∂logℓ = σ² s² e^{−s}.
        vec![2.0 * sf2 * (1.0 + s) * e, sf2 * s * s * e]
    }

    fn second_deriv(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let sf2 = (2.0 * self.log_sigma_f).exp();
        let s = 3.0f64.sqrt() * sq_dist(a, b).sqrt() / self.log_len.exp();
        let e = (-s).exp();
        // ∂²k/∂(logσf)² = 4k; ∂²k/∂(logℓ)² = σ² (s³ − 2s²) e^{−s}.
        vec![
            4.0 * sf2 * (1.0 + s) * e,
            sf2 * (s * s * s - 2.0 * s * s) * e,
        ]
    }

    fn eval_dist(&self, r: f64) -> Option<f64> {
        let s = 3.0f64.sqrt() * r / self.log_len.exp();
        Some((2.0 * self.log_sigma_f).exp() * (1.0 + s) * (-s).exp())
    }

    fn eval_dist_many(&self, rs: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(out.len(), rs.len(), "eval_dist_many: wrong output length");
        // `eval_dist` with the transforms hoisted; bit-identical per entry.
        let len = self.log_len.exp();
        let sf2 = (2.0 * self.log_sigma_f).exp();
        for (o, &r) in out.iter_mut().zip(rs) {
            let s = 3.0f64.sqrt() * r / len;
            *o = sf2 * (1.0 + s) * (-s).exp();
        }
        true
    }

    fn spectral_moment(&self) -> Vec<f64> {
        // λ₂ = 3/ℓ².
        vec![3.0 * (-2.0 * self.log_len).exp()]
    }

    fn signal_variance(&self) -> f64 {
        (2.0 * self.log_sigma_f).exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Matérn ν = 5/2 kernel: `k = σ_f² (1 + s + s²/3) e^{−s}`, `s = √5 r / ℓ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matern52 {
    log_sigma_f: f64,
    log_len: f64,
}

impl Matern52 {
    /// Create with natural-scale parameters.
    ///
    /// # Panics
    /// Panics when parameters are not positive.
    pub fn new(sigma_f: f64, lengthscale: f64) -> Self {
        assert!(
            sigma_f > 0.0 && lengthscale > 0.0,
            "parameters must be positive"
        );
        Matern52 {
            log_sigma_f: sigma_f.ln(),
            log_len: lengthscale.ln(),
        }
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_dist(sq_dist(a, b).sqrt()).expect("isotropic")
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f, self.log_len]
    }

    fn set_params(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), 2, "Matern52 has 2 hyperparameters");
        self.log_sigma_f = theta[0];
        self.log_len = theta[1];
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let sf2 = (2.0 * self.log_sigma_f).exp();
        let s = 5.0f64.sqrt() * sq_dist(a, b).sqrt() / self.log_len.exp();
        let e = (-s).exp();
        let k = sf2 * (1.0 + s + s * s / 3.0) * e;
        // ∂k/∂logℓ = σ² (s²/3)(1+s) e^{−s}.
        vec![2.0 * k, sf2 * (s * s / 3.0) * (1.0 + s) * e]
    }

    fn second_deriv(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let sf2 = (2.0 * self.log_sigma_f).exp();
        let s = 5.0f64.sqrt() * sq_dist(a, b).sqrt() / self.log_len.exp();
        let e = (-s).exp();
        let k = sf2 * (1.0 + s + s * s / 3.0) * e;
        // ∂²k/∂(logℓ)² = σ² (s⁴ − 2s³ − 2s²)/3 · e^{−s}.
        vec![
            4.0 * k,
            sf2 * (s.powi(4) - 2.0 * s.powi(3) - 2.0 * s * s) / 3.0 * e,
        ]
    }

    fn eval_dist(&self, r: f64) -> Option<f64> {
        let s = 5.0f64.sqrt() * r / self.log_len.exp();
        Some((2.0 * self.log_sigma_f).exp() * (1.0 + s + s * s / 3.0) * (-s).exp())
    }

    fn eval_dist_many(&self, rs: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(out.len(), rs.len(), "eval_dist_many: wrong output length");
        // `eval_dist` with the transforms hoisted; bit-identical per entry.
        let len = self.log_len.exp();
        let sf2 = (2.0 * self.log_sigma_f).exp();
        for (o, &r) in out.iter_mut().zip(rs) {
            let s = 5.0f64.sqrt() * r / len;
            *o = sf2 * (1.0 + s + s * s / 3.0) * (-s).exp();
        }
        true
    }

    fn spectral_moment(&self) -> Vec<f64> {
        // λ₂ = 5/(3ℓ²).
        vec![5.0 / 3.0 * (-2.0 * self.log_len).exp()]
    }

    fn signal_variance(&self) -> f64 {
        (2.0 * self.log_sigma_f).exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_grad_fd(kernel: &mut dyn Kernel, a: &[f64], b: &[f64]) {
        // Central finite differences on every hyperparameter.
        let theta0 = kernel.params();
        let g = kernel.grad(a, b);
        let h = kernel.second_deriv(a, b);
        let eps = 1e-5;
        for j in 0..theta0.len() {
            let mut tp = theta0.clone();
            tp[j] += eps;
            kernel.set_params(&tp);
            let kp = kernel.eval(a, b);
            let gp = kernel.grad(a, b)[j];
            let mut tm = theta0.clone();
            tm[j] -= eps;
            kernel.set_params(&tm);
            let km = kernel.eval(a, b);
            let gm = kernel.grad(a, b)[j];
            kernel.set_params(&theta0);
            let fd = (kp - km) / (2.0 * eps);
            assert!(
                (fd - g[j]).abs() < 1e-6 * (1.0 + g[j].abs()),
                "grad[{j}]: fd {fd} vs analytic {}",
                g[j]
            );
            let fd2 = (gp - gm) / (2.0 * eps);
            assert!(
                (fd2 - h[j]).abs() < 1e-5 * (1.0 + h[j].abs()),
                "hess[{j}]: fd {fd2} vs analytic {}",
                h[j]
            );
        }
    }

    #[test]
    fn se_values_and_derivatives() {
        let mut k = SquaredExponential::new(1.5, 0.8);
        let (a, b) = ([0.3, -0.2], [1.0, 0.5]);
        // k(x,x) = σ_f².
        assert!((k.eval(&a, &a) - 2.25).abs() < 1e-12);
        assert!(k.eval(&a, &b) < k.eval(&a, &a));
        check_grad_fd(&mut k, &a, &b);
        check_grad_fd(&mut k, &a, &a);
    }

    #[test]
    fn ard_derivatives_and_anisotropy() {
        let mut k = SquaredExponentialArd::new(1.0, &[0.5, 5.0]);
        let a = [0.0, 0.0];
        // Displacement along the short lengthscale decays much faster.
        let bx = [1.0, 0.0];
        let by = [0.0, 1.0];
        assert!(k.eval(&a, &bx) < k.eval(&a, &by));
        check_grad_fd(&mut k, &a, &bx);
        assert!(k.eval_dist(1.0).is_none());
        assert_eq!(k.spectral_moment().len(), 2);
    }

    #[test]
    fn matern32_derivatives() {
        let mut k = Matern32::new(2.0, 1.3);
        check_grad_fd(&mut k, &[0.1, 0.9], &[-0.4, 0.3]);
        assert!((k.eval(&[0.0], &[0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn matern52_derivatives() {
        let mut k = Matern52::new(0.7, 0.4);
        check_grad_fd(&mut k, &[0.1], &[0.35]);
        // Smoother than 3/2 at the same distance (closer to 1 after scaling).
        let k32 = Matern32::new(1.0, 1.0);
        let k52 = Matern52::new(1.0, 1.0);
        let r = 0.5;
        assert!(k52.eval_dist(r).unwrap() > k32.eval_dist(r).unwrap());
    }

    #[test]
    fn kernels_decay_monotonically() {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(SquaredExponential::new(1.0, 1.0)),
            Box::new(Matern32::new(1.0, 1.0)),
            Box::new(Matern52::new(1.0, 1.0)),
        ];
        for k in &kernels {
            let mut prev = k.eval_dist(0.0).unwrap();
            for i in 1..50 {
                let v = k.eval_dist(i as f64 * 0.2).unwrap();
                assert!(
                    v <= prev + 1e-15,
                    "{k:?} not monotone at r={}",
                    i as f64 * 0.2
                );
                prev = v;
            }
        }
    }

    #[test]
    fn spectral_moments_positive() {
        assert!(SquaredExponential::new(1.0, 2.0).spectral_moment()[0] > 0.0);
        assert!((SquaredExponential::new(1.0, 2.0).spectral_moment()[0] - 0.25).abs() < 1e-12);
        assert!((Matern32::new(1.0, 1.0).spectral_moment()[0] - 3.0).abs() < 1e-12);
        assert!((Matern52::new(1.0, 1.0).spectral_moment()[0] - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bulk_row_eval_bitwise_matches_scalar() {
        // The hoisted overrides must equal per-entry eval/eval_dist bit for
        // bit — the blocked fast path's correctness rests on this.
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(SquaredExponential::new(1.5, 0.8)),
            Box::new(SquaredExponentialArd::new(1.0, &[0.5, 5.0])),
            Box::new(Matern32::new(2.0, 1.3)),
            Box::new(Matern52::new(0.7, 0.4)),
        ];
        let x = [0.3, -0.2];
        let qs: Vec<Vec<f64>> = (0..33)
            .map(|i| vec![i as f64 * 0.7 - 9.0, (i as f64 * 1.3).sin()])
            .collect();
        let rs: Vec<f64> = (0..33).map(|i| i as f64 * 0.45).collect();
        for k in &kernels {
            let mut row = vec![0.0; qs.len()];
            k.eval_row(&x, &qs, &mut row);
            for (q, v) in qs.iter().zip(&row) {
                assert_eq!(k.eval(&x, q).to_bits(), v.to_bits(), "{k:?} at {q:?}");
            }
            let mut kv = vec![0.0; rs.len()];
            let iso = k.eval_dist_many(&rs, &mut kv);
            assert_eq!(iso, k.eval_dist(0.0).is_some(), "{k:?} isotropy flag");
            if iso {
                for (r, v) in rs.iter().zip(&kv) {
                    assert_eq!(
                        k.eval_dist(*r).unwrap().to_bits(),
                        v.to_bits(),
                        "{k:?} at r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn boxed_clone_preserves_params() {
        let k = SquaredExponential::new(1.5, 0.8);
        let boxed: Box<dyn Kernel> = Box::new(k.clone());
        let cloned = boxed.clone();
        assert_eq!(cloned.params(), k.params());
    }
}
