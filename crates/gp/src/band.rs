//! Simultaneous confidence bands (§4.2, "Computing Simultaneous Confidence
//! Bands").
//!
//! A pointwise band `f̂(x) ± 2σ(x)` does not bound a GP *sample path*
//! everywhere at once. The paper adopts Adler's approximation (Eq. 5):
//!
//! `Pr[sup_x Z(x) ≥ z] ≈ E[φ(A_z)]`
//!
//! where `Z(x) = (f̃(x) − f̂(x))/σ(x)` is the standardized error field and
//! `φ(A_z)` the Euler characteristic of its excursion set above `z`. For a
//! stationary unit-variance Gaussian field over a box with side lengths
//! `T_i` and second spectral moments `λ₂,i`, the Gaussian kinematic formula
//! gives
//!
//! `E[φ(A_z)] = Φ̄(z) + Σ_{j=1..d} e_j(T√λ₂) · (2π)^{−(j+1)/2} H_{j−1}(z) e^{−z²/2}`
//!
//! with `e_j` the elementary symmetric polynomials (sum over j-dimensional
//! faces of the box) and `H` the probabilists' Hermite polynomials. We solve
//! `2·E[φ(A_{z_α})] = α` (two-sided band, |Z| ≥ z) for `z_α` by bisection.
//!
//! Conservativeness: the standardized posterior error field is not exactly
//! stationary; using the *prior* spectral moments is the standard practice
//! the paper follows, and the EC heuristic upper-bounds the violation
//! probability for the large-z regime of interest (small α).

use crate::kernel::Kernel;
use udf_prob::special::{hermite, norm_sf};
use udf_spatial::BoundingBox;

/// Expected Euler characteristic of the excursion set of a standardized
/// stationary field above level `z` over `domain`.
#[allow(clippy::needless_range_loop)] // e[j] is indexed by polynomial order j ≥ 1
pub fn expected_euler_characteristic(kernel: &dyn Kernel, domain: &BoundingBox, z: f64) -> f64 {
    let d = domain.dim();
    let moments = kernel.spectral_moment();
    // a_i = T_i sqrt(λ₂,i); isotropic kernels report one moment for all dims.
    let a: Vec<f64> = (0..d)
        .map(|i| {
            let lam = if moments.len() == 1 {
                moments[0]
            } else {
                moments[i]
            };
            (domain.hi()[i] - domain.lo()[i]) * lam.sqrt()
        })
        .collect();
    let e = elementary_symmetric(&a);
    let two_pi = 2.0 * std::f64::consts::PI;
    let gauss = (-0.5 * z * z).exp();
    let mut total = norm_sf(z);
    for j in 1..=d {
        let rho_j = two_pi.powf(-((j as f64 + 1.0) / 2.0)) * hermite(j - 1, z) * gauss;
        total += e[j] * rho_j;
    }
    total
}

/// Solve for the two-sided simultaneous band multiplier `z_α`:
/// `Pr[sup_x |Z(x)| ≥ z_α] ≈ 2·E[φ(A_{z_α})] = α`.
///
/// Returns a value in `[1, 16]`; the caller treats `f̂ ± z_α σ` as the
/// envelope `(f_S, f_L)` of Proposition 4.1.
pub fn simultaneous_z(kernel: &dyn Kernel, domain: &BoundingBox, alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0 && alpha < 1.0);
    let target = alpha / 2.0;
    let f = |z: f64| expected_euler_characteristic(kernel, domain, z);
    // E[φ] is decreasing in z on the z ≥ 1 regime of interest.
    let (mut lo, mut hi) = (1.0, 16.0);
    if f(lo) <= target {
        return lo;
    }
    if f(hi) >= target {
        return hi;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Elementary symmetric polynomials `e_0..e_n` of `a` (DP in O(n²)).
fn elementary_symmetric(a: &[f64]) -> Vec<f64> {
    let mut e = vec![0.0; a.len() + 1];
    e[0] = 1.0;
    for (idx, &x) in a.iter().enumerate() {
        for j in (1..=idx + 1).rev() {
            e[j] += x * e[j - 1];
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    #[test]
    fn elementary_symmetric_known() {
        // (x+1)(x+2)(x+3) = x³ + 6x² + 11x + 6 → e = [1, 6, 11, 6].
        let e = elementary_symmetric(&[1.0, 2.0, 3.0]);
        assert_eq!(e, vec![1.0, 6.0, 11.0, 6.0]);
    }

    #[test]
    fn ec_reduces_to_tail_for_tiny_domain() {
        // As the domain shrinks, sup over the box → a single Gaussian, and
        // E[φ(A_z)] → Φ̄(z).
        let k = SquaredExponential::new(1.0, 1.0);
        let tiny = BoundingBox::new(vec![0.0], vec![1e-9]);
        for z in [1.0, 2.0, 3.0] {
            let ec = expected_euler_characteristic(&k, &tiny, z);
            assert!((ec - norm_sf(z)).abs() < 1e-9, "z = {z}");
        }
    }

    #[test]
    fn ec_grows_with_domain_and_roughness() {
        let k = SquaredExponential::new(1.0, 1.0);
        let small = BoundingBox::new(vec![0.0], vec![1.0]);
        let large = BoundingBox::new(vec![0.0], vec![100.0]);
        assert!(
            expected_euler_characteristic(&k, &large, 2.0)
                > expected_euler_characteristic(&k, &small, 2.0)
        );
        // Shorter lengthscale = rougher field = more upcrossings.
        let rough = SquaredExponential::new(1.0, 0.1);
        assert!(
            expected_euler_characteristic(&rough, &small, 2.0)
                > expected_euler_characteristic(&k, &small, 2.0)
        );
    }

    #[test]
    fn z_alpha_exceeds_pointwise_quantile() {
        // A simultaneous band must be wider than the pointwise one.
        let k = SquaredExponential::new(1.0, 0.5);
        let domain = BoundingBox::new(vec![0.0], vec![10.0]);
        let z = simultaneous_z(&k, &domain, 0.05);
        assert!(z > 1.96, "z_α = {z}");
        assert!(z < 16.0);
    }

    #[test]
    fn z_alpha_monotone_in_alpha_and_domain() {
        let k = SquaredExponential::new(1.0, 0.5);
        let domain = BoundingBox::new(vec![0.0], vec![10.0]);
        let z05 = simultaneous_z(&k, &domain, 0.05);
        let z20 = simultaneous_z(&k, &domain, 0.20);
        assert!(z05 > z20, "stricter α needs a wider band");
        let bigger = BoundingBox::new(vec![0.0], vec![1000.0]);
        assert!(simultaneous_z(&k, &bigger, 0.05) > z05);
    }

    #[test]
    fn z_alpha_multidimensional() {
        let k = SquaredExponential::new(1.0, 1.0);
        let d1 = BoundingBox::new(vec![0.0], vec![10.0]);
        let d2 = BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let z1 = simultaneous_z(&k, &d1, 0.05);
        let z2 = simultaneous_z(&k, &d2, 0.05);
        assert!(z2 > z1, "2-D field has more excursions: {z1} vs {z2}");
    }

    #[test]
    fn verify_band_coverage_by_simulation() {
        // Draw GP prior paths on a grid and check the simultaneous band
        // covers sup |Z| at least (1−α) of the time. The standardized prior
        // field is exactly the stationary field the EC formula models.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use udf_linalg::{Cholesky, Matrix};
        use udf_prob::dist::sample_standard_normal;

        let lengthscale = 1.0;
        let k = SquaredExponential::new(1.0, lengthscale);
        let domain = BoundingBox::new(vec![0.0], vec![10.0]);
        let alpha = 0.10;
        let z_alpha = simultaneous_z(&k, &domain, alpha);

        let grid: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 * 10.0 / 199.0]).collect();
        let n = grid.len();
        let kmat = {
            let mut m = Matrix::from_symmetric_fn(n, |i, j| Kernel::eval(&k, &grid[i], &grid[j]));
            m.add_diagonal(1e-9).unwrap();
            m
        };
        let chol = Cholesky::factor(&kmat).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 400;
        let mut violations = 0;
        for _ in 0..trials {
            let z: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
            // Sample path = L z; standardized by σ = 1 (prior, unit variance).
            let l = chol.lower();
            let mut sup = 0.0f64;
            for i in 0..n {
                let mut v = 0.0;
                for (kk, zk) in z.iter().enumerate().take(i + 1) {
                    v += l.row(i)[kk] * zk;
                }
                sup = sup.max(v.abs());
            }
            if sup > z_alpha {
                violations += 1;
            }
        }
        let rate = violations as f64 / trials as f64;
        assert!(
            rate <= alpha * 1.5 + 0.02,
            "violation rate {rate} far exceeds α = {alpha} (z_α = {z_alpha})"
        );
    }
}
