//! Simultaneous confidence bands (§4.2, "Computing Simultaneous Confidence
//! Bands").
//!
//! A pointwise band `f̂(x) ± 2σ(x)` does not bound a GP *sample path*
//! everywhere at once. The paper adopts Adler's approximation (Eq. 5):
//!
//! `Pr[sup_x Z(x) ≥ z] ≈ E[φ(A_z)]`
//!
//! where `Z(x) = (f̃(x) − f̂(x))/σ(x)` is the standardized error field and
//! `φ(A_z)` the Euler characteristic of its excursion set above `z`. For a
//! stationary unit-variance Gaussian field over a box with side lengths
//! `T_i` and second spectral moments `λ₂,i`, the Gaussian kinematic formula
//! gives
//!
//! `E[φ(A_z)] = Φ̄(z) + Σ_{j=1..d} e_j(T√λ₂) · (2π)^{−(j+1)/2} H_{j−1}(z) e^{−z²/2}`
//!
//! with `e_j` the elementary symmetric polynomials (sum over j-dimensional
//! faces of the box) and `H` the probabilists' Hermite polynomials. We solve
//! `2·E[φ(A_{z_α})] = α` (two-sided band, |Z| ≥ z) for `z_α` by bisection.
//!
//! Conservativeness: the standardized posterior error field is not exactly
//! stationary; using the *prior* spectral moments is the standard practice
//! the paper follows, and the EC heuristic upper-bounds the violation
//! probability for the large-z regime of interest (small α).

use crate::kernel::Kernel;
use crate::model::GpModel;
use crate::{GpError, Result};
use udf_prob::special::{hermite, norm_sf};
use udf_spatial::BoundingBox;

/// Expected Euler characteristic of the excursion set of a standardized
/// stationary field above level `z` over `domain`.
#[allow(clippy::needless_range_loop)] // e[j] is indexed by polynomial order j ≥ 1
pub fn expected_euler_characteristic(kernel: &dyn Kernel, domain: &BoundingBox, z: f64) -> f64 {
    let d = domain.dim();
    let moments = kernel.spectral_moment();
    // a_i = T_i sqrt(λ₂,i); isotropic kernels report one moment for all dims.
    let a: Vec<f64> = (0..d)
        .map(|i| {
            let lam = if moments.len() == 1 {
                moments[0]
            } else {
                moments[i]
            };
            (domain.hi()[i] - domain.lo()[i]) * lam.sqrt()
        })
        .collect();
    let e = elementary_symmetric(&a);
    let two_pi = 2.0 * std::f64::consts::PI;
    let gauss = (-0.5 * z * z).exp();
    let mut total = norm_sf(z);
    for j in 1..=d {
        let rho_j = two_pi.powf(-((j as f64 + 1.0) / 2.0)) * hermite(j - 1, z) * gauss;
        total += e[j] * rho_j;
    }
    total
}

/// Solve for the two-sided simultaneous band multiplier `z_α`:
/// `Pr[sup_x |Z(x)| ≥ z_α] ≈ 2·E[φ(A_{z_α})] = α`.
///
/// Returns a value in `[1, 16]`; the caller treats `f̂ ± z_α σ` as the
/// envelope `(f_S, f_L)` of Proposition 4.1.
pub fn simultaneous_z(kernel: &dyn Kernel, domain: &BoundingBox, alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0 && alpha < 1.0);
    let target = alpha / 2.0;
    let f = |z: f64| expected_euler_characteristic(kernel, domain, z);
    // E[φ] is decreasing in z on the z ≥ 1 regime of interest.
    let (mut lo, mut hi) = (1.0, 16.0);
    if f(lo) <= target {
        return lo;
    }
    if f(hi) >= target {
        return hi;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Sound bracketing of the simultaneous band `f̂(x) ± z·σ(x)` over whole
/// input boxes, for a predictor conditioned on the training subset
/// `indices` (§4.2's envelope evaluated over a box instead of per sample).
///
/// Construction precomputes the one quantity that is quadratic in the
/// subset size — the RKHS norm of the restricted posterior mean — so each
/// [`bracket`](BandBoxBound::bracket) call is `O(|indices|)`; pair pruning
/// (udf-join) builds one `BandBoxBound` per candidate and brackets many
/// refinement sub-boxes with it.
///
/// Three sound ingredients (all need an isotropic kernel), phrased around
/// the kernel metric `d_k(x, c)² = k(x,x) + k(c,c) − 2k(x, c)
/// = 2(k(0) − k(‖x − c‖))`, which shrinks linearly with the box radius —
/// so bisection refinement actually converges:
///
/// * **mean**: the restricted mean `f̂(x) = Σ_{i∈indices} k(x, x*_i) α_i`
///   lies in the kernel's RKHS with norm `‖f̂‖² = α_Iᵀ K_II α_I`, so
///   `|f̂(x) − f̂(c)| ≤ ‖f̂‖ · d_k(x, c)`; evaluating `f̂` at the box
///   center `c` preserves the cancellation in α (a naive per-point
///   interval sum is off by orders of magnitude on dense, near-singular
///   training sets);
/// * **sd, local**: the subset-conditioned sd is 1-Lipschitz in the
///   kernel metric — with `P = I − Φ_I(K_II + jI)⁻¹Φ_Iᵀ` we have
///   `0 ⪯ P ⪯ I` and `σ(x) = ‖P^{1/2} k(·,x)‖`, hence
///   `|σ(x) − σ(c)| ≤ ‖P^{1/2}(k(·,x) − k(·,c))‖ ≤ d_k(x, c)` — so
///   `σ(c)` computed by the *fast path's own*
///   [`LocalPredictor`](crate::local::LocalPredictor) plus a
///   `d_k` slack bounds the sd over the box;
/// * **sd, global backstop**: posterior variance never increases as
///   observations are added (fixed jitter), so conditioning on the single
///   best subset point gives
///   `σ²(x) ≤ k(0) − k(x, x*_i)² / (k(0) + jitter)` with `k(x, x*_i)` at
///   least the kernel value at the box's farthest corner — loose, but
///   independent of the box size; the bracket takes the smaller of the
///   two sd bounds.
#[derive(Debug)]
pub struct BandBoxBound<'m> {
    model: &'m GpModel,
    predictor: crate::local::LocalPredictor<'m>,
    indices: Vec<usize>,
    /// RKHS norm ‖f̂_I‖ of the restricted posterior mean.
    hnorm: f64,
}

impl<'m> BandBoxBound<'m> {
    /// Precompute the bound context for a training subset —
    /// `O(|indices|²)` kernel evaluations for the RKHS norm plus the
    /// subset predictor's `O(|indices|³)` factorization (the same factor
    /// the fast path's local inference would build).
    pub fn new(model: &'m GpModel, indices: Vec<usize>) -> Result<Self> {
        if model.is_empty() || indices.is_empty() {
            return Err(GpError::EmptyModel);
        }
        if model.kernel().eval_dist(0.0).is_none() {
            return Err(GpError::InvalidParameter {
                what: "band box bounds require an isotropic kernel",
                value: f64::NAN,
            });
        }
        let kernel = model.kernel();
        let xs = model.inputs();
        let alpha = model.alpha();
        let mut norm_sq = 0.0;
        for &i in &indices {
            for &j in &indices {
                norm_sq += alpha[i] * alpha[j] * kernel.eval(&xs[i], &xs[j]);
            }
        }
        let predictor = crate::local::LocalPredictor::new(model, indices.clone())?;
        Ok(BandBoxBound {
            model,
            predictor,
            indices,
            // The Gram quadratic form is PSD; clamp numerical noise.
            hnorm: norm_sq.max(0.0).sqrt(),
        })
    }

    /// The training subset the bound is conditioned on.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// `(band_lo, band_hi)` with `band_lo ≤ f̂(x) − z·σ(x)` and
    /// `f̂(x) + z·σ(x) ≤ band_hi` for **all** `x ∈ bbox`, where `f̂`/`σ`
    /// are the subset predictor's posterior mean and sd.
    pub fn bracket(&self, bbox: &BoundingBox, z: f64) -> Result<(f64, f64)> {
        if !(z > 0.0 && z.is_finite()) {
            return Err(GpError::InvalidParameter {
                what: "band multiplier z",
                value: z,
            });
        }
        let kernel = self.model.kernel();
        let xs = self.model.inputs();
        let k0 = kernel.signal_variance();
        let center: Vec<f64> = bbox
            .lo()
            .iter()
            .zip(bbox.hi())
            .map(|(l, h)| 0.5 * (l + h))
            .collect();
        let at_center = self.predictor.predict(&center)?;
        let mut k_far_best = 0.0f64;
        for &i in &self.indices {
            let far = bbox.max_dist(&xs[i]);
            k_far_best = k_far_best.max(kernel.eval_dist(far).expect("isotropic"));
        }
        // Kernel-metric radius to the farthest box point from the center.
        let r_max = bbox.max_dist(&center);
        let k_r = kernel.eval_dist(r_max).expect("isotropic");
        let d_k = (2.0 * (k0 - k_r)).max(0.0).sqrt();
        let mean_slack = self.hnorm * d_k;
        let var_single = (k0 - k_far_best * k_far_best / (k0 + self.model.jitter())).clamp(0.0, k0);
        let sd_ub = (at_center.var.sqrt() + d_k).min(var_single.sqrt());
        let pad = mean_slack + z * sd_ub;
        Ok((at_center.mean - pad, at_center.mean + pad))
    }
}

/// Elementary symmetric polynomials `e_0..e_n` of `a` (DP in O(n²)).
fn elementary_symmetric(a: &[f64]) -> Vec<f64> {
    let mut e = vec![0.0; a.len() + 1];
    e[0] = 1.0;
    for (idx, &x) in a.iter().enumerate() {
        for j in (1..=idx + 1).rev() {
            e[j] += x * e[j - 1];
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    #[test]
    fn elementary_symmetric_known() {
        // (x+1)(x+2)(x+3) = x³ + 6x² + 11x + 6 → e = [1, 6, 11, 6].
        let e = elementary_symmetric(&[1.0, 2.0, 3.0]);
        assert_eq!(e, vec![1.0, 6.0, 11.0, 6.0]);
    }

    #[test]
    fn ec_reduces_to_tail_for_tiny_domain() {
        // As the domain shrinks, sup over the box → a single Gaussian, and
        // E[φ(A_z)] → Φ̄(z).
        let k = SquaredExponential::new(1.0, 1.0);
        let tiny = BoundingBox::new(vec![0.0], vec![1e-9]);
        for z in [1.0, 2.0, 3.0] {
            let ec = expected_euler_characteristic(&k, &tiny, z);
            assert!((ec - norm_sf(z)).abs() < 1e-9, "z = {z}");
        }
    }

    #[test]
    fn ec_grows_with_domain_and_roughness() {
        let k = SquaredExponential::new(1.0, 1.0);
        let small = BoundingBox::new(vec![0.0], vec![1.0]);
        let large = BoundingBox::new(vec![0.0], vec![100.0]);
        assert!(
            expected_euler_characteristic(&k, &large, 2.0)
                > expected_euler_characteristic(&k, &small, 2.0)
        );
        // Shorter lengthscale = rougher field = more upcrossings.
        let rough = SquaredExponential::new(1.0, 0.1);
        assert!(
            expected_euler_characteristic(&rough, &small, 2.0)
                > expected_euler_characteristic(&k, &small, 2.0)
        );
    }

    #[test]
    fn z_alpha_exceeds_pointwise_quantile() {
        // A simultaneous band must be wider than the pointwise one.
        let k = SquaredExponential::new(1.0, 0.5);
        let domain = BoundingBox::new(vec![0.0], vec![10.0]);
        let z = simultaneous_z(&k, &domain, 0.05);
        assert!(z > 1.96, "z_α = {z}");
        assert!(z < 16.0);
    }

    #[test]
    fn z_alpha_monotone_in_alpha_and_domain() {
        let k = SquaredExponential::new(1.0, 0.5);
        let domain = BoundingBox::new(vec![0.0], vec![10.0]);
        let z05 = simultaneous_z(&k, &domain, 0.05);
        let z20 = simultaneous_z(&k, &domain, 0.20);
        assert!(z05 > z20, "stricter α needs a wider band");
        let bigger = BoundingBox::new(vec![0.0], vec![1000.0]);
        assert!(simultaneous_z(&k, &bigger, 0.05) > z05);
    }

    #[test]
    fn z_alpha_multidimensional() {
        let k = SquaredExponential::new(1.0, 1.0);
        let d1 = BoundingBox::new(vec![0.0], vec![10.0]);
        let d2 = BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let z1 = simultaneous_z(&k, &d1, 0.05);
        let z2 = simultaneous_z(&k, &d2, 0.05);
        assert!(z2 > z1, "2-D field has more excursions: {z1} vs {z2}");
    }

    #[test]
    fn band_box_bracket_dominates_pointwise_band() {
        use crate::local::LocalPredictor;
        use crate::model::GpModel;

        // Model trained on a dense 1-D grid; the bracket must contain the
        // pointwise band of both the global predictor and any local subset
        // predictor, at every probe point inside the box.
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 0.6)), 1);
        for i in 0..24 {
            let x = i as f64 * 0.25;
            m.add_point(vec![x], (x * 0.9).sin()).unwrap();
        }
        let all: Vec<usize> = (0..m.len()).collect();
        let sub: Vec<usize> = (4..16).collect();
        let local = LocalPredictor::new(&m, sub.clone()).unwrap();
        let global_bound = BandBoxBound::new(&m, all).unwrap();
        let local_bound = BandBoxBound::new(&m, sub).unwrap();
        let bbox = BoundingBox::new(vec![1.4], vec![2.1]);
        for z in [1.5, 3.0] {
            let (g_lo, g_hi) = global_bound.bracket(&bbox, z).unwrap();
            let (l_lo, l_hi) = local_bound.bracket(&bbox, z).unwrap();
            for i in 0..=40 {
                let x = [1.4 + 0.7 * i as f64 / 40.0];
                let g = m.predict(&x).unwrap();
                let sd = g.var.sqrt();
                assert!(g_lo <= g.mean - z * sd + 1e-12, "global lower at {x:?}");
                assert!(g.mean + z * sd <= g_hi + 1e-12, "global upper at {x:?}");
                let l = local.predict(&x).unwrap();
                let lsd = l.var.sqrt();
                assert!(l_lo <= l.mean - z * lsd + 1e-12, "local lower at {x:?}");
                assert!(l.mean + z * lsd <= l_hi + 1e-12, "local upper at {x:?}");
            }
        }
    }

    #[test]
    fn band_box_bracket_tightens_in_warm_regions() {
        use crate::model::GpModel;

        // In a densely-sampled region the single-point variance bound is
        // nearly the jitter, so the bracket is far narrower than the prior
        // band ±z·σ_f — that gap is exactly what makes pair pruning fire.
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        for i in 0..30 {
            let x = i as f64 * 0.1;
            m.add_point(vec![x], 5.0).unwrap();
        }
        let all: Vec<usize> = (0..m.len()).collect();
        let bound = BandBoxBound::new(&m, all).unwrap();
        let warm = BoundingBox::new(vec![1.0], vec![1.2]);
        let z = 3.0;
        let (lo, hi) = bound.bracket(&warm, z).unwrap();
        assert!(
            hi - lo < 2.0 * z * 0.5,
            "warm bracket too wide: [{lo}, {hi}]"
        );
        // A constant-5 function must bracket around 5, far from 0.
        assert!(lo > 3.5 && hi < 6.5, "bracket [{lo}, {hi}] off target");
        // Far from the data the sd bound degrades toward the prior σ_f.
        let cold = BoundingBox::new(vec![90.0], vec![90.1]);
        let (clo, chi) = bound.bracket(&cold, z).unwrap();
        assert!(chi - clo > 2.0 * z * 0.9, "cold bracket suspiciously tight");
    }

    #[test]
    fn band_box_bracket_rejects_bad_inputs() {
        use crate::kernel::SquaredExponentialArd;
        use crate::model::GpModel;

        let empty = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        let b = BoundingBox::new(vec![0.0], vec![1.0]);
        assert!(matches!(
            BandBoxBound::new(&empty, vec![0]),
            Err(GpError::EmptyModel)
        ));
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        m.add_point(vec![0.5], 1.0).unwrap();
        assert!(matches!(
            BandBoxBound::new(&m, vec![]),
            Err(GpError::EmptyModel)
        ));
        let bound = BandBoxBound::new(&m, vec![0]).unwrap();
        assert!(matches!(
            bound.bracket(&b, f64::NAN),
            Err(GpError::InvalidParameter { .. })
        ));
        let mut ard = GpModel::new(Box::new(SquaredExponentialArd::new(1.0, &[1.0])), 1);
        ard.add_point(vec![0.5], 1.0).unwrap();
        assert!(matches!(
            BandBoxBound::new(&ard, vec![0]),
            Err(GpError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn verify_band_coverage_by_simulation() {
        // Draw GP prior paths on a grid and check the simultaneous band
        // covers sup |Z| at least (1−α) of the time. The standardized prior
        // field is exactly the stationary field the EC formula models.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use udf_linalg::{Cholesky, Matrix};
        use udf_prob::dist::sample_standard_normal;

        let lengthscale = 1.0;
        let k = SquaredExponential::new(1.0, lengthscale);
        let domain = BoundingBox::new(vec![0.0], vec![10.0]);
        let alpha = 0.10;
        let z_alpha = simultaneous_z(&k, &domain, alpha);

        let grid: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 * 10.0 / 199.0]).collect();
        let n = grid.len();
        let kmat = {
            let mut m = Matrix::from_symmetric_fn(n, |i, j| Kernel::eval(&k, &grid[i], &grid[j]));
            m.add_diagonal(1e-9).unwrap();
            m
        };
        let chol = Cholesky::factor(&kmat).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 400;
        let mut violations = 0;
        for _ in 0..trials {
            let z: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
            // Sample path = L z; standardized by σ = 1 (prior, unit variance).
            let l = chol.lower();
            let mut sup = 0.0f64;
            for i in 0..n {
                let mut v = 0.0;
                for (kk, zk) in z.iter().enumerate().take(i + 1) {
                    v += l.row(i)[kk] * zk;
                }
                sup = sup.max(v.abs());
            }
            if sup > z_alpha {
                violations += 1;
            }
        }
        let rate = violations as f64 / trials as f64;
        assert!(
            rate <= alpha * 1.5 + 0.02,
            "violation rate {rate} far exceeds α = {alpha} (z_α = {z_alpha})"
        );
    }
}
