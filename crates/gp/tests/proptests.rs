//! Property-based tests for GP regression invariants.

use proptest::prelude::*;
use udf_gp::band::{expected_euler_characteristic, simultaneous_z};
use udf_gp::kernel::Kernel;
use udf_gp::local::LocalPredictor;
use udf_gp::{GpModel, Matern52, PredictScratch, SquaredExponential};
use udf_spatial::BoundingBox;

/// Distinct 1-D training inputs with bounded targets. A minimum spacing of
/// half the kernel lengthscale keeps the kernel matrix well-conditioned —
/// exact interpolation through points much closer than the lengthscale is
/// numerically ill-posed for the SE kernel (neighbor correlations ≈ 1), and
/// near-coincident points are exercised by the jitter-path unit tests.
fn training_set() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-10.0f64..10.0, -3.0f64..3.0), 2..25).prop_map(|mut pts| {
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 0.5);
        pts.into_iter().unzip()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn posterior_interpolates_and_variance_nonnegative(
        (xs, ys) in training_set(),
        query in -12.0f64..12.0,
    ) {
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        m.fit(inputs, ys.clone()).unwrap();
        // Interpolation at every training point (tolerance reflects the
        // jitter-regularized exact-interpolation error).
        for (x, y) in xs.iter().zip(&ys) {
            let p = m.predict(&[*x]).unwrap();
            prop_assert!((p.mean - y).abs() < 5e-2, "f̂({x}) = {} vs {y}", p.mean);
            prop_assert!(p.var >= 0.0 && p.var < 5e-2);
        }
        // Anywhere: variance within [0, σ_f² + slack].
        let p = m.predict(&[query]).unwrap();
        prop_assert!(p.var >= 0.0 && p.var <= 1.0 + 1e-9);
    }

    #[test]
    fn incremental_equals_batch((xs, ys) in training_set()) {
        let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let mut batch = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        batch.fit(inputs.clone(), ys.clone()).unwrap();
        let mut inc = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        for (x, y) in inputs.iter().zip(&ys) {
            inc.add_point(x.clone(), *y).unwrap();
        }
        for q in [-8.0, -1.3, 0.0, 4.7, 11.0] {
            let a = batch.predict(&[q]).unwrap();
            let b = inc.predict(&[q]).unwrap();
            prop_assert!((a.mean - b.mean).abs() < 1e-4, "q={q}: {} vs {}", a.mean, b.mean);
            prop_assert!((a.var - b.var).abs() < 1e-4, "q={q}: {} vs {}", a.var, b.var);
        }
    }

    #[test]
    fn lml_gradient_matches_fd(
        (xs, ys) in training_set(),
        ls in 0.3f64..3.0,
    ) {
        let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let mut m = GpModel::new(Box::new(Matern52::new(1.0, ls)), 1);
        m.fit(inputs, ys).unwrap();
        let theta0 = m.kernel().params();
        let grad = m.lml_gradient().unwrap();
        let eps = 1e-5;
        for j in 0..theta0.len() {
            let mut tp = theta0.clone();
            tp[j] += eps;
            m.set_hyperparams(&tp).unwrap();
            let lp = m.log_marginal_likelihood().unwrap();
            let mut tm = theta0.clone();
            tm[j] -= eps;
            m.set_hyperparams(&tm).unwrap();
            let lm = m.log_marginal_likelihood().unwrap();
            m.set_hyperparams(&theta0).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (fd - grad[j]).abs() < 1e-2 * (1.0 + grad[j].abs()),
                "θ[{j}]: fd {fd} vs {g}", g = grad[j]
            );
        }
    }

    #[test]
    fn ec_is_decreasing_in_z(side in 0.5f64..50.0, ls in 0.2f64..3.0) {
        let k = SquaredExponential::new(1.0, ls);
        let domain = BoundingBox::new(vec![0.0], vec![side]);
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let z = 1.0 + i as f64 * 0.4;
            let ec = expected_euler_characteristic(&k, &domain, z);
            prop_assert!(ec <= prev + 1e-12, "EC not decreasing at z = {z}");
            prev = ec;
        }
    }

    #[test]
    fn simultaneous_z_brackets(alpha in 0.01f64..0.3, side in 0.5f64..20.0) {
        let k = SquaredExponential::new(1.0, 0.7);
        let domain = BoundingBox::new(vec![0.0, 0.0], vec![side, side]);
        let z = simultaneous_z(&k, &domain, alpha);
        prop_assert!((1.0..=16.0).contains(&z));
        // At the returned z, the two-sided EC estimate is ≈ α (unless clamped).
        if z > 1.0 + 1e-9 && z < 16.0 - 1e-9 {
            let p = 2.0 * expected_euler_characteristic(&k, &domain, z);
            prop_assert!((p - alpha).abs() < 1e-6, "2·EC(z_α) = {p} vs α = {alpha}");
        }
    }

    #[test]
    fn batch_predict_is_bitwise_scalar_predict(
        (xs, ys) in training_set(),
        queries in prop::collection::vec(-12.0f64..12.0, 0..40),
        ls in 0.3f64..3.0,
    ) {
        // The blocked fast path must be invisible: for any model and any
        // query batch, predict_batch == per-sample predict bit for bit.
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, ls)), 1);
        let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        m.fit(inputs, ys).unwrap();
        let qs: Vec<Vec<f64>> = queries.iter().map(|&q| vec![q]).collect();
        let batch = m.predict_batch(&qs).unwrap();
        prop_assert_eq!(batch.len(), qs.len());
        for (q, b) in qs.iter().zip(&batch) {
            let s = m.predict(q).unwrap();
            prop_assert_eq!(s.mean.to_bits(), b.mean.to_bits(), "mean at {:?}", q);
            prop_assert_eq!(s.var.to_bits(), b.var.to_bits(), "var at {:?}", q);
        }
    }

    #[test]
    fn local_batch_predict_is_bitwise_scalar_predict(
        (xs, ys) in training_set(),
        queries in prop::collection::vec(-12.0f64..12.0, 1..32),
        start in 0usize..4,
        step in 1usize..3,
    ) {
        // Same contract through a subset predictor, for an arbitrary
        // (sorted) selection of training rows.
        let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        let n = xs.len();
        let inputs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        m.fit(inputs, ys).unwrap();
        let indices: Vec<usize> = (start.min(n - 1)..n).step_by(step).collect();
        let lp = LocalPredictor::new(&m, indices).unwrap();
        let qs: Vec<Vec<f64>> = queries.iter().map(|&q| vec![q]).collect();
        let batch = lp.predict_batch(&qs).unwrap();
        for (q, b) in qs.iter().zip(&batch) {
            let s = lp.predict(q).unwrap();
            prop_assert_eq!(s.mean.to_bits(), b.mean.to_bits(), "mean at {:?}", q);
            prop_assert_eq!(s.var.to_bits(), b.var.to_bits(), "var at {:?}", q);
        }
    }

    #[test]
    fn predict_scratch_reuse_never_leaks_state(
        (xs, ys) in training_set(),
        (xs2, ys2) in training_set(),
        queries in prop::collection::vec(-12.0f64..12.0, 0..24),
    ) {
        // One scratch driven across models and batch sizes must produce
        // the same bits as a fresh scratch every time: the buffers are
        // caches, never state.
        let mut a = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
        a.fit(xs.iter().map(|&x| vec![x]).collect(), ys).unwrap();
        let mut b = GpModel::new(Box::new(SquaredExponential::new(1.0, 0.6)), 1);
        b.fit(xs2.iter().map(|&x| vec![x]).collect(), ys2).unwrap();
        let qs: Vec<Vec<f64>> = queries.iter().map(|&q| vec![q]).collect();
        let mut reused = PredictScratch::default();
        let mut out = Vec::new();
        for (model, take) in [(&a, qs.len()), (&b, qs.len() / 2), (&a, qs.len() / 3)] {
            let slice = &qs[..take];
            model.predict_batch_with(slice, &mut reused, &mut out).unwrap();
            let fresh = model.predict_batch(slice).unwrap();
            prop_assert_eq!(out.len(), fresh.len());
            for (r, f) in out.iter().zip(&fresh) {
                prop_assert_eq!(r.mean.to_bits(), f.mean.to_bits());
                prop_assert_eq!(r.var.to_bits(), f.var.to_bits());
            }
        }
    }

    #[test]
    fn kernel_matrices_are_psd((xs, _ys) in training_set(), ls in 0.2f64..4.0) {
        // Factorization with jitter must succeed for any input set.
        use udf_linalg::{Cholesky, Matrix};
        let k = SquaredExponential::new(1.0, ls);
        let m = Matrix::from_symmetric_fn(xs.len(), |i, j| {
            Kernel::eval(&k, &[xs[i]], &[xs[j]])
        });
        prop_assert!(Cholesky::factor_with_jitter(&m, 1e-8, 10).is_ok());
    }
}
