//! Cross-kernel integration tests: every kernel must behave correctly
//! through the full regression/training path, including ARD anisotropy and
//! Matérn local inference.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udf_gp::local::{select_local, LocalPredictor};
use udf_gp::train::{train, TrainConfig};
use udf_gp::{GpModel, Kernel, Matern32, Matern52, SquaredExponential, SquaredExponentialArd};
use udf_spatial::BoundingBox;

fn sample_2d(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
        .collect()
}

/// A function that varies quickly along x₀ and slowly along x₁.
fn anisotropic(x: &[f64]) -> f64 {
    (x[0] * 2.0).sin() + 0.1 * x[1]
}

#[test]
fn ard_learns_anisotropy() {
    let xs = sample_2d(60, 1);
    let ys: Vec<f64> = xs.iter().map(|x| anisotropic(x)).collect();
    let mut m = GpModel::new(Box::new(SquaredExponentialArd::new(1.0, &[1.0, 1.0])), 2);
    m.fit(xs, ys).unwrap();
    train(
        &mut m,
        &TrainConfig {
            max_iters: 150,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    let theta = m.kernel().params();
    // θ = [log σ_f, log ℓ₀, log ℓ₁]: the fast axis needs the shorter scale.
    let (l0, l1) = (theta[1].exp(), theta[2].exp());
    assert!(
        l0 < l1,
        "ARD should learn ℓ₀ < ℓ₁ for a fast-x₀ function: {l0} vs {l1}"
    );
}

#[test]
fn all_kernels_regress_a_smooth_function() {
    let xs = sample_2d(50, 2);
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] * 0.5).sin() + (x[1] * 0.3).cos())
        .collect();
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(SquaredExponential::new(1.0, 1.5)),
        Box::new(Matern32::new(1.0, 1.5)),
        Box::new(Matern52::new(1.0, 1.5)),
        Box::new(SquaredExponentialArd::new(1.0, &[1.5, 1.5])),
    ];
    for kernel in kernels {
        let name = format!("{kernel:?}");
        let mut m = GpModel::new(kernel, 2);
        m.fit(xs.clone(), ys.clone()).unwrap();
        // MLE-fit hyperparameters — the rougher Matérn priors need a longer
        // learned lengthscale to interpolate a smooth function accurately.
        train(&mut m, &TrainConfig::default()).unwrap();
        let mut err: f64 = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let q: Vec<f64> = vec![rng.gen_range(1.0..9.0), rng.gen_range(1.0..9.0)];
            let truth = (q[0] * 0.5).sin() + (q[1] * 0.3).cos();
            err = err.max((m.predict(&q).unwrap().mean - truth).abs());
        }
        assert!(err < 0.2, "{name}: max error {err}");
    }
}

#[test]
fn matern_local_inference_bounds_hold() {
    // Local inference works for any isotropic kernel; verify the γ bound is
    // sound under Matérn 3/2 as well.
    let xs: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![i as f64 * 0.25])
        .chain((0..40).map(|i| vec![50.0 + i as f64 * 0.25]))
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.6).sin()).collect();
    let mut m = GpModel::new(Box::new(Matern32::new(1.0, 0.8)), 1);
    m.fit(xs, ys).unwrap();
    let qbox = BoundingBox::new(vec![2.0], vec![6.0]);
    let sel = select_local(&m, &qbox, 1e-4).unwrap();
    assert!(
        sel.indices.len() < m.len(),
        "far cluster should be excluded"
    );
    let lp = LocalPredictor::new(&m, sel.indices.clone()).unwrap();
    for i in 0..=16 {
        let q = 2.0 + 4.0 * i as f64 / 16.0;
        let g = m.predict_mean(&[q]).unwrap();
        let l = lp.predict(&[q]).unwrap().mean;
        assert!(
            (g - l).abs() <= sel.gamma + 1e-12,
            "q={q}: error {} > γ {}",
            (g - l).abs(),
            sel.gamma
        );
    }
}

#[test]
fn training_respects_log_bounds() {
    // Pathological targets should not blow hyperparameters past the trust box.
    let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
    let ys = vec![1e6; 10];
    let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 1);
    m.fit(xs, ys).unwrap();
    let cfg = TrainConfig::default();
    train(&mut m, &cfg).unwrap();
    for t in m.kernel().params() {
        assert!(
            t.abs() <= cfg.log_bound + 1e-9,
            "θ escaped the trust box: {t}"
        );
    }
}

#[test]
fn retraining_heuristic_consistent_across_kernels() {
    use udf_gp::train::newton_step_norm;
    for kernel in [
        Box::new(SquaredExponential::new(1.0, 0.05)) as Box<dyn Kernel>,
        Box::new(Matern52::new(1.0, 0.05)),
    ] {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.4).sin()).collect();
        let mut m = GpModel::new(kernel, 1);
        m.fit(xs, ys).unwrap();
        let before = newton_step_norm(&m).unwrap();
        train(&mut m, &TrainConfig::default()).unwrap();
        let after = newton_step_norm(&m).unwrap();
        assert!(
            after < before,
            "Newton step must shrink after training: {before} -> {after}"
        );
    }
}
