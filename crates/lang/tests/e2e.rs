//! End-to-end acceptance: UQL queries must be *indistinguishable* from
//! hand-built engine calls.
//!
//! * A UQL selection on an astro UDF over a generated relation returns
//!   tuple-for-tuple identical results to the equivalent hand-built
//!   [`Executor::select_batch`] call — MC and GP, workers 1/2/8.
//! * A `FROM STREAM` UQL query produces the same determinism digest as the
//!   equivalent hand-built [`QuerySpec`] subscription.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_lang::{run_uql, Context, QueryOutput};
use udf_query::{EvalStrategy, Executor, ProjectedTuple, Relation, Schema, Tuple, UdfCall, Value};
use udf_stream::{EngineConfig, QuerySpec, Session, StreamStrategy, SyntheticSource};
use udf_workloads::astro::GalaxyCatalog;

/// The generated relation both sides query: 64 galaxies with
/// Gaussian-uncertain redshifts.
fn sky() -> Relation {
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = GalaxyCatalog::generate(64, &mut rng);
    let tuples = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn ctx_with_sky() -> Context {
    let mut ctx = Context::standard();
    ctx.register_relation("sky", sky());
    ctx
}

fn assert_rows_identical(uql: &[ProjectedTuple], hand: &[ProjectedTuple], label: &str) {
    assert_eq!(uql.len(), hand.len(), "{label}: row counts differ");
    for (a, b) in uql.iter().zip(hand) {
        assert_eq!(a.source, b.source, "{label}: source index");
        assert_eq!(
            a.tep.to_bits(),
            b.tep.to_bits(),
            "{label}: tuple {} TEP",
            a.source
        );
        assert_eq!(
            a.output.error_bound.to_bits(),
            b.output.error_bound.to_bits(),
            "{label}: tuple {} error bound",
            a.source
        );
        assert_eq!(
            a.output.ecdf, b.output.ecdf,
            "{label}: tuple {} distribution",
            a.source
        );
    }
}

/// UQL selection ≡ hand-built `Executor::select_batch`, MC and GP, for
/// workers 1/2/8 (the acceptance criterion).
#[test]
fn uql_selection_matches_hand_built_select_batch() {
    let seed = 7u64;
    let (lo, hi, theta) = (0.5, 0.9, 0.6);
    for strategy in ["mc", "gp"] {
        for workers in [1usize, 2, 8] {
            let mut ctx = ctx_with_sky();
            let q = format!(
                "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [{lo}, {hi}]) >= {theta} \
                 USING {strategy} WORKERS {workers} SEED {seed}"
            );
            let out = run_uql(&q, &mut ctx).unwrap();
            let QueryOutput::Rows(uql) = out else {
                panic!("relation query must return rows")
            };

            // The equivalent hand-built pipeline, sharing nothing with the
            // UQL path but the catalog entry it binds.
            let entry = ctx.udfs().get("GalAge").unwrap();
            let rel = sky();
            let call = UdfCall::resolve(entry.udf.clone(), rel.schema(), &["z"]).unwrap();
            let accuracy =
                AccuracyRequirement::new(0.1, 0.05, entry.default_lambda(), Metric::Discrepancy)
                    .unwrap();
            let eval = match strategy {
                "mc" => EvalStrategy::Mc,
                _ => EvalStrategy::Gp,
            };
            let mut ex = Executor::new(eval, accuracy, &call, entry.output_range).unwrap();
            let pred = Predicate::new(lo, hi, theta).unwrap();
            let sched = BatchScheduler::new(workers);
            let hand = ex.select_batch(&rel, &call, &pred, &sched, seed).unwrap();

            let label = format!("{strategy}/workers={workers}");
            assert!(
                !uql.rows.is_empty() && uql.rows.len() < 64,
                "{label}: selection should keep some but not all rows, kept {}",
                uql.rows.len()
            );
            assert_rows_identical(&uql.rows, &hand, &label);
            assert_eq!(uql.stats.tuples_in, 64, "{label}");
            assert_eq!(uql.stats.tuples_out, hand.len() as u64, "{label}");
        }
    }
}

/// The same queries must be byte-identical across worker counts (the UQL
/// surface inherits the scheduler's determinism contract).
#[test]
fn uql_rows_independent_of_worker_count() {
    for strategy in ["mc", "gp"] {
        let mut reference: Option<Vec<ProjectedTuple>> = None;
        for workers in [1usize, 2, 8] {
            let mut ctx = ctx_with_sky();
            let q = format!(
                "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 \
                 USING {strategy} WORKERS {workers} SEED 11"
            );
            let QueryOutput::Rows(out) = run_uql(&q, &mut ctx).unwrap() else {
                panic!("rows")
            };
            match &reference {
                None => reference = Some(out.rows),
                Some(want) => {
                    assert_rows_identical(&out.rows, want, &format!("{strategy}/w{workers}"))
                }
            }
        }
    }
}

/// UQL projection (no WHERE) ≡ hand-built `project_batch`.
#[test]
fn uql_projection_matches_project_batch() {
    let mut ctx = ctx_with_sky();
    let QueryOutput::Rows(uql) = run_uql(
        "SELECT GalAge(z) FROM sky USING gp WORKERS 2 SEED 5",
        &mut ctx,
    )
    .unwrap() else {
        panic!("rows")
    };
    let entry = ctx.udfs().get("GalAge").unwrap();
    let rel = sky();
    let call = UdfCall::resolve(entry.udf.clone(), rel.schema(), &["z"]).unwrap();
    let accuracy =
        AccuracyRequirement::new(0.1, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let mut ex = Executor::new(EvalStrategy::Gp, accuracy, &call, entry.output_range).unwrap();
    let sched = BatchScheduler::new(2);
    let hand = ex.project_batch(&rel, &call, &sched, 5).unwrap();
    assert_eq!(uql.rows.len(), 64);
    assert_rows_identical(&uql.rows, &hand, "projection");
}

/// `FROM STREAM` ≡ hand-built `QuerySpec` subscription: same determinism
/// digest, same stats.
#[test]
fn uql_stream_digest_matches_hand_built_subscription() {
    for (strategy_kw, strategy) in [("mc", StreamStrategy::Mc), ("gp", StreamStrategy::Gp)] {
        let mut ctx = Context::standard();
        ctx.register_stream("synth", 1, || {
            Box::new(SyntheticSource::gaussian(1, 0.5, 11))
        });
        let q = format!(
            "SELECT F3(x) WITH ACCURACY 0.2 0.05 METRIC disc FROM STREAM synth \
             WHERE PR(F3(x) IN [0.4, 1.5]) >= 0.3 \
             USING {strategy_kw} WORKERS 2 BATCH 64 SEED 9 LIMIT 192"
        );
        let QueryOutput::Stream(uql) = run_uql(&q, &mut ctx).unwrap() else {
            panic!("stream query must return a stream summary")
        };

        // Hand-built equivalent.
        let entry = ctx.udfs().get("F3").unwrap();
        let accuracy =
            AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy)
                .unwrap();
        let mut session = Session::new(EngineConfig::new().workers(2).batch_size(64).seed(9));
        let id = session
            .subscribe(
                QuerySpec::new("hand", entry.udf.clone(), accuracy, strategy)
                    .output_range(entry.output_range)
                    .predicate(Predicate::new(0.4, 1.5, 0.3).unwrap()),
            )
            .unwrap();
        session
            .run(SyntheticSource::gaussian(1, 0.5, 11), Some(192))
            .unwrap();

        assert_eq!(
            uql.digest,
            session.digest(id).unwrap(),
            "{strategy_kw}: digests diverge"
        );
        let hand = session.stats(id).unwrap();
        assert_eq!(uql.stats.tuples_in, hand.tuples_in, "{strategy_kw}");
        assert_eq!(uql.stats.kept, hand.kept, "{strategy_kw}");
        assert_eq!(uql.stats.filtered, hand.filtered, "{strategy_kw}");
        assert_eq!(uql.stats.tuples_in, 192, "{strategy_kw}");
    }
}

/// EXPLAIN compiles and renders the pushdown without executing.
#[test]
fn explain_renders_pushdown_plan() {
    let mut ctx = ctx_with_sky();
    let QueryOutput::Plan(plan) = run_uql(
        "EXPLAIN SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 USING gp",
        &mut ctx,
    )
    .unwrap() else {
        panic!("EXPLAIN returns a plan")
    };
    assert!(plan.contains("PrFilter"), "naive plan shown:\n{plan}");
    assert!(plan.contains("UdfSelect"), "pushdown shown:\n{plan}");
    assert!(plan.contains("BatchExec"), "physical plan shown:\n{plan}");
    assert!(
        plan.contains("GP-envelope"),
        "fast-path routing shown:\n{plan}"
    );
}

/// EXPLAIN ANALYZE executes and annotates the physical plan with
/// per-operator wall-clock and routing counters, plus the statement's
/// metrics-registry delta.
#[test]
fn explain_analyze_reports_operator_timings() {
    let mut ctx = ctx_with_sky();
    let QueryOutput::Plan(report) = run_uql(
        "EXPLAIN ANALYZE SELECT GalAge(z) FROM sky \
         WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 USING gp WORKERS 2 SEED 7",
        &mut ctx,
    )
    .unwrap() else {
        panic!("ANALYZE returns the annotated plan")
    };
    assert!(report.contains("UdfSelect"), "plan shown:\n{report}");
    assert!(
        report.contains("BatchExec: time="),
        "operator timing:\n{report}"
    );
    for key in ["rows=", "fast=", "slow=", "udf_calls=", "cap_hits="] {
        assert!(report.contains(key), "{key} counter:\n{report}");
    }
    assert!(
        report.contains("Metrics delta for this statement:"),
        "delta section:\n{report}"
    );
    assert!(report.contains("uql.exec_ns"), "phase timer:\n{report}");
    assert!(
        report.contains("sched.chunks"),
        "scheduler metrics:\n{report}"
    );

    // The stream shape carries the determinism digest in its line.
    let mut ctx = Context::standard();
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 3))
    });
    let QueryOutput::Plan(report) = run_uql(
        "EXPLAIN ANALYZE SELECT F3(x) WITH ACCURACY 0.25 0.05 FROM STREAM synth \
         USING gp BATCH 32 SEED 4 LIMIT 96",
        &mut ctx,
    )
    .unwrap() else {
        panic!("stream ANALYZE returns the annotated plan")
    };
    assert!(
        report.contains("StreamExec: time="),
        "stream timing:\n{report}"
    );
    assert!(report.contains("digest=0x"), "digest line:\n{report}");
    assert!(report.contains("stream.batch_ns"), "engine hist:\n{report}");
}

/// ANALYZE must not change what a subsequent identical query computes:
/// the digest in the annotated report equals the plain query's digest.
#[test]
fn explain_analyze_is_execution_faithful() {
    let q = "SELECT F3(x) WITH ACCURACY 0.25 0.05 FROM STREAM synth \
             USING gp BATCH 32 SEED 4 LIMIT 96";
    let mut ctx = Context::standard();
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 3))
    });
    let QueryOutput::Stream(plain) = run_uql(q, &mut ctx).unwrap() else {
        panic!("stream")
    };
    let QueryOutput::Plan(report) = run_uql(&format!("EXPLAIN ANALYZE {q}"), &mut ctx).unwrap()
    else {
        panic!("plan")
    };
    assert!(
        report.contains(&format!("digest=0x{:016x}", plain.digest)),
        "ANALYZE ran a different computation:\n{report}"
    );
}

/// The observability layer must be output-blind: rows and digests are
/// byte-identical with the session registry recording vs. switched off,
/// at workers 1/2/8.
#[test]
fn metrics_switch_never_perturbs_outputs() {
    for workers in [1usize, 2, 8] {
        let rows = |enabled: bool| {
            let mut ctx = ctx_with_sky();
            ctx.metrics().set_enabled(enabled);
            let q = format!(
                "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 \
                 USING gp WORKERS {workers} SEED 11"
            );
            let QueryOutput::Rows(out) = run_uql(&q, &mut ctx).unwrap() else {
                panic!("rows")
            };
            out.rows
        };
        assert_rows_identical(
            &rows(true),
            &rows(false),
            &format!("metrics-blind/w{workers}"),
        );

        let digest = |enabled: bool| {
            let mut ctx = Context::standard();
            ctx.register_stream("synth", 1, || {
                Box::new(SyntheticSource::gaussian(1, 0.5, 11))
            });
            ctx.metrics().set_enabled(enabled);
            let q = format!(
                "SELECT F3(x) WITH ACCURACY 0.2 0.05 METRIC disc FROM STREAM synth \
                 WHERE PR(F3(x) IN [0.4, 1.5]) >= 0.3 \
                 USING gp WORKERS {workers} BATCH 64 SEED 9 LIMIT 192"
            );
            let QueryOutput::Stream(out) = run_uql(&q, &mut ctx).unwrap() else {
                panic!("stream")
            };
            out.digest
        };
        assert_eq!(
            digest(true),
            digest(false),
            "metrics-blind stream digest, workers={workers}"
        );
    }
}

/// EXPLAIN TRACE executes and annotates the physical plan with the
/// statement's structured trace window: reroute causes (the GP bootstrap
/// always forces at least one), phase timings, and — on streams — the
/// health-monitor trend line.
#[test]
fn explain_trace_reports_attribution() {
    let mut ctx = ctx_with_sky();
    let QueryOutput::Plan(report) = run_uql(
        "EXPLAIN TRACE SELECT GalAge(z) FROM sky \
         WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 USING gp WORKERS 2 SEED 7",
        &mut ctx,
    )
    .unwrap() else {
        panic!("TRACE returns the annotated plan")
    };
    assert!(report.contains("UdfSelect"), "plan shown:\n{report}");
    assert!(
        report.contains("Execution (TRACE):"),
        "exec section:\n{report}"
    );
    assert!(
        report.contains("BatchExec: time="),
        "operator line:\n{report}"
    );
    assert!(
        report.contains("Trace for this statement:"),
        "trace section:\n{report}"
    );
    assert!(report.contains("Trace summary:"), "summary:\n{report}");
    // Root-cause attribution: the GP bootstrap reroutes the seed tuple by
    // fiat, so a `forced=` cause is always present on a cold model.
    assert!(report.contains("reroutes:"), "reroute causes:\n{report}");
    assert!(report.contains("forced="), "bootstrap cause:\n{report}");
    assert!(report.contains("phases:"), "phase timings:\n{report}");
    assert!(report.contains("exec="), "exec phase:\n{report}");

    // The stream shape additionally carries the digest and health trend.
    let mut ctx = Context::standard();
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 3))
    });
    let QueryOutput::Plan(report) = run_uql(
        "EXPLAIN TRACE SELECT F3(x) WITH ACCURACY 0.25 0.05 FROM STREAM synth \
         USING gp BATCH 32 SEED 4 LIMIT 320",
        &mut ctx,
    )
    .unwrap() else {
        panic!("stream TRACE returns the annotated plan")
    };
    assert!(
        report.contains("StreamExec: time="),
        "stream timing:\n{report}"
    );
    assert!(report.contains("digest=0x"), "digest line:\n{report}");
    assert!(report.contains("Trace summary:"), "summary:\n{report}");
    assert!(report.contains("health:"), "health trend:\n{report}");
    assert!(report.contains("throughput="), "throughput:\n{report}");
}

/// TRACE must not change what a subsequent identical query computes: the
/// digest in the annotated report equals the plain query's digest.
#[test]
fn explain_trace_is_execution_faithful() {
    let q = "SELECT F3(x) WITH ACCURACY 0.25 0.05 FROM STREAM synth \
             USING gp BATCH 32 SEED 4 LIMIT 96";
    let mut ctx = Context::standard();
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 3))
    });
    let QueryOutput::Stream(plain) = run_uql(q, &mut ctx).unwrap() else {
        panic!("stream")
    };
    let QueryOutput::Plan(report) = run_uql(&format!("EXPLAIN TRACE {q}"), &mut ctx).unwrap()
    else {
        panic!("plan")
    };
    assert!(
        report.contains(&format!("digest=0x{:016x}", plain.digest)),
        "TRACE ran a different computation:\n{report}"
    );
}

/// The tracing layer must be output-blind, like the metrics registry:
/// rows and digests are byte-identical with the trace buffer recording
/// vs. switched off, at workers 1/2/8.
#[test]
fn tracing_switch_never_perturbs_outputs() {
    for workers in [1usize, 2, 8] {
        let rows = |enabled: bool| {
            let mut ctx = ctx_with_sky();
            ctx.trace().set_enabled(enabled);
            let q = format!(
                "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 \
                 USING gp WORKERS {workers} SEED 11"
            );
            let QueryOutput::Rows(out) = run_uql(&q, &mut ctx).unwrap() else {
                panic!("rows")
            };
            out.rows
        };
        assert_rows_identical(
            &rows(true),
            &rows(false),
            &format!("trace-blind/w{workers}"),
        );

        let digest = |enabled: bool| {
            let mut ctx = Context::standard();
            ctx.register_stream("synth", 1, || {
                Box::new(SyntheticSource::gaussian(1, 0.5, 11))
            });
            ctx.trace().set_enabled(enabled);
            let q = format!(
                "SELECT F3(x) WITH ACCURACY 0.2 0.05 METRIC disc FROM STREAM synth \
                 WHERE PR(F3(x) IN [0.4, 1.5]) >= 0.3 \
                 USING gp WORKERS {workers} BATCH 64 SEED 9 LIMIT 192"
            );
            let QueryOutput::Stream(out) = run_uql(&q, &mut ctx).unwrap() else {
                panic!("stream")
            };
            out.digest
        };
        assert_eq!(
            digest(true),
            digest(false),
            "trace-blind stream digest, workers={workers}"
        );
    }
}

/// AUTO strategy resolves by the §6.3 cost rules: the expensive GalAge
/// (0.29 ms simulated) goes GP; the free synthetic F1 goes MC.
#[test]
fn auto_strategy_resolves_by_cost_rules() {
    let mut ctx = ctx_with_sky();
    let QueryOutput::Plan(plan) =
        run_uql("EXPLAIN SELECT GalAge(z) FROM sky SEED 1", &mut ctx).unwrap()
    else {
        panic!("plan")
    };
    assert!(plan.contains("strategy=Gp"), "GalAge is expensive:\n{plan}");

    let tuples = (0..8)
        .map(|i| {
            Tuple::new(vec![Value::Gaussian {
                mu: i as f64,
                sigma: 0.5,
            }])
        })
        .collect();
    ctx.register_relation(
        "points",
        Relation::new(Schema::new(&["x"]), tuples).unwrap(),
    );
    let QueryOutput::Plan(plan) =
        run_uql("EXPLAIN SELECT F1(x) FROM points SEED 1", &mut ctx).unwrap()
    else {
        panic!("plan")
    };
    assert!(plan.contains("strategy=Mc"), "F1 is free:\n{plan}");
}

/// Repeated runs of the same statement are reproducible end to end.
#[test]
fn repeated_runs_are_reproducible() {
    let digest = |seed: u64| {
        let mut ctx = Context::standard();
        ctx.register_stream("synth", 1, || {
            Box::new(SyntheticSource::gaussian(1, 0.5, 3))
        });
        // F3 with a loose requirement: the spikier F2 under tight default
        // accuracy grows the GP model into O(n³) retraining territory,
        // which is a workload property, not what this test probes.
        let q = format!(
            "SELECT F3(x) WITH ACCURACY 0.25 0.05 FROM STREAM synth \
             USING gp BATCH 32 SEED {seed} LIMIT 96"
        );
        let QueryOutput::Stream(out) = run_uql(&q, &mut ctx).unwrap() else {
            panic!("stream")
        };
        out.digest
    };
    assert_eq!(digest(4), digest(4));
    assert_ne!(digest(4), digest(5), "seed must matter");
}

/// Stream queries without LIMIT are refused (sources may be unbounded).
#[test]
fn unbounded_stream_query_is_refused() {
    let mut ctx = Context::standard();
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 3))
    });
    let err = run_uql("SELECT F2(x) FROM STREAM synth", &mut ctx).unwrap_err();
    assert!(err.to_string().contains("LIMIT"), "{err}");
}
