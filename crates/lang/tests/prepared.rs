//! Prepared-statement acceptance: `EXECUTE` of a cached plan must be
//! *byte-identical* to running the equivalent one-shot statement in a
//! fresh context — for MC and GP relation queries, for `$n`-parameterized
//! plans, for stream digests, and (the hard case) for a `PRUNE` join
//! re-executed repeatedly on one warm model, where the second and later
//! executions restore the captured post-warmup snapshot instead of paying
//! a second warmup.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_lang::{run_uql, Context, JoinRowsOutput, QueryOutput, RowsOutput};
use udf_query::{ProjectedTuple, Relation, Schema, Tuple, Value};
use udf_stream::SyntheticSource;
use udf_workloads::astro::GalaxyCatalog;

fn sky(n: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = GalaxyCatalog::generate(n, &mut rng);
    let tuples = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn ctx_with_sky(n: usize) -> Context {
    let mut ctx = Context::standard();
    ctx.register_relation("sky", sky(n));
    ctx
}

/// The join workload's relation: evenly spaced narrow-σ redshifts (the
/// `join_e2e` shape), which the warm GP envelope can certify quickly —
/// the catalog-sampled `sky` makes a 276-pair PRUNE join pathologically
/// slow-path-heavy.
fn galaxies(n: usize) -> Relation {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / n as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn ctx_with_galaxies(n: usize) -> Context {
    let mut ctx = Context::standard();
    ctx.register_relation("sky", galaxies(n));
    ctx
}

fn rows_of(out: QueryOutput) -> RowsOutput {
    match out {
        QueryOutput::Rows(r) => r,
        other => panic!("relation query must return rows, got {other:?}"),
    }
}

fn join_of(out: QueryOutput) -> JoinRowsOutput {
    match out {
        QueryOutput::Join(r) => r,
        other => panic!("join query must return join rows, got {other:?}"),
    }
}

fn assert_rows_identical(a: &[ProjectedTuple], b: &[ProjectedTuple], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.source, y.source, "{label}: source index");
        assert_eq!(
            x.tep.to_bits(),
            y.tep.to_bits(),
            "{label}: tuple {} TEP",
            x.source
        );
        assert_eq!(
            x.output.error_bound.to_bits(),
            y.output.error_bound.to_bits(),
            "{label}: tuple {} error bound",
            x.source
        );
        assert_eq!(
            x.output.ecdf, y.output.ecdf,
            "{label}: tuple {} distribution",
            x.source
        );
    }
}

/// `PREPARE` + repeated `EXECUTE` ≡ the one-shot statement, MC and GP,
/// workers 1/2/8 (the acceptance criterion), bit-for-bit.
#[test]
fn execute_matches_one_shot_relation() {
    for strategy in ["mc", "gp"] {
        for workers in [1usize, 2, 8] {
            let body = format!(
                "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 \
                 USING {strategy} WORKERS {workers} SEED 7"
            );
            let one_shot = rows_of(run_uql(&body, &mut ctx_with_sky(64)).unwrap());

            let mut ctx = ctx_with_sky(64);
            run_uql(&format!("PREPARE q AS {body}"), &mut ctx).unwrap();
            let label = format!("{strategy}/workers={workers}");
            // Both the cold (bind) and the warm (cached-binding) path.
            for round in 0..2 {
                let exec = rows_of(run_uql("EXECUTE q", &mut ctx).unwrap());
                assert_rows_identical(&exec.rows, &one_shot.rows, &format!("{label}/#{round}"));
                assert_eq!(exec.stats, one_shot.stats, "{label}/#{round}: stats");
            }
        }
    }
}

/// A `$n`-parameterized plan bound via `EXECUTE` arguments ≡ the one-shot
/// statement with the same values as literals — including after rebinding
/// with a different argument set.
#[test]
fn execute_with_params_matches_literal_one_shot() {
    let mut ctx = ctx_with_sky(64);
    run_uql(
        "PREPARE q AS SELECT GalAge(z) FROM sky \
         WHERE PR(GalAge(z) IN [$1, $2]) >= $3 USING gp WORKERS $4 SEED 7",
        &mut ctx,
    )
    .unwrap();
    for (lo, hi, theta, workers) in [(0.5, 0.9, 0.6, 2u64), (0.4, 0.95, 0.5, 8)] {
        let one_shot = rows_of(
            run_uql(
                &format!(
                    "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [{lo}, {hi}]) >= {theta} \
                     USING gp WORKERS {workers} SEED 7"
                ),
                &mut ctx_with_sky(64),
            )
            .unwrap(),
        );
        let exec = rows_of(
            run_uql(
                &format!("EXECUTE q ({lo}, {hi}, {theta}, {workers})"),
                &mut ctx,
            )
            .unwrap(),
        );
        let label = format!("args=({lo},{hi},{theta},{workers})");
        assert_rows_identical(&exec.rows, &one_shot.rows, &label);
        assert_eq!(exec.stats, one_shot.stats, "{label}: stats");
    }
}

const JOIN_BODY: &str = "SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 \
     FROM sky a JOIN sky b ON a.objID < b.objID \
     WHERE PR(AngDist(a.z, b.z) IN [0.3, 0.36]) >= 0.5 \
     USING gp SEED 9 PRUNE WORKERS";

/// The tentpole contract: a prepared `PRUNE` join re-executed 3× reuses
/// one warm GP model (the second and third executions restore the
/// captured post-warmup snapshot) while every execution stays
/// byte-identical to the one-shot statement — rows, join stats, and the
/// inner executor's counters — at workers 1/2/8.
#[test]
fn prepared_prune_join_reexecution_is_byte_identical() {
    for workers in [1usize, 2, 8] {
        let one_shot = join_of(
            run_uql(
                &format!("{JOIN_BODY} {workers}"),
                &mut ctx_with_galaxies(24),
            )
            .unwrap(),
        );
        assert!(
            one_shot.stats.pairs_pruned > 0,
            "workers={workers}: workload must actually prune"
        );

        let mut ctx = ctx_with_galaxies(24);
        run_uql(&format!("PREPARE j AS {JOIN_BODY} {workers}"), &mut ctx).unwrap();
        for round in 0..3 {
            let exec = join_of(run_uql("EXECUTE j", &mut ctx).unwrap());
            let label = format!("workers={workers}/#{round}");
            assert_eq!(exec.stats, one_shot.stats, "{label}: join stats");
            assert_eq!(
                exec.query_stats, one_shot.query_stats,
                "{label}: executor stats"
            );
            assert_eq!(exec.rows.len(), one_shot.rows.len(), "{label}");
            for (x, y) in exec.rows.iter().zip(&one_shot.rows) {
                assert_eq!(x.pair, y.pair, "{label}: pair index");
                assert_eq!(x.tep.to_bits(), y.tep.to_bits(), "{label}: pair {}", x.pair);
                assert_eq!(
                    x.output.error_bound.to_bits(),
                    y.output.error_bound.to_bits(),
                    "{label}: pair {}",
                    x.pair
                );
                assert_eq!(x.output.ecdf, y.output.ecdf, "{label}: pair {}", x.pair);
            }
        }
        // First EXECUTE binds (miss), the next two restore the warm
        // snapshot (hits).
        let snap = ctx.metrics().snapshot().render();
        assert!(
            snap.contains("uql.prepared_cache.hits = 2"),
            "workers={workers}: hit counter\n{snap}"
        );
        assert!(
            snap.contains("uql.prepared_cache.misses = 1"),
            "workers={workers}: miss counter\n{snap}"
        );
    }
}

/// `EXPLAIN TRACE EXECUTE` of a warmed prepared join shows no Parse, no
/// Bind, and no Warmup phase: the plan cache skipped compilation and the
/// restored snapshot skipped the warmup round.
#[test]
fn trace_of_warm_reexecution_has_no_parse_bind_or_warmup() {
    let mut ctx = ctx_with_galaxies(24);
    run_uql(&format!("PREPARE j AS {JOIN_BODY} 2"), &mut ctx).unwrap();
    // First execution: cold bind + warmup + capture.
    let QueryOutput::Plan(first) = run_uql("EXPLAIN TRACE EXECUTE j", &mut ctx).unwrap() else {
        panic!("TRACE returns the annotated plan")
    };
    assert!(
        !first.contains("parse=") && !first.contains("bind="),
        "EXECUTE must never show a Parse/Bind phase:\n{first}"
    );
    assert!(
        first.contains("warmup="),
        "first execution pays the warmup round:\n{first}"
    );
    // Re-execution: restores the captured snapshot — no warmup phase.
    let QueryOutput::Plan(rerun) = run_uql("EXPLAIN TRACE EXECUTE j", &mut ctx).unwrap() else {
        panic!("TRACE returns the annotated plan")
    };
    assert!(
        !rerun.contains("parse=") && !rerun.contains("bind="),
        "re-execution must show no Parse/Bind phase:\n{rerun}"
    );
    assert!(
        !rerun.contains("warmup="),
        "re-execution must restore the warm model, not re-warm:\n{rerun}"
    );
    assert!(
        rerun.contains("main="),
        "the main round still runs:\n{rerun}"
    );
}

/// `EXECUTE` of a prepared stream query reproduces the one-shot
/// determinism digest (sources are rebuilt per run from the factory).
#[test]
fn execute_stream_digest_matches_one_shot() {
    let body = "SELECT F3(x) WITH ACCURACY 0.2 0.05 FROM STREAM synth \
                WHERE PR(F3(x) IN [0.4, 1.5]) >= 0.3 \
                USING gp WORKERS 2 BATCH 64 SEED 9 LIMIT 192";
    let fresh = || {
        let mut ctx = Context::standard();
        ctx.register_stream("synth", 1, || {
            Box::new(SyntheticSource::gaussian(1, 0.5, 11))
        });
        ctx
    };
    let QueryOutput::Stream(one_shot) = run_uql(body, &mut fresh()).unwrap() else {
        panic!("stream")
    };
    let mut ctx = fresh();
    run_uql(&format!("PREPARE s AS {body}"), &mut ctx).unwrap();
    for round in 0..2 {
        let QueryOutput::Stream(exec) = run_uql("EXECUTE s", &mut ctx).unwrap() else {
            panic!("stream")
        };
        assert_eq!(exec.digest, one_shot.digest, "#{round}: digests diverge");
        // The stats Display carries wall-clock throughput; compare the
        // deterministic counters.
        assert_eq!(exec.stats.kept, one_shot.stats.kept, "#{round}: kept");
        assert_eq!(
            exec.stats.filtered, one_shot.stats.filtered,
            "#{round}: filtered"
        );
        assert_eq!(
            exec.stats.fast_path, one_shot.stats.fast_path,
            "#{round}: fast"
        );
        assert_eq!(
            exec.stats.slow_path, one_shot.stats.slow_path,
            "#{round}: slow"
        );
    }
}

/// The plan cache is observable: `\prepared`-style listing state, the
/// hit/miss counters in the metrics snapshot, and `EXPLAIN ANALYZE
/// EXECUTE` carrying them in its per-statement delta.
#[test]
fn plan_cache_is_observable() {
    let mut ctx = ctx_with_sky(64);
    run_uql(
        "PREPARE q AS SELECT GalAge(z) FROM sky \
         WHERE PR(GalAge(z) IN [$1, 0.9]) >= 0.6 USING mc WORKERS 2 SEED 7",
        &mut ctx,
    )
    .unwrap();
    {
        let entry = &ctx.prepared()["q"];
        assert_eq!(entry.arity(), 1);
        assert_eq!(entry.executions(), 0);
        assert!(!entry.is_warm());
        assert!(entry.text().contains("PR(GalAge(z) IN [$1, 0.9])"));
    }
    run_uql("EXECUTE q (0.5)", &mut ctx).unwrap(); // miss
    run_uql("EXECUTE q (0.5)", &mut ctx).unwrap(); // hit
    run_uql("EXECUTE q (0.4)", &mut ctx).unwrap(); // rebind: miss
    {
        let entry = &ctx.prepared()["q"];
        assert_eq!(entry.executions(), 3);
        assert!(entry.is_warm());
    }
    let snap = ctx.metrics().snapshot().render();
    assert!(
        snap.contains("uql.prepared_cache.hits = 1"),
        "hits in snapshot:\n{snap}"
    );
    assert!(
        snap.contains("uql.prepared_cache.misses = 2"),
        "misses in snapshot:\n{snap}"
    );
    // EXPLAIN ANALYZE EXECUTE reports the statement's own delta — this
    // execution is a cache hit.
    let QueryOutput::Plan(report) = run_uql("EXPLAIN ANALYZE EXECUTE q (0.4)", &mut ctx).unwrap()
    else {
        panic!("ANALYZE returns the annotated plan")
    };
    assert!(
        report.contains("uql.prepared_cache.hits"),
        "hit counter in ANALYZE delta:\n{report}"
    );
    let QueryOutput::Deallocated { name } = run_uql("DEALLOCATE q", &mut ctx).unwrap() else {
        panic!("DEALLOCATE output")
    };
    assert_eq!(name, "q");
    assert!(ctx.prepared().is_empty());
}

/// Registering over a name a prepared plan resolved invalidates it: the
/// next `EXECUTE` transparently re-prepares against the new catalog (and
/// surfaces a bind-stage diagnostic — never a panic — if the new shape no
/// longer binds).
#[test]
fn catalog_change_reprepares_or_diagnoses() {
    let mut ctx = ctx_with_sky(64);
    run_uql(
        "PREPARE q AS SELECT GalAge(z) FROM sky \
         WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 USING mc WORKERS 2 SEED 7",
        &mut ctx,
    )
    .unwrap();
    run_uql("EXECUTE q", &mut ctx).unwrap();

    // Replace `sky` with a smaller compatible relation: re-prepare picks
    // up the new row count.
    ctx.register_relation("sky", sky(32));
    let out = rows_of(run_uql("EXECUTE q", &mut ctx).unwrap());
    assert_eq!(
        out.stats.tuples_in, 32,
        "re-prepare must see the new relation"
    );

    // Replace `sky` with a schema that no longer has `z`: EXECUTE fails
    // with a bind diagnostic pointing into the prepared text.
    let bad = Relation::new(
        Schema::new(&["objID"]),
        vec![Tuple::new(vec![Value::Det(0.0)])],
    )
    .unwrap();
    ctx.register_relation("sky", bad);
    let err = run_uql("EXECUTE q", &mut ctx).unwrap_err().to_string();
    assert!(err.contains("no column `z`"), "diagnostic: {err}");
    // The plan survives the failed execution and recovers once the
    // catalog does.
    ctx.register_relation("sky", sky(64));
    run_uql("EXECUTE q", &mut ctx).unwrap();
}
