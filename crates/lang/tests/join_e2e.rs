//! End-to-end join acceptance: a UQL `JOIN` self-join on `AngDist` must be
//! *indistinguishable* from the hand-built Q2 pipeline (materialized
//! `cross_join` + the batch executor), and `PRUNE` must change no output.

use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_join::warmup_indices;
use udf_lang::{run_uql, Context, JoinRowsOutput, QueryOutput};
use udf_prob::InputDistribution;
use udf_query::{EvalStrategy, Executor, ProjectedTuple, Relation, Schema, Tuple, UdfCall, Value};
use udf_workloads::UdfCatalog;

fn galaxies(n: usize) -> Relation {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / n as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn ctx_with_sky(n: usize) -> Context {
    let mut ctx = Context::standard();
    ctx.register_relation("sky", galaxies(n));
    ctx
}

const LO: f64 = 0.3;
const HI: f64 = 0.36;
const THETA: f64 = 0.5;

fn uql_join(n: usize, strategy: &str, workers: usize, seed: u64, prune: bool) -> JoinRowsOutput {
    let mut ctx = ctx_with_sky(n);
    let q = format!(
        "SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 FROM sky a JOIN sky b \
         ON a.objID < b.objID WHERE PR(AngDist(a.z, b.z) IN [{LO}, {HI}]) >= {THETA} \
         USING {strategy} WORKERS {workers} SEED {seed}{}",
        if prune { " PRUNE" } else { "" },
    );
    match run_uql(&q, &mut ctx).unwrap() {
        QueryOutput::Join(out) => out,
        other => panic!("join query must return join rows, got {other:?}"),
    }
}

/// The hand-built Q2 pipeline: `cross_join` + `Executor` batch calls over
/// the materialized pair relation, sharing nothing with the UQL path but
/// the catalog entry it binds (GP runs the documented warmup/main round
/// split; MC is a single batch).
fn hand_built(n: usize, strategy: EvalStrategy, workers: usize, seed: u64) -> Vec<ProjectedTuple> {
    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let g = galaxies(n);
    let pairs = g.cross_join("a", &g, "b", |i, j| i < j).unwrap();
    let call = UdfCall::resolve(entry.udf.clone(), pairs.schema(), &["a.z", "b.z"]).unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let pred = Predicate::new(LO, HI, THETA).unwrap();
    let mut ex = Executor::new(strategy, accuracy, &call, entry.output_range).unwrap();
    let sched = BatchScheduler::new(workers);
    let inputs: Vec<(usize, InputDistribution)> = pairs
        .tuples()
        .iter()
        .enumerate()
        .map(|(k, t)| (k, call.input_distribution(t).unwrap()))
        .collect();
    let mut rows = Vec::new();
    match strategy {
        EvalStrategy::Mc => {
            rows = ex.select_batch(&pairs, &call, &pred, &sched, seed).unwrap();
        }
        EvalStrategy::Gp => {
            let warm = warmup_indices(inputs.len());
            let (a, b): (Vec<_>, Vec<_>) = inputs
                .into_iter()
                .partition(|(k, _)| warm.binary_search(k).is_ok());
            rows.extend(ex.select_seeded(&a, Some(&pred), seed).unwrap());
            let (r, _) = ex.select_batch_indexed(&b, &pred, &sched, seed).unwrap();
            rows.extend(r);
            rows.sort_by_key(|r| r.source);
        }
    }
    rows
}

/// UQL `JOIN` ≡ hand-built Q2 pipeline, MC and GP, workers 1/2/8 (the
/// acceptance criterion), tuple-for-tuple bit-identical.
#[test]
fn uql_join_matches_hand_built_q2_pipeline() {
    let n = 12; // 66 ordered pairs
    for (kw, strategy) in [("mc", EvalStrategy::Mc), ("gp", EvalStrategy::Gp)] {
        for workers in [1usize, 2, 8] {
            let uql = uql_join(n, kw, workers, 7, false);
            let hand = hand_built(n, strategy, workers, 7);
            let label = format!("{kw}/workers={workers}");
            assert_eq!(uql.rows.len(), hand.len(), "{label}: row counts");
            assert!(
                !uql.rows.is_empty() && uql.rows.len() < 66,
                "{label}: should keep some but not all pairs"
            );
            for (a, b) in uql.rows.iter().zip(&hand) {
                assert_eq!(a.pair, b.source, "{label}: pair index");
                assert_eq!(a.tep.to_bits(), b.tep.to_bits(), "{label}: pair {}", a.pair);
                assert_eq!(
                    a.output.error_bound.to_bits(),
                    b.output.error_bound.to_bits(),
                    "{label}: pair {}",
                    a.pair
                );
                assert_eq!(
                    a.output.ecdf, b.output.ecdf,
                    "{label}: pair {} distribution",
                    a.pair
                );
            }
            assert_eq!(uql.stats.pairs_generated, 66, "{label}");
        }
    }
}

/// `PRUNE` changes no output byte at any worker count, and actually
/// prunes pairs on the warm model.
#[test]
fn uql_prune_is_byte_identical_and_prunes() {
    let n = 24; // 276 ordered pairs
    for workers in [1usize, 2, 8] {
        let off = uql_join(n, "gp", workers, 9, false);
        let on = uql_join(n, "gp", workers, 9, true);
        let label = format!("workers={workers}");
        assert_eq!(off.rows.len(), on.rows.len(), "{label}");
        for (a, b) in off.rows.iter().zip(&on.rows) {
            assert_eq!(a.pair, b.pair, "{label}");
            assert_eq!(a.tep.to_bits(), b.tep.to_bits(), "{label}: pair {}", a.pair);
            assert_eq!(
                a.output.error_bound.to_bits(),
                b.output.error_bound.to_bits(),
                "{label}: pair {}",
                a.pair
            );
            assert_eq!(a.output.ecdf, b.output.ecdf, "{label}: pair {}", a.pair);
        }
        assert!(on.stats.pairs_pruned > 0, "{label}: nothing pruned");
        assert!(
            on.stats.pairs_evaluated() < off.stats.pairs_evaluated(),
            "{label}: pruning must evaluate fewer pairs"
        );
        // The REPL/CI surface: the stats line carries pairs_pruned=.
        assert!(
            on.stats.to_string().contains("pairs_pruned="),
            "{label}: stats display"
        );
    }
}

/// A pruned GP join is output-blind to the metrics switch: recording vs.
/// disabled registries keep every kept pair bit-identical (and the same
/// number pruned — pruning decisions are metric-free).
#[test]
fn metrics_switch_never_perturbs_join_outputs() {
    let run = |enabled: bool| {
        let mut ctx = ctx_with_sky(24);
        ctx.metrics().set_enabled(enabled);
        let q = format!(
            "SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 FROM sky a JOIN sky b \
             ON a.objID < b.objID WHERE PR(AngDist(a.z, b.z) IN [{LO}, {HI}]) >= {THETA} \
             USING gp WORKERS 2 SEED 9 PRUNE"
        );
        match run_uql(&q, &mut ctx).unwrap() {
            QueryOutput::Join(out) => out,
            other => panic!("join rows expected, got {other:?}"),
        }
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on.rows.len(), off.rows.len());
    for (a, b) in on.rows.iter().zip(&off.rows) {
        assert_eq!(a.pair, b.pair);
        assert_eq!(a.tep.to_bits(), b.tep.to_bits(), "pair {}", a.pair);
        assert_eq!(a.output.ecdf, b.output.ecdf, "pair {}", a.pair);
    }
    assert_eq!(on.stats.pairs_pruned, off.stats.pairs_pruned);
    assert!(on.stats.pairs_pruned > 0, "workload must actually prune");
}

/// A pruned GP join is output-blind to the tracing switch at workers
/// 1/2/8: the trace buffer recording (including per-worker CertifyFail
/// emission from the prune pre-pass) vs. disabled keeps every kept pair
/// bit-identical, and the same number pruned.
#[test]
fn tracing_switch_never_perturbs_join_outputs() {
    for workers in [1usize, 2, 8] {
        let run = |enabled: bool| {
            let mut ctx = ctx_with_sky(24);
            ctx.trace().set_enabled(enabled);
            let q = format!(
                "SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 FROM sky a JOIN sky b \
                 ON a.objID < b.objID WHERE PR(AngDist(a.z, b.z) IN [{LO}, {HI}]) >= {THETA} \
                 USING gp WORKERS {workers} SEED 9 PRUNE"
            );
            match run_uql(&q, &mut ctx).unwrap() {
                QueryOutput::Join(out) => out,
                other => panic!("join rows expected, got {other:?}"),
            }
        };
        let on = run(true);
        let off = run(false);
        let label = format!("workers={workers}");
        assert_eq!(on.rows.len(), off.rows.len(), "{label}");
        for (a, b) in on.rows.iter().zip(&off.rows) {
            assert_eq!(a.pair, b.pair, "{label}");
            assert_eq!(a.tep.to_bits(), b.tep.to_bits(), "{label}: pair {}", a.pair);
            assert_eq!(a.output.ecdf, b.output.ecdf, "{label}: pair {}", a.pair);
        }
        assert_eq!(on.stats.pairs_pruned, off.stats.pairs_pruned, "{label}");
        assert!(on.stats.pairs_pruned > 0, "{label}: workload must prune");
    }
}

/// EXPLAIN TRACE on a pruned join attributes certificate misses: every
/// pair the warm-model pre-pass attempts but cannot certify emits a
/// `CertifyFail` with its bound gap, surfaced in the summary.
#[test]
fn explain_trace_attributes_certify_misses() {
    let mut ctx = ctx_with_sky(24);
    let QueryOutput::Plan(report) = run_uql(
        "EXPLAIN TRACE SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 \
         FROM sky a JOIN sky b ON a.objID < b.objID \
         WHERE PR(AngDist(a.z, b.z) IN [0.3, 0.36]) >= 0.5 \
         USING gp WORKERS 2 SEED 9 PRUNE",
        &mut ctx,
    )
    .unwrap() else {
        panic!("TRACE returns the annotated plan")
    };
    assert!(report.contains("UdfJoin"), "plan shown:\n{report}");
    assert!(
        report.contains("JoinExec: time="),
        "operator timing:\n{report}"
    );
    assert!(
        report.contains("Trace for this statement:"),
        "trace section:\n{report}"
    );
    assert!(report.contains("certify:"), "certify line:\n{report}");
    assert!(report.contains("fails="), "fail count:\n{report}");
    assert!(report.contains("max_gap="), "bound gap:\n{report}");
}

/// EXPLAIN ANALYZE on a pruned join reports the JoinExec timing line with
/// the pruning counters and the join-phase histograms.
#[test]
fn explain_analyze_reports_join_counters() {
    let mut ctx = ctx_with_sky(24);
    let QueryOutput::Plan(report) = run_uql(
        "EXPLAIN ANALYZE SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 \
         FROM sky a JOIN sky b ON a.objID < b.objID \
         WHERE PR(AngDist(a.z, b.z) IN [0.3, 0.36]) >= 0.5 \
         USING gp WORKERS 2 SEED 9 PRUNE",
        &mut ctx,
    )
    .unwrap() else {
        panic!("ANALYZE returns the annotated plan")
    };
    assert!(report.contains("UdfJoin"), "plan shown:\n{report}");
    assert!(
        report.contains("JoinExec: time="),
        "operator timing:\n{report}"
    );
    for key in ["pairs_pruned=", "prune_attempts=", "cap_hits="] {
        assert!(report.contains(key), "{key} counter:\n{report}");
    }
    assert!(report.contains("join.screen_ns"), "phase hist:\n{report}");
    assert!(report.contains("join.certify_ns"), "phase hist:\n{report}");
}

/// EXPLAIN renders the join pushdown and the physical JoinExec binding.
#[test]
fn explain_renders_join_pushdown() {
    let mut ctx = ctx_with_sky(8);
    let QueryOutput::Plan(plan) = run_uql(
        "EXPLAIN SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b ON a.objID < b.objID \
         WHERE PR(AngDist(a.z, b.z) IN [0.3, 0.36]) >= 0.5 USING gp PRUNE",
        &mut ctx,
    )
    .unwrap() else {
        panic!("EXPLAIN returns a plan")
    };
    assert!(plan.contains("Join ON a.objID < b.objID"), "naive:\n{plan}");
    assert!(plan.contains("UdfJoin"), "pushdown:\n{plan}");
    assert!(plan.contains("pair pruning §4.2"), "prune marker:\n{plan}");
    assert!(plan.contains("JoinExec"), "physical:\n{plan}");
    assert!(plan.contains("prune"), "physical prune flag:\n{plan}");
}

/// The joined output relation carries prefixed columns and the kept pair
/// tuples.
#[test]
fn join_output_relation_is_prefixed() {
    let out = uql_join(10, "gp", 2, 3, false);
    let cols = out.relation.schema().columns();
    assert_eq!(cols, &["a.objID", "a.z", "b.objID", "b.z"]);
    assert_eq!(out.relation.len(), out.rows.len());
    for (row, t) in out.rows.iter().zip(out.relation.tuples()) {
        assert_eq!(t.value(0).mean(), row.left as f64);
        assert_eq!(t.value(2).mean(), row.right as f64);
        assert!(row.left < row.right, "ON filter must hold");
    }
}
