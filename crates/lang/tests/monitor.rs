//! The continuous monitor must be *output-blind*: a context whose
//! monitor is ticking (even from a background sampler thread) produces
//! byte-identical rows, join pairs, and stream digests to one whose
//! monitor never samples — at workers 1/2/8. Plus e2e coverage for the
//! two REPL-facing exports: the collapsed-stack profile and the
//! tick-populated time-series/alert surface.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use udf_lang::{run_uql, Context, QueryOutput};
use udf_query::{ProjectedTuple, Relation, Schema, Tuple, Value};
use udf_stream::SyntheticSource;
use udf_workloads::astro::GalaxyCatalog;

fn sky() -> Relation {
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = GalaxyCatalog::generate(64, &mut rng);
    let tuples = catalog
        .rows()
        .iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Det(r.obj_id as f64),
                Value::Gaussian {
                    mu: r.z_mean,
                    sigma: r.z_sigma,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

/// A compact catalog for the join leg (pair evaluation is quadratic).
fn stars() -> Relation {
    let tuples = (0..16)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / 16.0,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn demo_ctx() -> Context {
    let mut ctx = Context::standard();
    ctx.register_relation("sky", sky());
    ctx.register_relation("stars", stars());
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 11))
    });
    ctx
}

fn assert_rows_identical(a: &[ProjectedTuple], b: &[ProjectedTuple], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.source, y.source, "{label}: source index");
        assert_eq!(x.tep.to_bits(), y.tep.to_bits(), "{label}: TEP");
        assert_eq!(
            x.output.error_bound.to_bits(),
            y.output.error_bound.to_bits(),
            "{label}: error bound"
        );
        assert_eq!(x.output.ecdf, y.output.ecdf, "{label}: distribution");
    }
}

/// Run the three query shapes in one context. `monitored` interleaves
/// explicit ticks *and* keeps a fast background sampler alive for the
/// whole run — the strongest perturbation the monitor can exert.
fn run_all(workers: usize, monitored: bool) -> (Vec<ProjectedTuple>, Vec<(usize, usize)>, u64) {
    let mut ctx = demo_ctx();
    let _sampler = monitored.then(|| ctx.monitor().start(Duration::from_millis(1)));
    let tick = |ctx: &Context| {
        if monitored {
            ctx.monitor().tick();
        }
    };
    tick(&ctx);

    let q = format!(
        "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 \
         USING gp WORKERS {workers} SEED 11"
    );
    let QueryOutput::Rows(rows) = run_uql(&q, &mut ctx).unwrap() else {
        panic!("rows")
    };
    tick(&ctx);

    let q = format!(
        "SELECT AngDist(a.z, b.z) FROM stars a JOIN stars b ON a.objID < b.objID \
         WHERE PR(AngDist(a.z, b.z) IN [0.0, 0.8]) >= 0.5 \
         USING gp WORKERS {workers} SEED 5"
    );
    let QueryOutput::Join(join) = run_uql(&q, &mut ctx).unwrap() else {
        panic!("join")
    };
    tick(&ctx);

    let q = format!(
        "SELECT F3(x) WITH ACCURACY 0.2 0.05 METRIC disc FROM STREAM synth \
         WHERE PR(F3(x) IN [0.4, 1.5]) >= 0.3 \
         USING gp WORKERS {workers} BATCH 64 SEED 9 LIMIT 192"
    );
    let QueryOutput::Stream(stream) = run_uql(&q, &mut ctx).unwrap() else {
        panic!("stream")
    };
    tick(&ctx);

    let pairs = join.rows.iter().map(|p| (p.left, p.right)).collect();
    (rows.rows, pairs, stream.digest)
}

/// The acceptance criterion: sampler on vs. off changes nothing, at
/// workers 1/2/8.
#[test]
fn monitor_is_output_blind_across_worker_counts() {
    for workers in [1usize, 2, 8] {
        let (rows_on, pairs_on, digest_on) = run_all(workers, true);
        let (rows_off, pairs_off, digest_off) = run_all(workers, false);
        assert_rows_identical(&rows_on, &rows_off, &format!("monitor-blind/w{workers}"));
        assert_eq!(
            pairs_on, pairs_off,
            "monitor-blind join pairs, workers={workers}"
        );
        assert_eq!(
            digest_on, digest_off,
            "monitor-blind stream digest, workers={workers}"
        );
    }
}

/// After a GP relation query the trace ring holds parse/bind/exec and the
/// scheduler's fast/slow brackets, so the collapsed export shows the
/// nested `exec;fast` path with integer nanosecond counts.
#[test]
fn profile_export_folds_phase_brackets() {
    let mut ctx = demo_ctx();
    run_uql(
        "SELECT GalAge(z) FROM sky USING gp WORKERS 2 SEED 7",
        &mut ctx,
    )
    .unwrap();
    let folded = ctx.trace().to_collapsed();
    assert!(
        folded.lines().any(|l| l.starts_with("exec;fast ")),
        "fast phase nests under exec:\n{folded}"
    );
    for line in folded.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
        assert!(!path.is_empty());
        count.parse::<u64>().expect("integer ns count");
    }
}

/// Ticking the context's monitor around statements populates rate series
/// from the registry's counters and drives the standard alert set: a
/// MODEL CAP query bursts `olgapro.cap_hits`, firing `cap_hits_burst`.
#[test]
fn context_ticks_populate_series_and_alerts() {
    let mut ctx = demo_ctx();
    assert_eq!(ctx.monitor().rule_count(), 3, "standard rules pre-wired");
    ctx.monitor().tick(); // baseline
    run_uql(
        "SELECT GalAge(z) FROM sky USING gp SEED 7 MODEL CAP 8",
        &mut ctx,
    )
    .unwrap();
    ctx.monitor().tick();
    assert!(
        ctx.monitor().latest("olgapro.cap_hits.rate").unwrap() > 0.0,
        "cap-hit burst visible as a rate point"
    );
    assert!(
        ctx.monitor()
            .active_alerts()
            .iter()
            .any(|(rule, _, _)| rule == "cap_hits_burst"),
        "standard cap_hits_burst rule fires"
    );
    let dashboard = ctx.monitor().render_top(8);
    assert!(
        dashboard.contains("FIRING cap_hits_burst"),
        "dashboard:\n{dashboard}"
    );
    let jsonl = ctx.monitor().export_jsonl();
    assert!(
        jsonl.lines().any(|l| l.contains("olgapro.cap_hits.rate")),
        "export carries the series"
    );
}
