//! A table of malformed queries asserting that every rejection carries a
//! source span pointing at the offending fragment and a message naming the
//! problem.

use udf_lang::{run_uql, Context, LangError, Stage};
use udf_query::{Relation, Schema, Tuple, Value};
use udf_stream::SyntheticSource;

fn ctx() -> Context {
    let mut ctx = Context::standard();
    let tuples = (0..4)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.5,
                    sigma: 0.1,
                },
            ])
        })
        .collect();
    ctx.register_relation(
        "sky",
        Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap(),
    );
    ctx.register_stream("synth", 1, || {
        Box::new(SyntheticSource::gaussian(1, 0.5, 1))
    });
    ctx
}

struct Case {
    query: &'static str,
    /// Stage expected to reject it.
    stage: Stage,
    /// Substring the message must contain.
    message: &'static str,
    /// The source fragment the span must cover.
    at: &'static str,
}

#[test]
fn malformed_queries_fail_with_spans() {
    let cases = [
        // ── lexer ──────────────────────────────────────────────────────
        Case {
            query: "SELECT GalAge(z) FROM sky; DROP TABLE sky",
            stage: Stage::Lex,
            message: "unexpected character `;`",
            at: ";",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [1e, 2]) >= 0.5",
            stage: Stage::Lex,
            message: "empty exponent",
            at: "1e",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [1, 2]) > 0.5",
            stage: Stage::Lex,
            message: "expected `>=`",
            at: ">",
        },
        // ── parser ─────────────────────────────────────────────────────
        Case {
            query: "SELECT FROM sky",
            stage: Stage::Parse,
            message: "expected `(` after UDF name",
            at: "sky",
        },
        Case {
            query: "SELECT GalAge(z) sky",
            stage: Stage::Parse,
            message: "expected keyword `FROM`",
            at: "sky",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE GalAge(z) IN [0, 1]",
            stage: Stage::Parse,
            message: "expected keyword `PR`",
            at: "GalAge",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.1 0.2]) >= 0.5",
            stage: Stage::Parse,
            message: "`,` between interval bounds",
            at: "0.2",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WORKERS 2.5",
            stage: Stage::Parse,
            message: "non-negative integer",
            at: "2.5",
        },
        Case {
            // 2^53 + 1 does not survive the f64 literal; silently rounding
            // a SEED would break the determinism contract.
            query: "SELECT GalAge(z) FROM sky SEED 9007199254740993",
            stage: Stage::Parse,
            message: "2^53",
            at: "9007199254740993",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky SEED 1 SEED 2",
            stage: Stage::Parse,
            message: "duplicate `SEED`",
            at: "SEED",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky USING turbo",
            stage: Stage::Parse,
            message: "unknown strategy `turbo`",
            at: "turbo",
        },
        Case {
            query: "SELECT GalAge(z) WITH ACCURACY 0.1 0.05 METRIC manhattan FROM sky",
            stage: Stage::Parse,
            message: "unknown metric `manhattan`",
            at: "manhattan",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky extra tokens",
            stage: Stage::Parse,
            message: "trailing input",
            at: "extra",
        },
        // ── binder ─────────────────────────────────────────────────────
        Case {
            query: "SELECT GalAgee(z) FROM sky",
            stage: Stage::Semantic,
            message: "unknown UDF `GalAgee`",
            at: "GalAgee",
        },
        Case {
            query: "SELECT GalAge(z, z) FROM sky",
            stage: Stage::Semantic,
            message: "takes 1 argument(s), got 2",
            at: "GalAge(z, z)",
        },
        Case {
            query: "SELECT GalAge(redshift) FROM sky",
            stage: Stage::Semantic,
            message: "no column `redshift`",
            at: "redshift",
        },
        Case {
            query: "SELECT GalAge(z) FROM skyy",
            stage: Stage::Semantic,
            message: "unknown relation `skyy`",
            at: "skyy",
        },
        Case {
            query: "SELECT GalAge(z) FROM STREAM nope LIMIT 10",
            stage: Stage::Semantic,
            message: "unknown stream source `nope`",
            at: "nope",
        },
        Case {
            query: "SELECT ComoveVol(x, x) FROM STREAM synth LIMIT 10",
            stage: Stage::Semantic,
            message: "2-dimensional but stream `synth` yields 1-dimensional",
            at: "ComoveVol(x, x)",
        },
        Case {
            query: "SELECT GalAge(z) WITH ACCURACY 1.5 0.05 FROM sky",
            stage: Stage::Semantic,
            message: "ε must be a finite number in (0, 1)",
            at: "1.5",
        },
        Case {
            query: "SELECT GalAge(z) WITH ACCURACY 0.1 0 FROM sky",
            stage: Stage::Semantic,
            message: "δ must be a finite number in (0, 1)",
            at: "0",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.9, 0.2]) >= 0.5",
            stage: Stage::Semantic,
            message: "empty interval",
            at: "0.9, 0.2",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.2, 0.9]) >= 1.0",
            stage: Stage::Semantic,
            message: "θ must lie in (0, 1)",
            at: "1.0",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(ComoveVol(z, z) IN [0, 1]) >= 0.5",
            stage: Stage::Semantic,
            message: "must reference the selected call",
            at: "ComoveVol(z, z)",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WORKERS 0",
            stage: Stage::Semantic,
            message: "WORKERS must be in 1..=1024",
            at: "0",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky LIMIT 10",
            stage: Stage::Semantic,
            message: "apply to `FROM STREAM` queries only",
            at: "10",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky USING gp MODEL 12",
            stage: Stage::Parse,
            message: "expected keyword `CAP`",
            at: "12",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky MODEL CAP 3 MODEL CAP 4",
            stage: Stage::Parse,
            message: "duplicate `MODEL CAP`",
            at: "MODEL",
        },
        Case {
            // A nonzero cap the model could never bootstrap under.
            query: "SELECT GalAge(z) FROM sky USING gp MODEL CAP 3",
            stage: Stage::Semantic,
            message: "at least the GP bootstrap size (5)",
            at: "3",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky USING mc MODEL CAP 16",
            stage: Stage::Semantic,
            message: "strategy resolved to MC",
            at: "16",
        },
        Case {
            // No USING clause: AUTO picks MC for the free 1-D F1, which
            // would silently drop the cap — same rejection as explicit mc.
            query: "SELECT F1(z) FROM sky MODEL CAP 16",
            stage: Stage::Semantic,
            message: "strategy resolved to MC",
            at: "16",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky USING gp MODEL CAP 2000000",
            stage: Stage::Semantic,
            message: "MODEL CAP must be at most 1000000",
            at: "2000000",
        },
        // ── joins & qualified references ───────────────────────────────
        Case {
            query: "SELECT AngDist(a.z, c.z) FROM sky a JOIN sky b USING gp",
            stage: Stage::Semantic,
            message: "unknown alias `c`",
            at: "c.z",
        },
        Case {
            query: "SELECT AngDist(z, b.z) FROM sky a JOIN sky b USING gp",
            stage: Stage::Semantic,
            message: "must be qualified in a JOIN query",
            at: "z",
        },
        Case {
            query: "SELECT AngDist(g.z, g.z) FROM sky g JOIN sky g USING gp",
            stage: Stage::Semantic,
            message: "join aliases must be distinct",
            at: "g",
        },
        Case {
            query: "SELECT AngDist(a.z, b.redshift) FROM sky a JOIN sky b USING gp",
            stage: Stage::Semantic,
            message: "no column `redshift`",
            at: "b.redshift",
        },
        Case {
            // Arity against the catalog entry's 2-D domain.
            query: "SELECT AngDist(a.z) FROM sky a JOIN sky b USING gp",
            stage: Stage::Semantic,
            message: "takes 2 argument(s), got 1",
            at: "AngDist(a.z)",
        },
        Case {
            query: "SELECT GalAge(a.z) FROM sky",
            stage: Stage::Semantic,
            message: "requires a `JOIN` source",
            at: "a.z",
        },
        Case {
            query: "SELECT AngDist(a.z, b.z) FROM skyy a JOIN sky b USING gp",
            stage: Stage::Semantic,
            message: "unknown relation `skyy`",
            at: "skyy",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky PRUNE",
            stage: Stage::Semantic,
            message: "PRUNE applies to `JOIN` queries only",
            at: "PRUNE",
        },
        Case {
            // AngDist is expensive → AUTO would pick GP, but explicit mc
            // conflicts with PRUNE.
            query: "SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b \
                    WHERE PR(AngDist(a.z, b.z) IN [0.1, 0.2]) >= 0.5 USING mc PRUNE",
            stage: Stage::Semantic,
            message: "strategy resolved to MC",
            at: "PRUNE",
        },
        Case {
            query: "SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b USING gp PRUNE",
            stage: Stage::Semantic,
            message: "PRUNE needs a `WHERE PR(...)` predicate",
            at: "PRUNE",
        },
        Case {
            query: "SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b USING gp LIMIT 5",
            stage: Stage::Semantic,
            message: "apply to `FROM STREAM` queries only",
            at: "5",
        },
        Case {
            query: "SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b ON a.objID < c.objID USING gp",
            stage: Stage::Semantic,
            message: "unknown alias `c`",
            at: "c.objID",
        },
    ];

    let mut ctx = ctx();
    for case in &cases {
        let err = run_uql(case.query, &mut ctx)
            .map(|_| ())
            .expect_err(&format!("must reject: {}", case.query));
        let LangError::Diagnostic {
            stage,
            span,
            message,
        } = &err
        else {
            panic!("{}: expected a span diagnostic, got {err}", case.query)
        };
        assert_eq!(*stage, case.stage, "{}: wrong stage ({err})", case.query);
        assert!(
            message.contains(case.message),
            "{}: message {message:?} missing {:?}",
            case.query,
            case.message,
        );
        // The span must cover the offending fragment. Find the expected
        // fragment's last occurrence that intersects the span.
        let covered = &case.query[span.start..span.end.min(case.query.len())];
        assert!(
            covered.contains(case.at) || case.at.contains(covered.trim()),
            "{}: span {span} covers {covered:?}, expected {:?}",
            case.query,
            case.at,
        );
        // And the caret rendering must not panic and must carry the message.
        assert!(err.render(case.query).contains(case.message));
    }
}

/// A user-registered catalog entry with a poisoned output range must
/// surface as a diagnostic on the call site, not a panic inside `bind`.
#[test]
fn poisoned_catalog_entry_is_a_diagnostic() {
    use std::sync::Arc;
    use udf_workloads::registry::UdfEntry;
    let mut ctx = ctx();
    ctx.udfs_mut().register(UdfEntry::probed(
        Arc::new(udf_uncertain_probe::Identity),
        udf_core::udf::CostModel::Free,
        vec![(0.0, 1.0)],
        Some(f64::NAN),
        "bad range",
    ));
    let err = run_uql("SELECT Identity(z) FROM sky", &mut ctx).unwrap_err();
    let LangError::Diagnostic { stage, message, .. } = &err else {
        panic!("expected diagnostic, got {err}")
    };
    assert_eq!(*stage, Stage::Semantic);
    assert!(message.contains("invalid output_range"), "{message}");
}

mod udf_uncertain_probe {
    pub struct Identity;
    impl udf_core::udf::UdfFunction for Identity {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, x: &[f64]) -> f64 {
            x[0]
        }
        fn name(&self) -> &str {
            "Identity"
        }
    }
}

/// The predicate call matches the selected call case-insensitively, like
/// catalog lookup does.
#[test]
fn predicate_call_matches_case_insensitively() {
    let mut ctx = ctx();
    let out = run_uql(
        "SELECT galage(z) FROM sky WHERE PR(GalAge(z) IN [0.5, 0.9]) >= 0.6 USING mc SEED 1",
        &mut ctx,
    );
    assert!(out.is_ok(), "case difference must not reject: {out:?}");
}

/// Execution-stage errors (no span) still explain themselves.
#[test]
fn exec_errors_are_explained() {
    let mut ctx = ctx();
    let err = run_uql("SELECT F1(x) FROM STREAM synth", &mut ctx).unwrap_err();
    assert!(err.span().is_none());
    assert!(err
        .render("SELECT F1(x) FROM STREAM synth")
        .contains("LIMIT"));
}

/// Prepared-statement misuse is a span diagnostic at every stage — `$0`
/// at lex, `$n` outside PREPARE at bind, unknown or duplicate names,
/// and bad arity or argument types at EXECUTE — never a panic.
#[test]
fn malformed_prepared_statements_fail_with_spans() {
    let mut ctx = ctx();
    // `q` takes $1 (a probability bound) and $2 (a worker count).
    run_uql(
        "PREPARE q AS SELECT GalAge(z) FROM sky \
         WHERE PR(GalAge(z) IN [$1, 0.9]) >= 0.6 USING mc WORKERS $2 SEED 1",
        &mut ctx,
    )
    .unwrap();

    let cases = [
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [$0, 1]) >= 0.5",
            stage: Stage::Lex,
            message: "parameters are numbered from `$1`",
            at: "$0",
        },
        Case {
            query: "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [$1, 1]) >= 0.5",
            stage: Stage::Semantic,
            message: "only allowed inside `PREPARE",
            at: "$1",
        },
        Case {
            query: "EXECUTE nope",
            stage: Stage::Semantic,
            message: "no prepared statement named `nope`",
            at: "nope",
        },
        Case {
            query: "DEALLOCATE nope",
            stage: Stage::Semantic,
            message: "no prepared statement named `nope`",
            at: "nope",
        },
        Case {
            query: "PREPARE q AS SELECT GalAge(z) FROM sky",
            stage: Stage::Semantic,
            message: "already exists (DEALLOCATE it first)",
            at: "q",
        },
        Case {
            query: "EXECUTE q (0.5)",
            stage: Stage::Semantic,
            message: "takes 2 argument(s), got 1",
            at: "q",
        },
        Case {
            query: "EXECUTE q (0.5, 2.5)",
            stage: Stage::Semantic,
            message: "must be a non-negative integer",
            at: "2.5",
        },
    ];
    for case in &cases {
        let err = run_uql(case.query, &mut ctx)
            .map(|_| ())
            .expect_err(&format!("must reject: {}", case.query));
        let LangError::Diagnostic {
            stage,
            span,
            message,
        } = &err
        else {
            panic!("{}: expected a span diagnostic, got {err}", case.query)
        };
        assert_eq!(*stage, case.stage, "{}: wrong stage ({err})", case.query);
        assert!(
            message.contains(case.message),
            "{}: message {message:?} missing {:?}",
            case.query,
            case.message,
        );
        let covered = &case.query[span.start..span.end.min(case.query.len())];
        assert!(
            covered.contains(case.at) || case.at.contains(covered.trim()),
            "{}: span {span} covers {covered:?}, expected {:?}",
            case.query,
            case.at,
        );
        assert!(err.render(case.query).contains(case.message));
    }
    // The failed EXECUTEs above must not have deallocated the plan.
    run_uql("EXECUTE q (0.5, 2)", &mut ctx).unwrap();
}
