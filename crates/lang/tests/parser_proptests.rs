//! Parser property tests: pretty-print → reparse is an identity on the
//! AST (spans aside — `Spanned` equality ignores them) for randomly
//! generated queries covering every grammar production, including the
//! `JOIN` source form and qualified attribute references.

use proptest::prelude::*;
use udf_lang::ast::{
    AccuracyClause, AttrRef, CallExpr, ExplainMode, JoinSource, MetricName, NumExpr, OnExpr,
    Options, PrFilterExpr, Query, Select, SourceRef, Statement, StrategyName, UintExpr,
};
use udf_lang::error::{Span, Spanned};
use udf_lang::{parse, parse_statement};

fn sp<T>(node: T) -> Spanned<T> {
    Spanned::new(node, Span::default())
}

/// Identifier that cannot collide with a keyword in ident position.
fn ident() -> impl Strategy<Value = String> {
    (0u8..5, 0u32..1000).prop_map(|(k, n)| {
        let stem = ["GalAge", "f", "x_1", "ComoveVol", "_z"][k as usize];
        format!("{stem}{n}")
    })
}

/// A bare or alias-qualified attribute reference.
fn attr() -> impl Strategy<Value = AttrRef> {
    (ident(), ident(), 0u8..2).prop_map(|(name, alias, qualified)| AttrRef {
        alias: (qualified == 1).then_some(alias),
        name,
    })
}

/// Finite positive literal in the shapes users write: small integers,
/// plain decimals, and scientific-notation magnitudes.
fn number() -> impl Strategy<Value = f64> {
    (0u8..3, 1u32..1000, 0.001f64..1000.0, -6i32..6, 1.0f64..10.0).prop_map(
        |(kind, n, plain, e, m)| match kind {
            0 => n as f64,
            1 => plain,
            _ => m * 10f64.powi(e),
        },
    )
}

fn call(args: usize) -> impl Strategy<Value = CallExpr> {
    (ident(), prop::collection::vec(attr(), args..args + 1)).prop_map(|(name, args)| CallExpr {
        name: sp(name),
        args: args.into_iter().map(sp).collect(),
        span: Span::default(),
    })
}

fn accuracy() -> impl Strategy<Value = AccuracyClause> {
    (0.0001f64..0.9999, 0.0001f64..0.9999, 0u8..3).prop_map(|(eps, delta, m)| AccuracyClause {
        eps: sp(NumExpr::Lit(eps)),
        delta: sp(NumExpr::Lit(delta)),
        metric: match m {
            0 => None,
            1 => Some(sp(MetricName::Ks)),
            _ => Some(sp(MetricName::Disc)),
        },
    })
}

fn options() -> impl Strategy<Value = Options> {
    (
        0u8..4,
        1u64..64,
        1u64..4096,
        0u64..1_000_000,
        (1u64..100_000, 0u64..1000),
        0u8..128,
    )
        .prop_map(|(s, w, b, seed, (l, cap), mask)| Options {
            strategy: (mask & 1 != 0).then(|| {
                sp(match s % 3 {
                    0 => StrategyName::Mc,
                    1 => StrategyName::Gp,
                    _ => StrategyName::Auto,
                })
            }),
            workers: (mask & 2 != 0).then(|| sp(UintExpr::Lit(w))),
            batch: (mask & 4 != 0).then(|| sp(UintExpr::Lit(b))),
            seed: (mask & 8 != 0).then(|| sp(UintExpr::Lit(seed))),
            limit: (mask & 16 != 0).then(|| sp(UintExpr::Lit(l))),
            model_cap: (mask & 32 != 0).then(|| sp(UintExpr::Lit(cap))),
            prune: (mask & 64 != 0).then(|| sp(true)),
        })
}

fn join_source() -> impl Strategy<Value = JoinSource> {
    (
        (ident(), ident()),
        (ident(), ident()),
        (attr(), attr()),
        0u8..2,
    )
        .prop_map(
            |((left, la), (right, ra), (lhs, rhs), with_on)| JoinSource {
                left: sp(left),
                left_alias: sp(la),
                right: sp(right),
                right_alias: sp(ra),
                on: (with_on == 1).then(|| OnExpr {
                    lhs: sp(lhs),
                    rhs: sp(rhs),
                    span: Span::default(),
                }),
            },
        )
}

fn query() -> impl Strategy<Value = Query> {
    (
        ((1usize..4).prop_flat_map(call), accuracy()),
        (ident(), join_source()),
        (number(), number(), 0.0001f64..0.9999),
        options(),
        0u8..128,
    )
        .prop_map(
            |((call, acc), (src, join), (a, b, theta), options, flags)| {
                let explain = if flags & 1 == 0 {
                    ExplainMode::None
                } else if flags & 64 != 0 {
                    ExplainMode::Trace
                } else if flags & 32 != 0 {
                    ExplainMode::Analyze
                } else {
                    ExplainMode::Plan
                };
                let with_acc = flags & 2 != 0;
                let with_pred = flags & 4 != 0;
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let predicate = with_pred.then(|| PrFilterExpr {
                    call: call.clone(),
                    lo: sp(NumExpr::Lit(lo)),
                    hi: sp(NumExpr::Lit(hi + 1.0)),
                    theta: sp(NumExpr::Lit(theta)),
                    span: Span::default(),
                });
                let source = match flags & 24 {
                    0 | 16 => SourceRef::Relation(sp(src)),
                    8 => SourceRef::Stream(sp(src)),
                    _ => SourceRef::Join(Box::new(join)),
                };
                Query {
                    explain,
                    select: Select {
                        call,
                        accuracy: with_acc.then_some(acc),
                        source,
                        predicate,
                        options,
                    },
                }
            },
        )
}

/// Replace up to `k` numeric positions of `sel` (in a fixed clause order)
/// with `$1..$n`, keeping parameter numbering contiguous. Returns how
/// many were placed.
fn parameterize(sel: &mut Select, k: usize) -> usize {
    let mut n = 0usize;
    let mut nums: Vec<&mut Spanned<NumExpr>> = Vec::new();
    if let Some(acc) = sel.accuracy.as_mut() {
        nums.push(&mut acc.eps);
        nums.push(&mut acc.delta);
    }
    if let Some(p) = sel.predicate.as_mut() {
        nums.push(&mut p.lo);
        nums.push(&mut p.hi);
        nums.push(&mut p.theta);
    }
    for e in nums {
        if n < k {
            n += 1;
            e.node = NumExpr::Param(n);
        }
    }
    let uints = [
        sel.options.workers.as_mut(),
        sel.options.batch.as_mut(),
        sel.options.seed.as_mut(),
        sel.options.limit.as_mut(),
        sel.options.model_cap.as_mut(),
    ];
    for e in uints.into_iter().flatten() {
        if n < k {
            n += 1;
            e.node = UintExpr::Param(n);
        }
    }
    n
}

/// The full statement grammar: a plain query, a PREPARE with `$n`
/// parameters scattered over its numeric positions, an EXECUTE (with an
/// optional EXPLAIN prefix and argument list), or a DEALLOCATE.
fn statement() -> impl Strategy<Value = Statement> {
    (
        query(),
        ident(),
        0usize..8,
        prop::collection::vec(0.001f64..1000.0, 0..4),
        0u8..4,
    )
        .prop_map(|(q, name, k, args, kind)| match kind {
            0 => Statement::Select(Box::new(q)),
            1 => {
                let mut select = q.select;
                parameterize(&mut select, k);
                Statement::Prepare {
                    name: sp(name),
                    select: Box::new(select),
                }
            }
            2 => Statement::Execute {
                explain: q.explain,
                name: sp(name),
                args: args.into_iter().map(sp).collect(),
            },
            _ => Statement::Deallocate { name: sp(name) },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_print_reparses_to_identical_ast(q in query()) {
        let printed = q.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {printed:?}\n{}", e.render(&printed)));
        prop_assert_eq!(&q, &reparsed, "round-trip drift on {}", printed);
        // And the canonical form is a fixed point of printing.
        prop_assert_eq!(printed.clone(), reparsed.to_string());
    }

    #[test]
    fn numeric_literals_round_trip_exactly(x in 1e-9f64..1e9) {
        let src = format!("SELECT f(a) FROM r WHERE PR(f(a) IN [{x:?}, 1e12]) >= 0.5");
        let q = parse(&src).unwrap();
        let p = q.select.predicate.as_ref().unwrap();
        prop_assert_eq!(p.lo.node, NumExpr::Lit(x), "literal {:?} drifted", x);
    }

    #[test]
    fn statements_pretty_print_reparse_identically(s in statement()) {
        let printed = s.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {printed:?}\n{}", e.render(&printed)));
        prop_assert_eq!(&s, &reparsed, "round-trip drift on {}", printed);
        // And the canonical form is a fixed point of printing.
        prop_assert_eq!(printed.clone(), reparsed.to_string());
    }

    #[test]
    fn random_whitespace_is_insignificant(q in query(), pad in 1usize..4) {
        let printed = q.to_string();
        let spaced: String = printed
            .split(' ')
            .collect::<Vec<_>>()
            .join(&" ".repeat(pad));
        prop_assert_eq!(parse(&printed).unwrap(), parse(&spaced).unwrap());
    }

    #[test]
    fn qualified_refs_round_trip(alias in ident(), name in ident()) {
        let src = format!("SELECT f({alias}.{name}) FROM r a JOIN s b");
        let q = parse(&src).unwrap();
        let got = &q.select.call.args[0].node;
        prop_assert_eq!(got.alias.as_deref(), Some(alias.as_str()));
        prop_assert_eq!(&got.name, &name);
    }
}
