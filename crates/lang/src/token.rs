//! The UQL lexer: source text → spanned tokens.
//!
//! Keywords are not distinguished here — identifiers are classified by the
//! parser (case-insensitively), so UDF and relation names that collide
//! with keywords in *other* positions still lex fine.

use crate::error::{LangError, Result, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident(String),
    /// Numeric literal (integer or float, optional exponent).
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.` (qualified attribute references, `a.z`)
    Dot,
    /// `>=`
    Ge,
    /// `<` (join `ON` comparisons)
    Lt,
    /// `$n` — positional parameter of a prepared statement (1-based).
    Param(u32),
}

impl Tok {
    /// How the token is shown in error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Number(n) => format!("number `{n:?}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Param(n) => format!("parameter `${n}`"),
        }
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Its byte range in the source.
    pub span: Span,
}

/// Tokenize `src`. Whitespace separates tokens; `--` starts a comment that
/// runs to end of line (SQL style).
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // SQL-style `--` comment to end of line.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let tok = match c {
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    return Err(LangError::lex(
                        Span::new(i, i + 1),
                        "expected `>=` (thresholds compare with `>=`; ON joins with `<`)",
                    ));
                }
            }
            '<' => {
                i += 1;
                Tok::Lt
            }
            // `.` starts a number only when digits follow (`.5`);
            // otherwise it qualifies an attribute (`a.z`).
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                i += 1;
                Tok::Dot
            }
            '$' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let digits = &src[i + 1..j];
                let n: u32 = digits.parse().map_err(|_| {
                    LangError::lex(
                        Span::new(i, j.max(i + 1)),
                        "expected a parameter number after `$` (e.g. `$1`)",
                    )
                })?;
                if n == 0 {
                    return Err(LangError::lex(
                        Span::new(i, j),
                        "parameters are numbered from `$1`",
                    ));
                }
                i = j;
                Tok::Param(n)
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                Tok::Ident(src[start..i].to_string())
            }
            _ if c.is_ascii_digit() || c == '-' || c == '.' => {
                i = scan_number(bytes, i)?;
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| {
                    LangError::lex(
                        Span::new(start, i),
                        format!("malformed numeric literal `{text}`"),
                    )
                })?;
                Tok::Number(value)
            }
            _ => {
                let len = c.len_utf8();
                return Err(LangError::lex(
                    Span::new(i, i + len),
                    format!("unexpected character `{c}`"),
                ));
            }
        };
        out.push(Token {
            tok,
            span: Span::new(start, i),
        });
    }
    Ok(out)
}

/// Advance past `[-] digits [. digits] [(e|E) [+|-] digits]` starting at
/// `i`; returns the end offset.
fn scan_number(bytes: &[u8], mut i: usize) -> Result<usize> {
    let start = i;
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |bytes: &[u8], mut j: usize| {
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        j
    };
    let after_int = digits(bytes, i);
    let mut any = after_int > i;
    i = after_int;
    if bytes.get(i) == Some(&b'.') {
        let after_frac = digits(bytes, i + 1);
        any |= after_frac > i + 1;
        i = after_frac;
    }
    if !any {
        return Err(LangError::lex(
            Span::new(start, i.max(start + 1)),
            "malformed numeric literal (no digits)",
        ));
    }
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        let after_exp = digits(bytes, j);
        if after_exp == j {
            return Err(LangError::lex(
                Span::new(start, j),
                "malformed numeric literal (empty exponent)",
            ));
        }
        i = after_exp;
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let q = "SELECT GalAge(z) FROM sky WHERE PR(GalAge(z) IN [0.3, 0.8]) >= 0.6";
        let t = toks(q);
        assert_eq!(t[0], Tok::Ident("SELECT".into()));
        assert!(t.contains(&Tok::Ge));
        assert!(t.contains(&Tok::Number(0.3)));
        assert!(t.contains(&Tok::LBracket));
    }

    #[test]
    fn numbers_in_all_shapes() {
        assert_eq!(
            toks("1 1.5 -2.25 1e-7 3.5E+2 .5 7."),
            vec![
                Tok::Number(1.0),
                Tok::Number(1.5),
                Tok::Number(-2.25),
                Tok::Number(1e-7),
                Tok::Number(3.5e2),
                Tok::Number(0.5),
                Tok::Number(7.0),
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let ts = lex("ab  12.5").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(4, 8));
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("SELECT -- the projection\nf(x)");
        assert_eq!(t.len(), 5);
        assert_eq!(t[1], Tok::Ident("f".into()));
    }

    #[test]
    fn bad_inputs_carry_spans() {
        for (src, at) in [("a ; b", 2), ("1e", 0), ("a > b", 2), ("§", 0)] {
            let err = lex(src).unwrap_err();
            let span = err.span().expect("lex errors carry spans");
            assert_eq!(span.start, at, "source {src:?}: {err}");
        }
    }

    #[test]
    fn qualified_refs_and_on_comparisons() {
        assert_eq!(
            toks("a.z < b.z"),
            vec![
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("z".into()),
                Tok::Lt,
                Tok::Ident("b".into()),
                Tok::Dot,
                Tok::Ident("z".into()),
            ]
        );
        // `.5` is still a number; `x.5` is an ident, a dot-number boundary.
        assert_eq!(toks(".5"), vec![Tok::Number(0.5)]);
        assert_eq!(toks("x .5"), vec![Tok::Ident("x".into()), Tok::Number(0.5)]);
        assert_eq!(toks("7."), vec![Tok::Number(7.0)]);
    }

    #[test]
    fn lone_minus_is_rejected() {
        assert!(lex("-").is_err());
        assert!(lex("-.").is_err());
    }

    #[test]
    fn positional_parameters() {
        assert_eq!(
            toks("PR $1 $23"),
            vec![Tok::Ident("PR".into()), Tok::Param(1), Tok::Param(23)]
        );
        // `$` needs digits, and parameters are 1-based.
        for src in ["$", "$x", "$0"] {
            let err = lex(src).unwrap_err();
            assert_eq!(err.span().unwrap().start, 0, "source {src:?}: {err}");
        }
        let ts = lex("a $12").unwrap();
        assert_eq!(ts[1].span, Span::new(2, 5));
    }
}
