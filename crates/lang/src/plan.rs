//! Logical plans, the predicate-pushdown rewrite, and the binder that
//! lowers UQL onto the execution engine.
//!
//! Compilation is three stages past parsing:
//!
//! 1. **naive logical plan** — the query as written:
//!    `PrFilter(UdfProject(Scan))`;
//! 2. **optimized logical plan** — predicate pushdown fuses the filter into
//!    the UDF operator (`UdfSelect(Scan)`), which is what routes selections
//!    through the engine's envelope-filtering fast path (§5.5): the
//!    predicate is ruled on the GP fast-path bounds *before* any
//!    model-mutating work is scheduled, and MC evaluation early-stops on
//!    the Hoeffding bound (Remark 2.1);
//! 3. **physical plan** — names resolved against the catalog/context,
//!    accuracy and predicate validated into engine types, strategy fixed
//!    (AUTO resolves by the paper's §6.3 rules), ready to execute.

use crate::ast::{AttrRef, JoinSource, MetricName, Query, Select, SourceRef, StrategyName};
use crate::error::{LangError, Result, Span, Spanned};
use crate::exec::Context;
use std::fmt;
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::filtering::Predicate;
use udf_core::hybrid::{rule_based_choice, HybridChoice};
use udf_core::udf::BlackBoxUdf;
use udf_join::Side;
use udf_query::EvalStrategy;
use udf_stream::StreamStrategy;

/// A logical-plan operator tree (used for `EXPLAIN`; the physical plan
/// carries the bound engine objects).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a finite registered relation.
    Scan {
        /// Relation name.
        relation: String,
        /// Row count at bind time.
        rows: usize,
    },
    /// Scan a registered stream source.
    StreamScan {
        /// Source name.
        source: String,
        /// Tuple dimensionality.
        dim: usize,
    },
    /// Compute a UDF output distribution per tuple (query Q1).
    UdfProject {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Rendered call, e.g. `GalAge(z)`.
        call: String,
    },
    /// Keep tuples with `Pr[g(x) ∈ [lo, hi]] ≥ θ` (query Q2's selection).
    PrFilter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Rendered predicate.
        predicate: String,
    },
    /// The fused projection + filter produced by predicate pushdown: the
    /// engine rules the predicate from fast-path bounds before paying for
    /// full evaluation.
    UdfSelect {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Rendered call.
        call: String,
        /// Rendered predicate.
        predicate: String,
    },
    /// Candidate-pair generation for a θ-join (`FROM rel a JOIN rel b`).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Rendered `ON` filter, when present.
        on: Option<String>,
    },
    /// The fused join operator produced by pushdown: pair generation, the
    /// pair UDF, and the PR predicate execute inside `udf_join` — which
    /// is what enables envelope-based pair pruning (§4.2/§5.5) before any
    /// per-pair inference.
    UdfJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Rendered `ON` filter, when present.
        on: Option<String>,
        /// Rendered pair call.
        call: String,
        /// Rendered predicate, when present.
        predicate: Option<String>,
        /// Whether envelope pair pruning is enabled.
        prune: bool,
    },
}

impl LogicalPlan {
    /// Predicate pushdown: `PrFilter(UdfProject(x))` fuses into
    /// `UdfSelect(x)` so the filter is evaluated inside the UDF operator
    /// (envelope bounds / Hoeffding early stop) instead of after full
    /// materialization. Over a [`Join`](LogicalPlan::Join) input the fused
    /// operator is [`UdfJoin`](LogicalPlan::UdfJoin): the predicate (and
    /// with `PRUNE`, the §4.2 envelope certificate over candidate pairs)
    /// executes inside the join instead of over a materialized cross
    /// product. `prune` marks the produced `UdfJoin` operators.
    pub fn optimize(self, prune: bool) -> LogicalPlan {
        match self {
            LogicalPlan::PrFilter { input, predicate } => match input.optimize(prune) {
                LogicalPlan::UdfProject { input, call } => LogicalPlan::UdfSelect {
                    input,
                    call,
                    predicate,
                },
                // The project already fused into the join operator; push
                // the filter into it too.
                LogicalPlan::UdfJoin {
                    left,
                    right,
                    on,
                    call,
                    predicate: None,
                    prune: p,
                } => LogicalPlan::UdfJoin {
                    left,
                    right,
                    on,
                    call,
                    predicate: Some(predicate),
                    prune: p,
                },
                other => LogicalPlan::PrFilter {
                    input: Box::new(other),
                    predicate,
                },
            },
            LogicalPlan::UdfProject { input, call } => match *input {
                LogicalPlan::Join { left, right, on } => LogicalPlan::UdfJoin {
                    left,
                    right,
                    on,
                    call,
                    predicate: None,
                    prune,
                },
                other => LogicalPlan::UdfProject {
                    input: Box::new(other.optimize(prune)),
                    call,
                },
            },
            leaf => leaf,
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { relation, rows } => {
                writeln!(f, "{pad}Scan {relation} ({rows} rows)")
            }
            LogicalPlan::StreamScan { source, dim } => {
                writeln!(f, "{pad}StreamScan {source} (dim {dim})")
            }
            LogicalPlan::UdfProject { input, call } => {
                writeln!(f, "{pad}UdfProject {call}")?;
                input.fmt_indented(f, depth + 1)
            }
            LogicalPlan::PrFilter { input, predicate } => {
                writeln!(f, "{pad}PrFilter {predicate}")?;
                input.fmt_indented(f, depth + 1)
            }
            LogicalPlan::UdfSelect {
                input,
                call,
                predicate,
            } => {
                writeln!(
                    f,
                    "{pad}UdfSelect {call} {predicate}   [pushdown: fast-path filtering §5.5]"
                )?;
                input.fmt_indented(f, depth + 1)
            }
            LogicalPlan::Join { left, right, on } => {
                match on {
                    Some(on) => writeln!(f, "{pad}Join ON {on}")?,
                    None => writeln!(f, "{pad}Join")?,
                }
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            LogicalPlan::UdfJoin {
                left,
                right,
                on,
                call,
                predicate,
                prune,
            } => {
                write!(f, "{pad}UdfJoin {call}")?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                if let Some(p) = predicate {
                    write!(f, " {p}")?;
                }
                writeln!(
                    f,
                    "   [pushdown: pair {}filtering §5.5{}]",
                    if *prune { "pruning §4.2 + " } else { "" },
                    if predicate.is_some() {
                        ""
                    } else {
                        " n/a (projection)"
                    },
                )?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A fully bound, executable plan over a finite relation.
#[derive(Debug, Clone)]
pub struct RelPlan {
    /// Registered relation name.
    pub relation: String,
    /// The bound UDF (cloned from the catalog).
    pub udf: BlackBoxUdf,
    /// Argument column names, in call order.
    pub args: Vec<String>,
    /// Resolved evaluation strategy.
    pub strategy: EvalStrategy,
    /// Validated accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Output-range estimate from the catalog (scales Γ and λ).
    pub output_range: f64,
    /// Validated selection predicate, when the query has a WHERE clause.
    pub predicate: Option<Predicate>,
    /// Fast-path worker threads.
    pub workers: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// GP model-size budget (0 = uncapped).
    pub model_cap: usize,
}

/// A fully bound, executable plan over a stream source.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// Registered source name.
    pub source: String,
    /// The bound UDF (cloned from the catalog).
    pub udf: BlackBoxUdf,
    /// Resolved evaluation strategy.
    pub strategy: StreamStrategy,
    /// Validated accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Output-range estimate from the catalog.
    pub output_range: f64,
    /// Validated selection predicate, when present.
    pub predicate: Option<Predicate>,
    /// Fast-path worker threads.
    pub workers: usize,
    /// Micro-batch size.
    pub batch: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Optional tuple limit for the run.
    pub limit: Option<u64>,
    /// GP model-size budget (0 = uncapped).
    pub model_cap: usize,
}

/// A fully bound, executable θ-join plan.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Left registered relation name.
    pub left: String,
    /// Left alias (column prefix).
    pub left_alias: String,
    /// Right registered relation name.
    pub right: String,
    /// Right alias (column prefix).
    pub right_alias: String,
    /// Resolved `ON lhs < rhs` operands, when present.
    pub on: Option<((Side, String), (Side, String))>,
    /// The bound pair UDF (cloned from the catalog).
    pub udf: BlackBoxUdf,
    /// Resolved pair-UDF arguments `(side, column)`, in call order.
    pub args: Vec<(Side, String)>,
    /// Resolved evaluation strategy.
    pub strategy: EvalStrategy,
    /// Validated accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Output-range estimate from the catalog.
    pub output_range: f64,
    /// Validated pair predicate, when the query has a WHERE clause.
    pub predicate: Option<Predicate>,
    /// Fast-path worker threads.
    pub workers: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// GP model-size budget (0 = uncapped).
    pub model_cap: usize,
    /// Envelope-based pair pruning.
    pub prune: bool,
}

/// The bound physical plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// One-shot batch execution over a relation
    /// ([`Executor::select_batch`](udf_query::Executor::select_batch) /
    /// [`project_batch`](udf_query::Executor::project_batch)).
    Relation(RelPlan),
    /// A [`udf_stream::Session`] subscription driven over the source.
    Stream(StreamPlan),
    /// A [`udf_join::JoinExecutor`] run over two registered relations.
    Join(JoinPlan),
}

/// Everything compilation produced for one statement.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The query as written.
    pub logical: LogicalPlan,
    /// After predicate pushdown.
    pub optimized: LogicalPlan,
    /// The executable binding.
    pub physical: PhysicalPlan,
}

impl BoundQuery {
    /// The `EXPLAIN` rendering: both logical plans plus the physical
    /// binding details.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        s.push_str("Logical plan:\n");
        s.push_str(&indent(&self.logical.to_string()));
        if self.optimized != self.logical {
            s.push_str("Optimized plan (predicate pushdown):\n");
            s.push_str(&indent(&self.optimized.to_string()));
        }
        s.push_str("Physical plan:\n");
        match &self.physical {
            PhysicalPlan::Relation(p) => {
                s.push_str(&format!(
                    "  BatchExec relation={} udf={} strategy={:?} workers={} seed={}{}\n",
                    p.relation,
                    p.udf.name(),
                    p.strategy,
                    p.workers,
                    p.seed,
                    render_model_cap(p.model_cap),
                ));
                s.push_str(&format!(
                    "    accuracy: eps={} delta={} lambda={:.4} metric={:?}\n",
                    p.accuracy.eps, p.accuracy.delta, p.accuracy.lambda, p.accuracy.metric,
                ));
                match &p.predicate {
                    Some(pr) => s.push_str(&format!(
                        "    predicate: Pr[y ∈ [{}, {}]] ≥ {} — pushed into the {} fast path\n",
                        pr.lo,
                        pr.hi,
                        pr.theta,
                        match p.strategy {
                            EvalStrategy::Gp => "GP-envelope (§5.5)",
                            EvalStrategy::Mc => "Hoeffding early-stop (Remark 2.1)",
                        },
                    )),
                    None => s.push_str("    predicate: none (pure projection)\n"),
                }
            }
            PhysicalPlan::Join(p) => {
                s.push_str(&format!(
                    "  JoinExec {} {} JOIN {} {} udf={} strategy={:?} workers={} seed={}{}{}\n",
                    p.left,
                    p.left_alias,
                    p.right,
                    p.right_alias,
                    p.udf.name(),
                    p.strategy,
                    p.workers,
                    p.seed,
                    render_model_cap(p.model_cap),
                    if p.prune { " prune" } else { "" },
                ));
                if let Some(((ls, lc), (rs, rc))) = &p.on {
                    s.push_str(&format!(
                        "    on: {}.{lc} < {}.{rc}\n",
                        side_alias(p, *ls),
                        side_alias(p, *rs),
                    ));
                }
                s.push_str(&format!(
                    "    accuracy: eps={} delta={} lambda={:.4} metric={:?}\n",
                    p.accuracy.eps, p.accuracy.delta, p.accuracy.lambda, p.accuracy.metric,
                ));
                match &p.predicate {
                    Some(pr) => s.push_str(&format!(
                        "    predicate: Pr[y ∈ [{}, {}]] ≥ {} — {}\n",
                        pr.lo,
                        pr.hi,
                        pr.theta,
                        match (p.strategy, p.prune) {
                            (EvalStrategy::Gp, true) =>
                                "envelope pair pruning (§4.2) + GP fast-path filter (§5.5)",
                            (EvalStrategy::Gp, false) => "GP fast-path filter (§5.5)",
                            (EvalStrategy::Mc, _) => "Hoeffding early-stop (Remark 2.1)",
                        },
                    )),
                    None => s.push_str("    predicate: none (pure pair projection)\n"),
                }
            }
            PhysicalPlan::Stream(p) => {
                s.push_str(&format!(
                    "  StreamSubscribe source={} udf={} strategy={:?} workers={} batch={} seed={}{}\n",
                    p.source,
                    p.udf.name(),
                    p.strategy,
                    p.workers,
                    p.batch,
                    p.seed,
                    match p.limit {
                        Some(l) => format!("{} limit={l}", render_model_cap(p.model_cap)),
                        None => format!("{} (unbounded)", render_model_cap(p.model_cap)),
                    },
                ));
                s.push_str(&format!(
                    "    accuracy: eps={} delta={} lambda={:.4} metric={:?}\n",
                    p.accuracy.eps, p.accuracy.delta, p.accuracy.lambda, p.accuracy.metric,
                ));
                match &p.predicate {
                    Some(pr) => s.push_str(&format!(
                        "    predicate: Pr[y ∈ [{}, {}]] ≥ {} — online filter in the accept hook\n",
                        pr.lo, pr.hi, pr.theta,
                    )),
                    None => s.push_str("    predicate: none (every tuple is emitted)\n"),
                }
            }
        }
        s
    }
}

/// A nonzero `MODEL CAP` on a query whose strategy resolved to MC would be
/// silently dropped (MC has no model) — reject it with a span instead,
/// whether the MC choice was explicit (`USING mc`) or made by AUTO.
fn reject_cap_on_mc(sel: &crate::ast::Select, model_cap: usize, is_mc: bool) -> Result<()> {
    if model_cap == 0 || !is_mc {
        return Ok(());
    }
    let span = sel
        .options
        .model_cap
        .as_ref()
        .expect("nonzero model_cap implies the clause was written")
        .span;
    Err(LangError::semantic(
        span,
        "MODEL CAP bounds the GP model, but this query's strategy resolved to MC \
         (explicitly or via AUTO's §6.3 rules); use `USING gp` or drop the cap",
    ))
}

fn side_alias(p: &JoinPlan, side: Side) -> &str {
    match side {
        Side::Left => &p.left_alias,
        Side::Right => &p.right_alias,
    }
}

fn render_model_cap(cap: usize) -> String {
    if cap > 0 {
        format!(" model_cap={cap}")
    } else {
        String::new()
    }
}

fn indent(s: &str) -> String {
    s.lines().fold(String::new(), |mut acc, l| {
        acc.push_str("  ");
        acc.push_str(l);
        acc.push('\n');
        acc
    })
}

/// Bind a parsed query against a [`Context`]: resolve the UDF and source,
/// validate accuracy/predicate into engine types, resolve AUTO, and build
/// the logical plans.
pub fn bind(query: &Query, ctx: &Context) -> Result<BoundQuery> {
    let sel = &query.select;

    // 1. The projected UDF must exist in the catalog.
    let entry = ctx.udfs().get(&sel.call.name.node).ok_or_else(|| {
        LangError::semantic(
            sel.call.name.span,
            format!(
                "unknown UDF `{}` (registered: {})",
                sel.call.name.node,
                ctx.udfs().names().join(", "),
            ),
        )
    })?;
    let udf = entry.udf.clone();
    if sel.call.args.len() != udf.dim() {
        return Err(LangError::semantic(
            sel.call.span,
            format!(
                "UDF `{}` takes {} argument(s), got {}",
                udf.name(),
                udf.dim(),
                sel.call.args.len(),
            ),
        ));
    }

    // 2. Accuracy: explicit clause or the paper's defaults; λ is always 1%
    //    of the catalog's output-range estimate (§6.1-C). The range comes
    //    from a user-registrable entry, so a poisoned value (negative,
    //    NaN) must surface as a diagnostic, not a panic.
    let lambda = entry.default_lambda();
    let output_range = entry.output_range;
    if !(output_range > 0.0 && output_range.is_finite()) {
        return Err(LangError::semantic(
            sel.call.name.span,
            format!(
                "catalog entry `{}` has invalid output_range {output_range} \
                 (must be finite and positive)",
                udf.name(),
            ),
        ));
    }
    let accuracy = match &sel.accuracy {
        None => AccuracyRequirement::new(0.1, 0.05, lambda, Metric::Discrepancy)
            .expect("paper defaults with a validated lambda"),
        Some(acc) => {
            let metric = match acc.metric.as_ref().map(|m| m.node) {
                Some(MetricName::Ks) => Metric::Ks,
                _ => Metric::Discrepancy,
            };
            AccuracyRequirement::new(acc.eps.node, acc.delta.node, lambda, metric)
                .map_err(|e| accuracy_diagnostic(e, acc.eps.span, acc.delta.span))?
        }
    };

    // 3. The WHERE predicate must filter on the *selected* UDF call — that
    //    is the shape the engine's fused select operators execute. The UDF
    //    name compares case-insensitively, matching catalog lookup.
    let predicate = match &sel.predicate {
        None => None,
        Some(p) => {
            let same_call = p.call.name.node.eq_ignore_ascii_case(&sel.call.name.node)
                && p.call.args == sel.call.args;
            if !same_call {
                return Err(LangError::semantic(
                    p.call.span,
                    format!(
                        "the PR(...) predicate must reference the selected call `{}` \
                         (got `{}`); filtering on a different UDF is not supported",
                        sel.call, p.call,
                    ),
                ));
            }
            Some(
                Predicate::new(p.lo.node, p.hi.node, p.theta.node)
                    .map_err(|e| predicate_diagnostic(e, p))?,
            )
        }
    };

    // 4. Options.
    let workers = match &sel.options.workers {
        None => 1,
        Some(w) if w.node >= 1 && w.node <= 1024 => w.node as usize,
        Some(w) => {
            return Err(LangError::semantic(
                w.span,
                format!("WORKERS must be in 1..=1024, got {}", w.node),
            ));
        }
    };
    let seed = sel.options.seed.as_ref().map_or(0, |s| s.node);
    let strategy_name = sel
        .options
        .strategy
        .as_ref()
        .map_or(StrategyName::Auto, |s| s.node);
    let model_cap = match &sel.options.model_cap {
        None => 0usize,
        Some(c) => {
            if c.node > 1_000_000 {
                return Err(LangError::semantic(
                    c.span,
                    format!("MODEL CAP must be at most 1000000, got {}", c.node),
                ));
            }
            // Caps the model could never bootstrap under are rejected here
            // with a span, rather than as an engine error at run time.
            let min = OlgaproConfig::new(accuracy, output_range)
                .expect("accuracy and output_range validated above")
                .min_model_cap();
            if c.node > 0 && (c.node as usize) < min {
                return Err(LangError::semantic(
                    c.span,
                    format!(
                        "MODEL CAP must be 0 (uncapped) or at least the GP bootstrap \
                         size ({min}), got {}",
                        c.node
                    ),
                ));
            }
            c.node as usize
        }
    };

    // 5. Source-specific lowering.
    let call_text = sel.call.to_string();
    let pred_text = sel.predicate.as_ref().map(|p| {
        format!(
            "Pr[{} ∈ [{:?}, {:?}]] ≥ {:?}",
            p.call, p.lo.node, p.hi.node, p.theta.node
        )
    });
    // PRUNE is a join-operator knob; resolve it here so relation/stream
    // queries reject it with a span instead of silently ignoring it.
    if let (Some(p), false) = (&sel.options.prune, matches!(sel.source, SourceRef::Join(_))) {
        return Err(LangError::semantic(
            p.span,
            "PRUNE applies to `JOIN` queries only (it prunes candidate pairs)",
        ));
    }
    match &sel.source {
        SourceRef::Relation(name) => {
            if let Some(c) = sel.options.batch.as_ref().or(sel.options.limit.as_ref()) {
                return Err(LangError::semantic(
                    c.span,
                    "BATCH and LIMIT apply to `FROM STREAM` queries only",
                ));
            }
            let rel = ctx.relation(&name.node).ok_or_else(|| {
                LangError::semantic(
                    name.span,
                    format!(
                        "unknown relation `{}` (registered: {})",
                        name.node,
                        ctx.relation_names().join(", "),
                    ),
                )
            })?;
            // Columns resolve now so typos fail at bind time with spans.
            for arg in &sel.call.args {
                reject_alias_outside_join(arg)?;
                if rel.schema().index_of(&arg.node.name).is_err() {
                    return Err(LangError::semantic(
                        arg.span,
                        format!(
                            "relation `{}` has no column `{}` (columns: {})",
                            name.node,
                            arg.node.name,
                            rel.schema().columns().join(", "),
                        ),
                    ));
                }
            }
            let strategy = resolve_strategy(strategy_name, &udf);
            // The cap is checked against the *resolved* strategy, so
            // `USING mc MODEL CAP n` and a cap silently dropped by AUTO
            // picking MC fail the same way.
            reject_cap_on_mc(sel, model_cap, strategy == EvalStrategy::Mc)?;
            let scan = LogicalPlan::Scan {
                relation: name.node.clone(),
                rows: rel.len(),
            };
            let logical = build_logical(scan, &call_text, pred_text.as_deref());
            Ok(BoundQuery {
                optimized: logical.clone().optimize(false),
                logical,
                physical: PhysicalPlan::Relation(RelPlan {
                    relation: name.node.clone(),
                    udf,
                    args: sel.call.args.iter().map(|a| a.node.name.clone()).collect(),
                    strategy,
                    accuracy,
                    output_range,
                    predicate,
                    workers,
                    seed,
                    model_cap,
                }),
            })
        }
        SourceRef::Join(join) => bind_join(
            sel,
            join,
            ctx,
            BoundCommon {
                udf,
                accuracy,
                output_range,
                predicate,
                workers,
                seed,
                model_cap,
                strategy_name,
                call_text,
                pred_text,
            },
        ),
        SourceRef::Stream(name) => {
            let dim = ctx.stream_dim(&name.node).ok_or_else(|| {
                LangError::semantic(
                    name.span,
                    format!(
                        "unknown stream source `{}` (registered: {})",
                        name.node,
                        ctx.stream_names().join(", "),
                    ),
                )
            })?;
            for arg in &sel.call.args {
                reject_alias_outside_join(arg)?;
            }
            if udf.dim() != dim {
                return Err(LangError::semantic(
                    sel.call.span,
                    format!(
                        "UDF `{}` is {}-dimensional but stream `{}` yields {}-dimensional tuples",
                        udf.name(),
                        udf.dim(),
                        name.node,
                        dim,
                    ),
                ));
            }
            let strategy = match strategy_name {
                StrategyName::Mc => StreamStrategy::Mc,
                StrategyName::Gp => StreamStrategy::Gp,
                StrategyName::Auto => StreamStrategy::Auto,
            };
            // AUTO stays symbolic on streams (the engine resolves it at
            // subscribe), but it resolves by the same deterministic §6.3
            // rule — apply it here so a cap AUTO would drop is rejected
            // with a span instead of silently ignored.
            let resolves_to_mc = match strategy {
                StreamStrategy::Mc => true,
                StreamStrategy::Gp => false,
                StreamStrategy::Auto => matches!(
                    rule_based_choice(udf.dim(), udf.cost_model().per_call()),
                    HybridChoice::Mc
                ),
            };
            reject_cap_on_mc(sel, model_cap, resolves_to_mc)?;
            let batch = match &sel.options.batch {
                None => 256,
                Some(b) if b.node >= 1 && b.node <= 1_048_576 => b.node as usize,
                Some(b) => {
                    return Err(LangError::semantic(
                        b.span,
                        format!("BATCH must be in 1..=1048576, got {}", b.node),
                    ));
                }
            };
            let scan = LogicalPlan::StreamScan {
                source: name.node.clone(),
                dim,
            };
            let logical = build_logical(scan, &call_text, pred_text.as_deref());
            Ok(BoundQuery {
                optimized: logical.clone().optimize(false),
                logical,
                physical: PhysicalPlan::Stream(StreamPlan {
                    source: name.node.clone(),
                    udf,
                    strategy,
                    accuracy,
                    output_range,
                    predicate,
                    workers,
                    batch,
                    seed,
                    limit: sel.options.limit.as_ref().map(|l| l.node),
                    model_cap,
                }),
            })
        }
    }
}

/// Everything `bind` resolved before source-specific lowering (bundled so
/// the join branch stays a function instead of a 200-line match arm).
struct BoundCommon {
    udf: BlackBoxUdf,
    accuracy: AccuracyRequirement,
    output_range: f64,
    predicate: Option<Predicate>,
    workers: usize,
    seed: u64,
    model_cap: usize,
    strategy_name: StrategyName,
    call_text: String,
    pred_text: Option<String>,
}

/// Resolve `USING mc|gp|auto` to a relational strategy; AUTO applies the
/// paper's §6.3 cost rules. One definition shared by the relation and
/// join binding arms, so both resolve AUTO identically.
fn resolve_strategy(name: StrategyName, udf: &BlackBoxUdf) -> EvalStrategy {
    match name {
        StrategyName::Mc => EvalStrategy::Mc,
        StrategyName::Gp => EvalStrategy::Gp,
        StrategyName::Auto => match rule_based_choice(udf.dim(), udf.cost_model().per_call()) {
            HybridChoice::Mc => EvalStrategy::Mc,
            HybridChoice::Gp | HybridChoice::Calibrating => EvalStrategy::Gp,
        },
    }
}

/// A qualified reference (`a.z`) outside a `JOIN` source has no alias to
/// resolve against.
fn reject_alias_outside_join(arg: &Spanned<AttrRef>) -> Result<()> {
    match &arg.node.alias {
        None => Ok(()),
        Some(alias) => Err(LangError::semantic(
            arg.span,
            format!(
                "qualified reference `{}.{}` requires a `JOIN` source \
                 (aliases name join sides)",
                alias, arg.node.name,
            ),
        )),
    }
}

/// Bind the `FROM rel a JOIN rel b` source form.
fn bind_join(
    sel: &Select,
    join: &JoinSource,
    ctx: &Context,
    common: BoundCommon,
) -> Result<BoundQuery> {
    if let Some(c) = sel.options.batch.as_ref().or(sel.options.limit.as_ref()) {
        return Err(LangError::semantic(
            c.span,
            "BATCH and LIMIT apply to `FROM STREAM` queries only",
        ));
    }
    let lookup = |name: &Spanned<String>| {
        ctx.relation(&name.node).ok_or_else(|| {
            LangError::semantic(
                name.span,
                format!(
                    "unknown relation `{}` (registered: {})",
                    name.node,
                    ctx.relation_names().join(", "),
                ),
            )
        })
    };
    let left = lookup(&join.left)?;
    let right = lookup(&join.right)?;
    if join.left_alias.node == join.right_alias.node {
        return Err(LangError::semantic(
            join.right_alias.span,
            format!(
                "join aliases must be distinct, `{}` is used for both sides",
                join.right_alias.node,
            ),
        ));
    }

    // Resolve a qualified reference to a (side, column) pair with span
    // diagnostics for unknown aliases and columns.
    let resolve = |arg: &Spanned<AttrRef>| -> Result<(Side, String)> {
        let Some(alias) = &arg.node.alias else {
            return Err(LangError::semantic(
                arg.span,
                format!(
                    "reference `{}` must be qualified in a JOIN query \
                     (write `{}.{}` or `{}.{}`)",
                    arg.node.name,
                    join.left_alias.node,
                    arg.node.name,
                    join.right_alias.node,
                    arg.node.name,
                ),
            ));
        };
        let (side, rel, rel_name) = if *alias == join.left_alias.node {
            (Side::Left, left, &join.left.node)
        } else if *alias == join.right_alias.node {
            (Side::Right, right, &join.right.node)
        } else {
            return Err(LangError::semantic(
                arg.span,
                format!(
                    "unknown alias `{alias}` (this join binds `{}` and `{}`)",
                    join.left_alias.node, join.right_alias.node,
                ),
            ));
        };
        if rel.schema().index_of(&arg.node.name).is_err() {
            return Err(LangError::semantic(
                arg.span,
                format!(
                    "relation `{rel_name}` has no column `{}` (columns: {})",
                    arg.node.name,
                    rel.schema().columns().join(", "),
                ),
            ));
        }
        Ok((side, arg.node.name.clone()))
    };
    let args = sel
        .call
        .args
        .iter()
        .map(resolve)
        .collect::<Result<Vec<_>>>()?;
    let on = match &join.on {
        None => None,
        Some(on) => Some((resolve(&on.lhs)?, resolve(&on.rhs)?)),
    };

    let strategy = resolve_strategy(common.strategy_name, &common.udf);
    reject_cap_on_mc(sel, common.model_cap, strategy == EvalStrategy::Mc)?;
    let prune = match &sel.options.prune {
        None => false,
        Some(p) => {
            if strategy == EvalStrategy::Mc {
                return Err(LangError::semantic(
                    p.span,
                    "PRUNE certifies pairs from the GP envelope band, but this query's \
                     strategy resolved to MC (explicitly or via AUTO's §6.3 rules); \
                     use `USING gp` or drop PRUNE",
                ));
            }
            if common.predicate.is_none() {
                return Err(LangError::semantic(
                    p.span,
                    "PRUNE needs a `WHERE PR(...)` predicate to rule pairs against",
                ));
            }
            true
        }
    };

    let scan = |name: &str, rows: usize| LogicalPlan::Scan {
        relation: name.to_string(),
        rows,
    };
    let join_node = LogicalPlan::Join {
        left: Box::new(scan(&join.left.node, left.len())),
        right: Box::new(scan(&join.right.node, right.len())),
        on: join
            .on
            .as_ref()
            .map(|o| format!("{} < {}", o.lhs.node, o.rhs.node)),
    };
    let logical = build_logical(join_node, &common.call_text, common.pred_text.as_deref());
    Ok(BoundQuery {
        optimized: logical.clone().optimize(prune),
        logical,
        physical: PhysicalPlan::Join(JoinPlan {
            left: join.left.node.clone(),
            left_alias: join.left_alias.node.clone(),
            right: join.right.node.clone(),
            right_alias: join.right_alias.node.clone(),
            on,
            udf: common.udf,
            args,
            strategy,
            accuracy: common.accuracy,
            output_range: common.output_range,
            predicate: common.predicate,
            workers: common.workers,
            seed: common.seed,
            model_cap: common.model_cap,
            prune,
        }),
    })
}

fn build_logical(scan: LogicalPlan, call: &str, pred: Option<&str>) -> LogicalPlan {
    let project = LogicalPlan::UdfProject {
        input: Box::new(scan),
        call: call.to_string(),
    };
    match pred {
        None => project,
        Some(p) => LogicalPlan::PrFilter {
            input: Box::new(project),
            predicate: p.to_string(),
        },
    }
}

/// Map an [`AccuracyRequirement`] construction error onto the literal at
/// fault.
fn accuracy_diagnostic(e: udf_core::CoreError, eps: Span, delta: Span) -> LangError {
    match &e {
        udf_core::CoreError::InvalidConfig { what: "eps", value } => LangError::semantic(
            eps,
            format!("accuracy ε must be a finite number in (0, 1), got {value}"),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "delta",
            value,
        } => LangError::semantic(
            delta,
            format!("accuracy δ must be a finite number in (0, 1), got {value}"),
        ),
        _ => LangError::semantic(eps.to(delta), e.to_string()),
    }
}

/// Map a [`Predicate`] construction error onto the literal at fault.
fn predicate_diagnostic(e: udf_core::CoreError, p: &crate::ast::PrFilterExpr) -> LangError {
    match &e {
        udf_core::CoreError::InvalidConfig {
            what: "predicate lower bound",
            value,
        } => LangError::semantic(
            p.lo.span,
            format!("interval bound must be finite, got {value}"),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "predicate upper bound",
            value,
        } => LangError::semantic(
            p.hi.span,
            format!("interval bound must be finite, got {value}"),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "predicate interval",
            ..
        } => LangError::semantic(
            p.lo.span.to(p.hi.span),
            format!(
                "empty interval: lower bound {:?} must be below upper bound {:?}",
                p.lo.node, p.hi.node
            ),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "theta",
            value,
        } => LangError::semantic(
            p.theta.span,
            format!("probability threshold θ must lie in (0, 1), got {value}"),
        ),
        _ => LangError::semantic(p.span, e.to_string()),
    }
}
