//! Logical plans, the predicate-pushdown rewrite, and the binder that
//! lowers UQL onto the execution engine.
//!
//! Compilation is three stages past parsing:
//!
//! 1. **naive logical plan** — the query as written:
//!    `PrFilter(UdfProject(Scan))`;
//! 2. **optimized logical plan** — predicate pushdown fuses the filter into
//!    the UDF operator (`UdfSelect(Scan)`), which is what routes selections
//!    through the engine's envelope-filtering fast path (§5.5): the
//!    predicate is ruled on the GP fast-path bounds *before* any
//!    model-mutating work is scheduled, and MC evaluation early-stops on
//!    the Hoeffding bound (Remark 2.1);
//! 3. **physical plan** — names resolved against the catalog/context,
//!    accuracy and predicate validated into engine types, strategy fixed
//!    (AUTO resolves by the paper's §6.3 rules), ready to execute.

use crate::ast::{
    AttrRef, JoinSource, MetricName, NumExpr, Query, Select, SourceRef, StrategyName, UintExpr,
};
use crate::error::{LangError, Result, Span, Spanned};
use crate::exec::Context;
use std::fmt;
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::filtering::Predicate;
use udf_core::hybrid::{rule_based_choice, HybridChoice};
use udf_core::udf::BlackBoxUdf;
use udf_join::Side;
use udf_query::EvalStrategy;
use udf_stream::StreamStrategy;

/// A logical-plan operator tree (used for `EXPLAIN`; the physical plan
/// carries the bound engine objects).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a finite registered relation.
    Scan {
        /// Relation name.
        relation: String,
        /// Row count at bind time.
        rows: usize,
    },
    /// Scan a registered stream source.
    StreamScan {
        /// Source name.
        source: String,
        /// Tuple dimensionality.
        dim: usize,
    },
    /// Compute a UDF output distribution per tuple (query Q1).
    UdfProject {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Rendered call, e.g. `GalAge(z)`.
        call: String,
    },
    /// Keep tuples with `Pr[g(x) ∈ [lo, hi]] ≥ θ` (query Q2's selection).
    PrFilter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Rendered predicate.
        predicate: String,
    },
    /// The fused projection + filter produced by predicate pushdown: the
    /// engine rules the predicate from fast-path bounds before paying for
    /// full evaluation.
    UdfSelect {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Rendered call.
        call: String,
        /// Rendered predicate.
        predicate: String,
    },
    /// Candidate-pair generation for a θ-join (`FROM rel a JOIN rel b`).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Rendered `ON` filter, when present.
        on: Option<String>,
    },
    /// The fused join operator produced by pushdown: pair generation, the
    /// pair UDF, and the PR predicate execute inside `udf_join` — which
    /// is what enables envelope-based pair pruning (§4.2/§5.5) before any
    /// per-pair inference.
    UdfJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Rendered `ON` filter, when present.
        on: Option<String>,
        /// Rendered pair call.
        call: String,
        /// Rendered predicate, when present.
        predicate: Option<String>,
        /// Whether envelope pair pruning is enabled.
        prune: bool,
    },
}

impl LogicalPlan {
    /// Predicate pushdown: `PrFilter(UdfProject(x))` fuses into
    /// `UdfSelect(x)` so the filter is evaluated inside the UDF operator
    /// (envelope bounds / Hoeffding early stop) instead of after full
    /// materialization. Over a [`Join`](LogicalPlan::Join) input the fused
    /// operator is [`UdfJoin`](LogicalPlan::UdfJoin): the predicate (and
    /// with `PRUNE`, the §4.2 envelope certificate over candidate pairs)
    /// executes inside the join instead of over a materialized cross
    /// product. `prune` marks the produced `UdfJoin` operators.
    pub fn optimize(self, prune: bool) -> LogicalPlan {
        match self {
            LogicalPlan::PrFilter { input, predicate } => match input.optimize(prune) {
                LogicalPlan::UdfProject { input, call } => LogicalPlan::UdfSelect {
                    input,
                    call,
                    predicate,
                },
                // The project already fused into the join operator; push
                // the filter into it too.
                LogicalPlan::UdfJoin {
                    left,
                    right,
                    on,
                    call,
                    predicate: None,
                    prune: p,
                } => LogicalPlan::UdfJoin {
                    left,
                    right,
                    on,
                    call,
                    predicate: Some(predicate),
                    prune: p,
                },
                other => LogicalPlan::PrFilter {
                    input: Box::new(other),
                    predicate,
                },
            },
            LogicalPlan::UdfProject { input, call } => match *input {
                LogicalPlan::Join { left, right, on } => LogicalPlan::UdfJoin {
                    left,
                    right,
                    on,
                    call,
                    predicate: None,
                    prune,
                },
                other => LogicalPlan::UdfProject {
                    input: Box::new(other.optimize(prune)),
                    call,
                },
            },
            leaf => leaf,
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { relation, rows } => {
                writeln!(f, "{pad}Scan {relation} ({rows} rows)")
            }
            LogicalPlan::StreamScan { source, dim } => {
                writeln!(f, "{pad}StreamScan {source} (dim {dim})")
            }
            LogicalPlan::UdfProject { input, call } => {
                writeln!(f, "{pad}UdfProject {call}")?;
                input.fmt_indented(f, depth + 1)
            }
            LogicalPlan::PrFilter { input, predicate } => {
                writeln!(f, "{pad}PrFilter {predicate}")?;
                input.fmt_indented(f, depth + 1)
            }
            LogicalPlan::UdfSelect {
                input,
                call,
                predicate,
            } => {
                writeln!(
                    f,
                    "{pad}UdfSelect {call} {predicate}   [pushdown: fast-path filtering §5.5]"
                )?;
                input.fmt_indented(f, depth + 1)
            }
            LogicalPlan::Join { left, right, on } => {
                match on {
                    Some(on) => writeln!(f, "{pad}Join ON {on}")?,
                    None => writeln!(f, "{pad}Join")?,
                }
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
            LogicalPlan::UdfJoin {
                left,
                right,
                on,
                call,
                predicate,
                prune,
            } => {
                write!(f, "{pad}UdfJoin {call}")?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                if let Some(p) = predicate {
                    write!(f, " {p}")?;
                }
                writeln!(
                    f,
                    "   [pushdown: pair {}filtering §5.5{}]",
                    if *prune { "pruning §4.2 + " } else { "" },
                    if predicate.is_some() {
                        ""
                    } else {
                        " n/a (projection)"
                    },
                )?;
                left.fmt_indented(f, depth + 1)?;
                right.fmt_indented(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A fully bound, executable plan over a finite relation.
#[derive(Debug, Clone)]
pub struct RelPlan {
    /// Registered relation name.
    pub relation: String,
    /// The bound UDF (cloned from the catalog).
    pub udf: BlackBoxUdf,
    /// Argument column names, in call order.
    pub args: Vec<String>,
    /// Resolved evaluation strategy.
    pub strategy: EvalStrategy,
    /// Validated accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Output-range estimate from the catalog (scales Γ and λ).
    pub output_range: f64,
    /// Validated selection predicate, when the query has a WHERE clause.
    pub predicate: Option<Predicate>,
    /// Fast-path worker threads.
    pub workers: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// GP model-size budget (0 = uncapped).
    pub model_cap: usize,
}

/// A fully bound, executable plan over a stream source.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// Registered source name.
    pub source: String,
    /// The bound UDF (cloned from the catalog).
    pub udf: BlackBoxUdf,
    /// Resolved evaluation strategy.
    pub strategy: StreamStrategy,
    /// Validated accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Output-range estimate from the catalog.
    pub output_range: f64,
    /// Validated selection predicate, when present.
    pub predicate: Option<Predicate>,
    /// Fast-path worker threads.
    pub workers: usize,
    /// Micro-batch size.
    pub batch: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Optional tuple limit for the run.
    pub limit: Option<u64>,
    /// GP model-size budget (0 = uncapped).
    pub model_cap: usize,
}

/// A fully bound, executable θ-join plan.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Left registered relation name.
    pub left: String,
    /// Left alias (column prefix).
    pub left_alias: String,
    /// Right registered relation name.
    pub right: String,
    /// Right alias (column prefix).
    pub right_alias: String,
    /// Resolved `ON lhs < rhs` operands, when present.
    pub on: Option<((Side, String), (Side, String))>,
    /// The bound pair UDF (cloned from the catalog).
    pub udf: BlackBoxUdf,
    /// Resolved pair-UDF arguments `(side, column)`, in call order.
    pub args: Vec<(Side, String)>,
    /// Resolved evaluation strategy.
    pub strategy: EvalStrategy,
    /// Validated accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Output-range estimate from the catalog.
    pub output_range: f64,
    /// Validated pair predicate, when the query has a WHERE clause.
    pub predicate: Option<Predicate>,
    /// Fast-path worker threads.
    pub workers: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// GP model-size budget (0 = uncapped).
    pub model_cap: usize,
    /// Envelope-based pair pruning.
    pub prune: bool,
}

/// The bound physical plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// One-shot batch execution over a relation
    /// ([`Executor::select_batch`](udf_query::Executor::select_batch) /
    /// [`project_batch`](udf_query::Executor::project_batch)).
    Relation(RelPlan),
    /// A [`udf_stream::Session`] subscription driven over the source.
    Stream(StreamPlan),
    /// A [`udf_join::JoinExecutor`] run over two registered relations.
    Join(JoinPlan),
}

/// Everything compilation produced for one statement.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The query as written.
    pub logical: LogicalPlan,
    /// After predicate pushdown.
    pub optimized: LogicalPlan,
    /// The executable binding.
    pub physical: PhysicalPlan,
}

impl BoundQuery {
    /// The `EXPLAIN` rendering: both logical plans plus the physical
    /// binding details.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        s.push_str("Logical plan:\n");
        s.push_str(&indent(&self.logical.to_string()));
        if self.optimized != self.logical {
            s.push_str("Optimized plan (predicate pushdown):\n");
            s.push_str(&indent(&self.optimized.to_string()));
        }
        s.push_str("Physical plan:\n");
        match &self.physical {
            PhysicalPlan::Relation(p) => {
                s.push_str(&format!(
                    "  BatchExec relation={} udf={} strategy={:?} workers={} seed={}{}\n",
                    p.relation,
                    p.udf.name(),
                    p.strategy,
                    p.workers,
                    p.seed,
                    render_model_cap(p.model_cap),
                ));
                s.push_str(&format!(
                    "    accuracy: eps={} delta={} lambda={:.4} metric={:?}\n",
                    p.accuracy.eps, p.accuracy.delta, p.accuracy.lambda, p.accuracy.metric,
                ));
                match &p.predicate {
                    Some(pr) => s.push_str(&format!(
                        "    predicate: Pr[y ∈ [{}, {}]] ≥ {} — pushed into the {} fast path\n",
                        pr.lo,
                        pr.hi,
                        pr.theta,
                        match p.strategy {
                            EvalStrategy::Gp => "GP-envelope (§5.5)",
                            EvalStrategy::Mc => "Hoeffding early-stop (Remark 2.1)",
                        },
                    )),
                    None => s.push_str("    predicate: none (pure projection)\n"),
                }
            }
            PhysicalPlan::Join(p) => {
                s.push_str(&format!(
                    "  JoinExec {} {} JOIN {} {} udf={} strategy={:?} workers={} seed={}{}{}\n",
                    p.left,
                    p.left_alias,
                    p.right,
                    p.right_alias,
                    p.udf.name(),
                    p.strategy,
                    p.workers,
                    p.seed,
                    render_model_cap(p.model_cap),
                    if p.prune { " prune" } else { "" },
                ));
                if let Some(((ls, lc), (rs, rc))) = &p.on {
                    s.push_str(&format!(
                        "    on: {}.{lc} < {}.{rc}\n",
                        side_alias(p, *ls),
                        side_alias(p, *rs),
                    ));
                }
                s.push_str(&format!(
                    "    accuracy: eps={} delta={} lambda={:.4} metric={:?}\n",
                    p.accuracy.eps, p.accuracy.delta, p.accuracy.lambda, p.accuracy.metric,
                ));
                match &p.predicate {
                    Some(pr) => s.push_str(&format!(
                        "    predicate: Pr[y ∈ [{}, {}]] ≥ {} — {}\n",
                        pr.lo,
                        pr.hi,
                        pr.theta,
                        match (p.strategy, p.prune) {
                            (EvalStrategy::Gp, true) =>
                                "envelope pair pruning (§4.2) + GP fast-path filter (§5.5)",
                            (EvalStrategy::Gp, false) => "GP fast-path filter (§5.5)",
                            (EvalStrategy::Mc, _) => "Hoeffding early-stop (Remark 2.1)",
                        },
                    )),
                    None => s.push_str("    predicate: none (pure pair projection)\n"),
                }
            }
            PhysicalPlan::Stream(p) => {
                s.push_str(&format!(
                    "  StreamSubscribe source={} udf={} strategy={:?} workers={} batch={} seed={}{}\n",
                    p.source,
                    p.udf.name(),
                    p.strategy,
                    p.workers,
                    p.batch,
                    p.seed,
                    match p.limit {
                        Some(l) => format!("{} limit={l}", render_model_cap(p.model_cap)),
                        None => format!("{} (unbounded)", render_model_cap(p.model_cap)),
                    },
                ));
                s.push_str(&format!(
                    "    accuracy: eps={} delta={} lambda={:.4} metric={:?}\n",
                    p.accuracy.eps, p.accuracy.delta, p.accuracy.lambda, p.accuracy.metric,
                ));
                match &p.predicate {
                    Some(pr) => s.push_str(&format!(
                        "    predicate: Pr[y ∈ [{}, {}]] ≥ {} — online filter in the accept hook\n",
                        pr.lo, pr.hi, pr.theta,
                    )),
                    None => s.push_str("    predicate: none (every tuple is emitted)\n"),
                }
            }
        }
        s
    }
}

fn side_alias(p: &JoinPlan, side: Side) -> &str {
    match side {
        Side::Left => &p.left_alias,
        Side::Right => &p.right_alias,
    }
}

fn render_model_cap(cap: usize) -> String {
    if cap > 0 {
        format!(" model_cap={cap}")
    } else {
        String::new()
    }
}

fn indent(s: &str) -> String {
    s.lines().fold(String::new(), |mut acc, l| {
        acc.push_str("  ");
        acc.push_str(l);
        acc.push('\n');
        acc
    })
}

/// Bind a parsed one-shot query against a [`Context`]. The one-shot path
/// is prepare-then-execute-once: the statement is compiled with
/// [`prepare`] and its (necessarily empty) parameter set is bound
/// immediately, so one-shot and `PREPARE`d statements share every
/// resolution and validation rule.
pub fn bind(query: &Query, ctx: &Context) -> Result<BoundQuery> {
    let prepared = prepare(&query.select, ctx)?;
    if let Some(p) = prepared.params.first() {
        return Err(LangError::semantic(
            p.span,
            format!(
                "positional parameter `${}` is only allowed inside `PREPARE name AS ...` \
                 (bind it with `EXECUTE`)",
                p.index,
            ),
        ));
    }
    let physical = prepared.bind_args(&[], Span::new(0, 0))?;
    Ok(BoundQuery {
        logical: prepared.logical,
        optimized: prepared.optimized,
        physical,
    })
}

/// The value shape a parameter slot accepts, decided by position at
/// prepare time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamType {
    /// Any number: accuracy ε/δ, interval bounds, the threshold θ.
    Number,
    /// A non-negative integer: WORKERS, BATCH, SEED, LIMIT, MODEL CAP.
    Integer,
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamType::Number => write!(f, "number"),
            ParamType::Integer => write!(f, "integer"),
        }
    }
}

/// One distinct `$n` slot of a prepared statement, typed at prepare time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSlot {
    /// 1-based parameter number (`$1` has index 1).
    pub index: usize,
    /// The shape `EXECUTE` arguments are checked against. A parameter
    /// used in both a numeric and an integer position binds as Integer.
    pub ty: ParamType,
    /// Span of one use inside the `PREPARE` text.
    pub span: Span,
    /// The clause the slot feeds (`WORKERS`, `accuracy ε`, ...).
    pub what: &'static str,
}

/// Catalog bindings resolved once at prepare time, per source form.
/// Numeric fields stay in the stored [`Select`] as
/// [`NumExpr`]/[`UintExpr`] slots and are resolved per execution by
/// [`PreparedPlan::bind_args`].
#[derive(Debug, Clone)]
enum SourceTemplate {
    Relation {
        relation: String,
        args: Vec<String>,
        strategy: EvalStrategy,
    },
    Stream {
        source: String,
        strategy: StreamStrategy,
        resolves_to_mc: bool,
    },
    Join {
        left: String,
        left_alias: String,
        right: String,
        right_alias: String,
        on: Option<((Side, String), (Side, String))>,
        args: Vec<(Side, String)>,
        strategy: EvalStrategy,
        prune: bool,
    },
}

/// A statement compiled against the catalog with its numeric slots still
/// open: names, schemas, and the strategy resolve once at prepare time
/// (with span diagnostics), the logical plans are built, and
/// [`bind_args`](Self::bind_args) then turns one set of `EXECUTE`
/// arguments into a [`PhysicalPlan`]. Bad arity or a bad argument at
/// `EXECUTE` is a bind-stage [`LangError`], never a panic.
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    /// The SELECT body as written (parameter slots included).
    select: Select,
    /// Names and strategy resolved against the catalog.
    source: SourceTemplate,
    /// The bound UDF (cloned from the catalog).
    udf: BlackBoxUdf,
    /// λ from the catalog's output-range estimate (§6.1-C).
    lambda: f64,
    /// Output-range estimate, validated finite and positive.
    output_range: f64,
    /// The query as written.
    pub logical: LogicalPlan,
    /// After predicate pushdown.
    pub optimized: LogicalPlan,
    /// Distinct parameter slots, sorted `$1..$n` (always contiguous).
    pub params: Vec<ParamSlot>,
}

impl PreparedPlan {
    /// Number of arguments `EXECUTE` must supply.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// The SELECT body this plan was prepared from.
    pub fn select(&self) -> &Select {
        &self.select
    }

    /// Bind one set of `EXECUTE` arguments: check arity and slot types,
    /// substitute the values, and run the same numeric validation the
    /// one-shot binder applies (accuracy, predicate, option ranges).
    /// `stmt_span` anchors arity diagnostics in the `EXECUTE` text;
    /// per-value diagnostics point at the argument that supplied the
    /// value (or at the literal in the prepared text).
    pub fn bind_args(&self, args: &[Spanned<f64>], stmt_span: Span) -> Result<PhysicalPlan> {
        if args.len() != self.params.len() {
            return Err(LangError::semantic(
                stmt_span,
                format!(
                    "prepared statement takes {} argument(s), got {}",
                    self.params.len(),
                    args.len(),
                ),
            ));
        }
        for (slot, arg) in self.params.iter().zip(args) {
            let v = arg.node;
            let integral = v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v < 2f64.powi(53);
            if slot.ty == ParamType::Integer && !integral {
                return Err(LangError::semantic(
                    arg.span,
                    format!(
                        "parameter `${}` feeds {} and must be a non-negative integer, got {v:?}",
                        slot.index, slot.what,
                    ),
                ));
            }
        }
        let num = |e: &Spanned<NumExpr>| -> Spanned<f64> {
            match e.node {
                NumExpr::Lit(v) => Spanned::new(v, e.span),
                NumExpr::Param(n) => {
                    let a = &args[n - 1];
                    Spanned::new(a.node, a.span)
                }
            }
        };
        let uint = |e: &Spanned<UintExpr>| -> Spanned<u64> {
            match e.node {
                UintExpr::Lit(v) => Spanned::new(v, e.span),
                UintExpr::Param(n) => {
                    let a = &args[n - 1];
                    Spanned::new(a.node as u64, a.span)
                }
            }
        };
        let sel = &self.select;

        // Accuracy: explicit clause or the paper's defaults.
        let accuracy = match &sel.accuracy {
            None => AccuracyRequirement::new(0.1, 0.05, self.lambda, Metric::Discrepancy)
                .expect("paper defaults with a validated lambda"),
            Some(acc) => {
                let metric = match acc.metric.as_ref().map(|m| m.node) {
                    Some(MetricName::Ks) => Metric::Ks,
                    _ => Metric::Discrepancy,
                };
                let eps = num(&acc.eps);
                let delta = num(&acc.delta);
                AccuracyRequirement::new(eps.node, delta.node, self.lambda, metric)
                    .map_err(|e| accuracy_diagnostic(e, eps.span, delta.span))?
            }
        };

        // The WHERE predicate (the same-call shape was checked at prepare
        // time; values are validated here, where parameters have values).
        let predicate = match &sel.predicate {
            None => None,
            Some(p) => {
                let lo = num(&p.lo);
                let hi = num(&p.hi);
                let theta = num(&p.theta);
                Some(
                    Predicate::new(lo.node, hi.node, theta.node)
                        .map_err(|e| predicate_diagnostic(e, lo, hi, theta, p.span))?,
                )
            }
        };

        // Options.
        let workers = match &sel.options.workers {
            None => 1,
            Some(w) => {
                let w = uint(w);
                if (1..=1024).contains(&w.node) {
                    w.node as usize
                } else {
                    return Err(LangError::semantic(
                        w.span,
                        format!("WORKERS must be in 1..=1024, got {}", w.node),
                    ));
                }
            }
        };
        let seed = sel.options.seed.as_ref().map_or(0, |s| uint(s).node);
        let model_cap = match &sel.options.model_cap {
            None => 0usize,
            Some(c) => {
                let c = uint(c);
                if c.node > 1_000_000 {
                    return Err(LangError::semantic(
                        c.span,
                        format!("MODEL CAP must be at most 1000000, got {}", c.node),
                    ));
                }
                // Caps the model could never bootstrap under are rejected
                // here with a span, rather than as an engine error at run
                // time.
                let min = OlgaproConfig::new(accuracy, self.output_range)
                    .expect("accuracy and output_range validated above")
                    .min_model_cap();
                if c.node > 0 && (c.node as usize) < min {
                    return Err(LangError::semantic(
                        c.span,
                        format!(
                            "MODEL CAP must be 0 (uncapped) or at least the GP bootstrap \
                             size ({min}), got {}",
                            c.node
                        ),
                    ));
                }
                // A nonzero cap on a query whose strategy resolved to MC
                // would be silently dropped (MC has no model) — reject it,
                // whether the MC choice was explicit (`USING mc`) or made
                // by AUTO.
                let is_mc = match &self.source {
                    SourceTemplate::Relation { strategy, .. }
                    | SourceTemplate::Join { strategy, .. } => *strategy == EvalStrategy::Mc,
                    SourceTemplate::Stream { resolves_to_mc, .. } => *resolves_to_mc,
                };
                if c.node > 0 && is_mc {
                    return Err(LangError::semantic(
                        c.span,
                        "MODEL CAP bounds the GP model, but this query's strategy resolved \
                         to MC (explicitly or via AUTO's §6.3 rules); use `USING gp` or \
                         drop the cap",
                    ));
                }
                c.node as usize
            }
        };

        match &self.source {
            SourceTemplate::Relation {
                relation,
                args: cols,
                strategy,
            } => Ok(PhysicalPlan::Relation(RelPlan {
                relation: relation.clone(),
                udf: self.udf.clone(),
                args: cols.clone(),
                strategy: *strategy,
                accuracy,
                output_range: self.output_range,
                predicate,
                workers,
                seed,
                model_cap,
            })),
            SourceTemplate::Stream {
                source, strategy, ..
            } => {
                let batch = match &sel.options.batch {
                    None => 256,
                    Some(b) => {
                        let b = uint(b);
                        if (1..=1_048_576).contains(&b.node) {
                            b.node as usize
                        } else {
                            return Err(LangError::semantic(
                                b.span,
                                format!("BATCH must be in 1..=1048576, got {}", b.node),
                            ));
                        }
                    }
                };
                Ok(PhysicalPlan::Stream(StreamPlan {
                    source: source.clone(),
                    udf: self.udf.clone(),
                    strategy: *strategy,
                    accuracy,
                    output_range: self.output_range,
                    predicate,
                    workers,
                    batch,
                    seed,
                    limit: sel.options.limit.as_ref().map(|l| uint(l).node),
                    model_cap,
                }))
            }
            SourceTemplate::Join {
                left,
                left_alias,
                right,
                right_alias,
                on,
                args: pair_args,
                strategy,
                prune,
            } => Ok(PhysicalPlan::Join(JoinPlan {
                left: left.clone(),
                left_alias: left_alias.clone(),
                right: right.clone(),
                right_alias: right_alias.clone(),
                on: on.clone(),
                udf: self.udf.clone(),
                args: pair_args.clone(),
                strategy: *strategy,
                accuracy,
                output_range: self.output_range,
                predicate,
                workers,
                seed,
                model_cap,
                prune: *prune,
            })),
        }
    }
}

/// Compile a SELECT body against a [`Context`]: resolve the UDF and the
/// source against the catalog, fix the strategy (AUTO resolves by the
/// paper's §6.3 rules), build the logical plans, and collect the `$n`
/// parameter slots with their types. Every name/shape/structure error
/// surfaces here, at prepare time; numeric validation runs per execution
/// in [`PreparedPlan::bind_args`].
pub fn prepare(sel: &Select, ctx: &Context) -> Result<PreparedPlan> {
    // 1. The projected UDF must exist in the catalog.
    let entry = ctx.udfs().get(&sel.call.name.node).ok_or_else(|| {
        LangError::semantic(
            sel.call.name.span,
            format!(
                "unknown UDF `{}` (registered: {})",
                sel.call.name.node,
                ctx.udfs().names().join(", "),
            ),
        )
    })?;
    let udf = entry.udf.clone();
    if sel.call.args.len() != udf.dim() {
        return Err(LangError::semantic(
            sel.call.span,
            format!(
                "UDF `{}` takes {} argument(s), got {}",
                udf.name(),
                udf.dim(),
                sel.call.args.len(),
            ),
        ));
    }

    // 2. λ is always 1% of the catalog's output-range estimate (§6.1-C).
    //    The range comes from a user-registrable entry, so a poisoned
    //    value (negative, NaN) must surface as a diagnostic, not a panic.
    let lambda = entry.default_lambda();
    let output_range = entry.output_range;
    if !(output_range > 0.0 && output_range.is_finite()) {
        return Err(LangError::semantic(
            sel.call.name.span,
            format!(
                "catalog entry `{}` has invalid output_range {output_range} \
                 (must be finite and positive)",
                udf.name(),
            ),
        ));
    }

    // 3. The WHERE predicate must filter on the *selected* UDF call — that
    //    is the shape the engine's fused select operators execute. The UDF
    //    name compares case-insensitively, matching catalog lookup.
    if let Some(p) = &sel.predicate {
        let same_call = p.call.name.node.eq_ignore_ascii_case(&sel.call.name.node)
            && p.call.args == sel.call.args;
        if !same_call {
            return Err(LangError::semantic(
                p.call.span,
                format!(
                    "the PR(...) predicate must reference the selected call `{}` \
                     (got `{}`); filtering on a different UDF is not supported",
                    sel.call, p.call,
                ),
            ));
        }
    }

    // 4. Source-specific resolution. The strategy fixes here (it depends
    //    only on the UDF), so PRUNE/cap checks can rule on it.
    let strategy_name = sel
        .options
        .strategy
        .as_ref()
        .map_or(StrategyName::Auto, |s| s.node);
    let call_text = sel.call.to_string();
    let pred_text = sel.predicate.as_ref().map(|p| {
        format!(
            "Pr[{} ∈ [{}, {}]] ≥ {}",
            p.call, p.lo.node, p.hi.node, p.theta.node
        )
    });
    // PRUNE is a join-operator knob; resolve it here so relation/stream
    // queries reject it with a span instead of silently ignoring it.
    if let (Some(p), false) = (&sel.options.prune, matches!(sel.source, SourceRef::Join(_))) {
        return Err(LangError::semantic(
            p.span,
            "PRUNE applies to `JOIN` queries only (it prunes candidate pairs)",
        ));
    }
    let (source, scan, prune) = match &sel.source {
        SourceRef::Relation(name) => {
            if let Some(c) = sel.options.batch.as_ref().or(sel.options.limit.as_ref()) {
                return Err(LangError::semantic(
                    c.span,
                    "BATCH and LIMIT apply to `FROM STREAM` queries only",
                ));
            }
            let rel = ctx.relation(&name.node).ok_or_else(|| {
                LangError::semantic(
                    name.span,
                    format!(
                        "unknown relation `{}` (registered: {})",
                        name.node,
                        ctx.relation_names().join(", "),
                    ),
                )
            })?;
            // Columns resolve now so typos fail at bind time with spans.
            for arg in &sel.call.args {
                reject_alias_outside_join(arg)?;
                if rel.schema().index_of(&arg.node.name).is_err() {
                    return Err(LangError::semantic(
                        arg.span,
                        format!(
                            "relation `{}` has no column `{}` (columns: {})",
                            name.node,
                            arg.node.name,
                            rel.schema().columns().join(", "),
                        ),
                    ));
                }
            }
            let strategy = resolve_strategy(strategy_name, &udf);
            let scan = LogicalPlan::Scan {
                relation: name.node.clone(),
                rows: rel.len(),
            };
            (
                SourceTemplate::Relation {
                    relation: name.node.clone(),
                    args: sel.call.args.iter().map(|a| a.node.name.clone()).collect(),
                    strategy,
                },
                scan,
                false,
            )
        }
        SourceRef::Join(join) => prepare_join(sel, join, &udf, strategy_name, ctx)?,
        SourceRef::Stream(name) => {
            let dim = ctx.stream_dim(&name.node).ok_or_else(|| {
                LangError::semantic(
                    name.span,
                    format!(
                        "unknown stream source `{}` (registered: {})",
                        name.node,
                        ctx.stream_names().join(", "),
                    ),
                )
            })?;
            for arg in &sel.call.args {
                reject_alias_outside_join(arg)?;
            }
            if udf.dim() != dim {
                return Err(LangError::semantic(
                    sel.call.span,
                    format!(
                        "UDF `{}` is {}-dimensional but stream `{}` yields {}-dimensional tuples",
                        udf.name(),
                        udf.dim(),
                        name.node,
                        dim,
                    ),
                ));
            }
            let strategy = match strategy_name {
                StrategyName::Mc => StreamStrategy::Mc,
                StrategyName::Gp => StreamStrategy::Gp,
                StrategyName::Auto => StreamStrategy::Auto,
            };
            // AUTO stays symbolic on streams (the engine resolves it at
            // subscribe), but it resolves by the same deterministic §6.3
            // rule — record the outcome so a cap AUTO would drop is
            // rejected with a span instead of silently ignored.
            let resolves_to_mc = match strategy {
                StreamStrategy::Mc => true,
                StreamStrategy::Gp => false,
                StreamStrategy::Auto => matches!(
                    rule_based_choice(udf.dim(), udf.cost_model().per_call()),
                    HybridChoice::Mc
                ),
            };
            let scan = LogicalPlan::StreamScan {
                source: name.node.clone(),
                dim,
            };
            (
                SourceTemplate::Stream {
                    source: name.node.clone(),
                    strategy,
                    resolves_to_mc,
                },
                scan,
                false,
            )
        }
    };
    let logical = build_logical(scan, &call_text, pred_text.as_deref());
    let optimized = logical.clone().optimize(prune);
    let params = collect_params(sel)?;
    Ok(PreparedPlan {
        select: sel.clone(),
        source,
        udf,
        lambda,
        output_range,
        logical,
        optimized,
        params,
    })
}

/// Record one `$n` use; a later use of the same index upgrades the slot
/// to Integer (the stricter shape) but never downgrades it.
fn add_slot(
    slots: &mut Vec<ParamSlot>,
    index: usize,
    ty: ParamType,
    span: Span,
    what: &'static str,
) {
    if let Some(s) = slots.iter_mut().find(|s| s.index == index) {
        if ty == ParamType::Integer && s.ty == ParamType::Number {
            s.ty = ty;
            s.span = span;
            s.what = what;
        }
    } else {
        slots.push(ParamSlot {
            index,
            ty,
            span,
            what,
        });
    }
}

/// Walk every numeric position of a SELECT body and collect its distinct
/// `$n` slots, typed by position. Indices must be contiguous from `$1`.
fn collect_params(sel: &Select) -> Result<Vec<ParamSlot>> {
    let mut slots = Vec::new();
    if let Some(acc) = &sel.accuracy {
        for (e, what) in [(&acc.eps, "accuracy ε"), (&acc.delta, "accuracy δ")] {
            if let NumExpr::Param(n) = e.node {
                add_slot(&mut slots, n, ParamType::Number, e.span, what);
            }
        }
    }
    if let Some(p) = &sel.predicate {
        for (e, what) in [
            (&p.lo, "the interval lower bound"),
            (&p.hi, "the interval upper bound"),
            (&p.theta, "the threshold θ"),
        ] {
            if let NumExpr::Param(n) = e.node {
                add_slot(&mut slots, n, ParamType::Number, e.span, what);
            }
        }
    }
    for (e, what) in [
        (&sel.options.workers, "WORKERS"),
        (&sel.options.batch, "BATCH"),
        (&sel.options.seed, "SEED"),
        (&sel.options.limit, "LIMIT"),
        (&sel.options.model_cap, "MODEL CAP"),
    ] {
        if let Some(e) = e {
            if let UintExpr::Param(n) = e.node {
                add_slot(&mut slots, n, ParamType::Integer, e.span, what);
            }
        }
    }
    slots.sort_by_key(|s| s.index);
    for (i, s) in slots.iter().enumerate() {
        if s.index != i + 1 {
            return Err(LangError::semantic(
                s.span,
                format!(
                    "parameters must be numbered contiguously from $1 \
                     (`${}` is used but `${}` is not)",
                    s.index,
                    i + 1,
                ),
            ));
        }
    }
    Ok(slots)
}

/// Resolve `USING mc|gp|auto` to a relational strategy; AUTO applies the
/// paper's §6.3 cost rules. One definition shared by the relation and
/// join binding arms, so both resolve AUTO identically.
fn resolve_strategy(name: StrategyName, udf: &BlackBoxUdf) -> EvalStrategy {
    match name {
        StrategyName::Mc => EvalStrategy::Mc,
        StrategyName::Gp => EvalStrategy::Gp,
        StrategyName::Auto => match rule_based_choice(udf.dim(), udf.cost_model().per_call()) {
            HybridChoice::Mc => EvalStrategy::Mc,
            HybridChoice::Gp | HybridChoice::Calibrating => EvalStrategy::Gp,
        },
    }
}

/// A qualified reference (`a.z`) outside a `JOIN` source has no alias to
/// resolve against.
fn reject_alias_outside_join(arg: &Spanned<AttrRef>) -> Result<()> {
    match &arg.node.alias {
        None => Ok(()),
        Some(alias) => Err(LangError::semantic(
            arg.span,
            format!(
                "qualified reference `{}.{}` requires a `JOIN` source \
                 (aliases name join sides)",
                alias, arg.node.name,
            ),
        )),
    }
}

/// Resolve the `FROM rel a JOIN rel b` source form against the catalog.
fn prepare_join(
    sel: &Select,
    join: &JoinSource,
    udf: &BlackBoxUdf,
    strategy_name: StrategyName,
    ctx: &Context,
) -> Result<(SourceTemplate, LogicalPlan, bool)> {
    if let Some(c) = sel.options.batch.as_ref().or(sel.options.limit.as_ref()) {
        return Err(LangError::semantic(
            c.span,
            "BATCH and LIMIT apply to `FROM STREAM` queries only",
        ));
    }
    let lookup = |name: &Spanned<String>| {
        ctx.relation(&name.node).ok_or_else(|| {
            LangError::semantic(
                name.span,
                format!(
                    "unknown relation `{}` (registered: {})",
                    name.node,
                    ctx.relation_names().join(", "),
                ),
            )
        })
    };
    let left = lookup(&join.left)?;
    let right = lookup(&join.right)?;
    if join.left_alias.node == join.right_alias.node {
        return Err(LangError::semantic(
            join.right_alias.span,
            format!(
                "join aliases must be distinct, `{}` is used for both sides",
                join.right_alias.node,
            ),
        ));
    }

    // Resolve a qualified reference to a (side, column) pair with span
    // diagnostics for unknown aliases and columns.
    let resolve = |arg: &Spanned<AttrRef>| -> Result<(Side, String)> {
        let Some(alias) = &arg.node.alias else {
            return Err(LangError::semantic(
                arg.span,
                format!(
                    "reference `{}` must be qualified in a JOIN query \
                     (write `{}.{}` or `{}.{}`)",
                    arg.node.name,
                    join.left_alias.node,
                    arg.node.name,
                    join.right_alias.node,
                    arg.node.name,
                ),
            ));
        };
        let (side, rel, rel_name) = if *alias == join.left_alias.node {
            (Side::Left, left, &join.left.node)
        } else if *alias == join.right_alias.node {
            (Side::Right, right, &join.right.node)
        } else {
            return Err(LangError::semantic(
                arg.span,
                format!(
                    "unknown alias `{alias}` (this join binds `{}` and `{}`)",
                    join.left_alias.node, join.right_alias.node,
                ),
            ));
        };
        if rel.schema().index_of(&arg.node.name).is_err() {
            return Err(LangError::semantic(
                arg.span,
                format!(
                    "relation `{rel_name}` has no column `{}` (columns: {})",
                    arg.node.name,
                    rel.schema().columns().join(", "),
                ),
            ));
        }
        Ok((side, arg.node.name.clone()))
    };
    let args = sel
        .call
        .args
        .iter()
        .map(resolve)
        .collect::<Result<Vec<_>>>()?;
    let on = match &join.on {
        None => None,
        Some(on) => Some((resolve(&on.lhs)?, resolve(&on.rhs)?)),
    };

    let strategy = resolve_strategy(strategy_name, udf);
    let prune = match &sel.options.prune {
        None => false,
        Some(p) => {
            if strategy == EvalStrategy::Mc {
                return Err(LangError::semantic(
                    p.span,
                    "PRUNE certifies pairs from the GP envelope band, but this query's \
                     strategy resolved to MC (explicitly or via AUTO's §6.3 rules); \
                     use `USING gp` or drop PRUNE",
                ));
            }
            if sel.predicate.is_none() {
                return Err(LangError::semantic(
                    p.span,
                    "PRUNE needs a `WHERE PR(...)` predicate to rule pairs against",
                ));
            }
            true
        }
    };

    let scan = |name: &str, rows: usize| LogicalPlan::Scan {
        relation: name.to_string(),
        rows,
    };
    let join_node = LogicalPlan::Join {
        left: Box::new(scan(&join.left.node, left.len())),
        right: Box::new(scan(&join.right.node, right.len())),
        on: join
            .on
            .as_ref()
            .map(|o| format!("{} < {}", o.lhs.node, o.rhs.node)),
    };
    Ok((
        SourceTemplate::Join {
            left: join.left.node.clone(),
            left_alias: join.left_alias.node.clone(),
            right: join.right.node.clone(),
            right_alias: join.right_alias.node.clone(),
            on,
            args,
            strategy,
            prune,
        },
        join_node,
        prune,
    ))
}

fn build_logical(scan: LogicalPlan, call: &str, pred: Option<&str>) -> LogicalPlan {
    let project = LogicalPlan::UdfProject {
        input: Box::new(scan),
        call: call.to_string(),
    };
    match pred {
        None => project,
        Some(p) => LogicalPlan::PrFilter {
            input: Box::new(project),
            predicate: p.to_string(),
        },
    }
}

/// Map an [`AccuracyRequirement`] construction error onto the literal at
/// fault.
fn accuracy_diagnostic(e: udf_core::CoreError, eps: Span, delta: Span) -> LangError {
    match &e {
        udf_core::CoreError::InvalidConfig { what: "eps", value } => LangError::semantic(
            eps,
            format!("accuracy ε must be a finite number in (0, 1), got {value}"),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "delta",
            value,
        } => LangError::semantic(
            delta,
            format!("accuracy δ must be a finite number in (0, 1), got {value}"),
        ),
        _ => LangError::semantic(eps.to(delta), e.to_string()),
    }
}

/// Map a [`Predicate`] construction error onto the value at fault — the
/// literal in the statement text, or the `EXECUTE` argument that supplied
/// the parameter.
fn predicate_diagnostic(
    e: udf_core::CoreError,
    lo: Spanned<f64>,
    hi: Spanned<f64>,
    theta: Spanned<f64>,
    whole: Span,
) -> LangError {
    match &e {
        udf_core::CoreError::InvalidConfig {
            what: "predicate lower bound",
            value,
        } => LangError::semantic(
            lo.span,
            format!("interval bound must be finite, got {value}"),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "predicate upper bound",
            value,
        } => LangError::semantic(
            hi.span,
            format!("interval bound must be finite, got {value}"),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "predicate interval",
            ..
        } => LangError::semantic(
            lo.span.to(hi.span),
            format!(
                "empty interval: lower bound {:?} must be below upper bound {:?}",
                lo.node, hi.node
            ),
        ),
        udf_core::CoreError::InvalidConfig {
            what: "theta",
            value,
        } => LangError::semantic(
            theta.span,
            format!("probability threshold θ must lie in (0, 1), got {value}"),
        ),
        _ => LangError::semantic(whole, e.to_string()),
    }
}
