//! Query execution: a [`Context`] of registered objects plus the
//! dispatcher that runs bound plans on the engine.
//!
//! Relation queries run as one batch on a [`BatchScheduler`] worker pool
//! through
//! [`Executor::select_batch`] / [`Executor::project_batch`] — byte-identical
//! results for any `WORKERS` count. `JOIN` queries lower onto a
//! [`udf_join::JoinExecutor`] over the same pool (warmup + main rounds,
//! optional envelope pair pruning — byte-identical to the hand-built
//! `cross_join` construction). `FROM STREAM` queries subscribe a
//! [`QuerySpec`] on a fresh [`Session`] and drive it over the registered
//! source, so a UQL stream query produces exactly the determinism digest of
//! the equivalent hand-built subscription.

use crate::ast::{ExplainMode, Statement};
use crate::error::{LangError, Result, Spanned};
use crate::parser::{parse, parse_statement};
use crate::plan::{
    bind, prepare, BoundQuery, JoinPlan, PhysicalPlan, PreparedPlan, RelPlan, StreamPlan,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use udf_core::config::ModelBudget;
use udf_core::sched::{BatchScheduler, SchedMetrics};
use udf_join::{
    JoinExecutor, JoinSpec, JoinStats, JoinedPair, OnCondition, WarmJoinState, WarmMode,
};
use udf_obs::{
    MetricsRegistry, Monitor, Snapshot, TraceBuffer, TraceEvent, TracePhase, TraceSummary,
};
use udf_query::{Executor, ProjectedTuple, QueryStats, Relation, UdfCall};
use udf_stream::{
    EngineConfig, EngineStats, HealthMonitor, KeptSummary, QuerySpec, Session, Source, StreamStats,
};
use udf_workloads::UdfCatalog;

/// A factory producing fresh instances of a registered stream source. Each
/// query run gets its own source, so repeated runs replay the same tuple
/// sequence (sources own their RNG seed).
pub type SourceFactory = Box<dyn Fn() -> Box<dyn Source + Send>>;

/// Everything a UQL statement can reference by name: the UDF catalog,
/// finite relations, and stream-source factories. Relation queries reuse
/// one persistent [`BatchScheduler`] worker pool per `WORKERS` value
/// across statements, so repeated queries pay channel traffic instead of
/// thread spawns (the point of the pool — see `udf_core::sched`).
pub struct Context {
    udfs: UdfCatalog,
    relations: BTreeMap<String, Relation>,
    streams: BTreeMap<String, (usize, SourceFactory)>,
    schedulers: BTreeMap<usize, BatchScheduler>,
    metrics: MetricsRegistry,
    trace: TraceBuffer,
    monitor: Monitor,
    prepared: BTreeMap<String, PreparedEntry>,
    catalog_epoch: u64,
}

/// A cached prepared statement: the canonical body text, the compiled
/// [`PreparedPlan`], and the warm execution state `EXECUTE` reuses.
#[derive(Debug, Clone)]
pub struct PreparedEntry {
    text: String,
    plan: PreparedPlan,
    /// [`Context::catalog_epoch`] at prepare time; a registration since
    /// then forces a transparent re-prepare at the next `EXECUTE`.
    epoch: u64,
    execs: u64,
    warm: Option<WarmSlot>,
}

impl PreparedEntry {
    /// The canonical `SELECT` body the plan was prepared from.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The compiled plan.
    pub fn plan(&self) -> &PreparedPlan {
        &self.plan
    }

    /// Number of arguments `EXECUTE` must supply.
    pub fn arity(&self) -> usize {
        self.plan.arity()
    }

    /// How many times the plan has executed.
    pub fn executions(&self) -> u64 {
        self.execs
    }

    /// Whether a warm slot (bound plan + any captured join model state)
    /// is resident for the most recent argument set.
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }
}

/// The per-plan warm state: the physical plan bound for one argument set
/// (keyed by the exact bit patterns, so a re-`EXECUTE` with the same
/// arguments skips `bind_args` entirely) and, for joins, the post-warmup
/// [`WarmJoinState`] snapshot that lets re-executions restore the warmed
/// `GpModel` instead of paying a second warmup.
#[derive(Debug, Clone)]
struct WarmSlot {
    args_key: Vec<u64>,
    physical: PhysicalPlan,
    join_warm: Option<WarmJoinState>,
}

/// Ring lanes in the context's [`TraceBuffer`] — one per worker slot, up
/// to this many (higher worker ids wrap).
const TRACE_LANES: usize = 8;

/// Per-lane event capacity of the context's [`TraceBuffer`] (drop-oldest
/// beyond it).
const TRACE_CAPACITY: usize = 4096;

impl Context {
    /// An empty context (no UDFs, relations, or streams). Metrics are on
    /// by default — the handles are cheap enough to leave enabled (see
    /// `udf_obs`), and [`Context::metrics`]`.set_enabled(false)` turns
    /// every one of them into a no-op.
    pub fn new() -> Self {
        let metrics = MetricsRegistry::new();
        let monitor = Monitor::new(&metrics);
        for rule in Monitor::standard_rules() {
            monitor.add_rule(rule);
        }
        Context {
            udfs: UdfCatalog::new(),
            relations: BTreeMap::new(),
            streams: BTreeMap::new(),
            schedulers: BTreeMap::new(),
            metrics,
            trace: TraceBuffer::new(TRACE_LANES, TRACE_CAPACITY),
            monitor,
            prepared: BTreeMap::new(),
            catalog_epoch: 0,
        }
    }

    /// A context pre-loaded with [`UdfCatalog::standard`] (`F1`–`F4`,
    /// `GalAge`, `ComoveVol`, `AngDist`).
    pub fn standard() -> Self {
        Context {
            udfs: UdfCatalog::standard(),
            ..Context::new()
        }
    }

    /// The UDF catalog.
    pub fn udfs(&self) -> &UdfCatalog {
        &self.udfs
    }

    /// Mutable access to the UDF catalog (for registering custom UDFs).
    /// Taking it bumps the catalog epoch: prepared plans resolved names
    /// against the old catalog, so their next `EXECUTE` re-prepares.
    pub fn udfs_mut(&mut self) -> &mut UdfCatalog {
        self.catalog_epoch += 1;
        &mut self.udfs
    }

    /// Register (or replace) a named finite relation.
    pub fn register_relation(&mut self, name: impl Into<String>, rel: Relation) {
        self.catalog_epoch += 1;
        self.relations.insert(name.into(), rel);
    }

    /// Look up a registered relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Registered relation names, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Register (or replace) a named stream source: `dim` is the tuple
    /// dimensionality every instance yields; `factory` builds a fresh
    /// source per query run.
    pub fn register_stream(
        &mut self,
        name: impl Into<String>,
        dim: usize,
        factory: impl Fn() -> Box<dyn Source + Send> + 'static,
    ) {
        self.catalog_epoch += 1;
        self.streams.insert(name.into(), (dim, Box::new(factory)));
    }

    /// Tuple dimensionality of a registered stream source.
    pub fn stream_dim(&self, name: &str) -> Option<usize> {
        self.streams.get(name).map(|(d, _)| *d)
    }

    /// Registered stream-source names, sorted.
    pub fn stream_names(&self) -> Vec<&str> {
        self.streams.keys().map(String::as_str).collect()
    }

    /// The context's metrics registry. Every statement run through this
    /// context records into it: `uql.*` phase timers, `sched.*` scheduler
    /// counters, `olgapro.*` model handles, `stream.*` engine timers, and
    /// `join.*` phase timers. Metrics never perturb results — digests are
    /// byte-identical with the registry enabled or disabled.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The context's structured trace buffer. Every statement run through
    /// this context emits typed events into it: `uql` phase brackets,
    /// scheduler reroutes with their reasons, model-lifecycle events
    /// (grow/evict/cap), and join certificate misses. On by default, like
    /// the metrics registry — a disabled buffer costs one relaxed load per
    /// emission site — and just as output-blind: digests are byte-identical
    /// with tracing on or off. `EXPLAIN TRACE` renders the per-statement
    /// window; [`TraceBuffer::to_chrome_json`] exports the whole ring for
    /// chrome://tracing.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The context's registry-wide monitor: bounded per-metric
    /// time-series rings plus the [`Monitor::standard_rules`] alert set,
    /// pre-wired over [`Context::metrics`]. Nothing ticks it implicitly —
    /// call [`Monitor::tick`] at whatever cadence suits the host (the
    /// REPL ticks once per executed statement), or lease a background
    /// [`udf_obs::Sampler`] via [`Monitor::start`]. Same observability
    /// contract as the registry itself: sampling only reads snapshots, so
    /// digests are byte-identical with the monitor running or idle.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Parse, bind, and (unless `EXPLAIN`) execute one UQL statement —
    /// including the prepared-statement verbs (`PREPARE` / `EXECUTE` /
    /// `DEALLOCATE`).
    pub fn run(&mut self, src: &str) -> Result<QueryOutput> {
        run_uql(src, self)
    }

    /// Parse and bind a one-shot query without executing (what `EXPLAIN`
    /// uses).
    pub fn compile(&self, src: &str) -> Result<BoundQuery> {
        let query = parse(src)?;
        bind(&query, self)
    }

    /// The plan cache: prepared statements by name, sorted. The REPL's
    /// `\prepared` listing renders this.
    pub fn prepared(&self) -> &BTreeMap<String, PreparedEntry> {
        &self.prepared
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

/// What a statement produced.
#[derive(Debug)]
pub enum QueryOutput {
    /// `EXPLAIN`: the rendered plan, nothing executed.
    Plan(String),
    /// A relation query's result set.
    Rows(RowsOutput),
    /// A θ-join query's result set.
    Join(JoinRowsOutput),
    /// A stream query's run summary.
    Stream(StreamOutput),
    /// `PREPARE`: the plan was compiled and cached under `name`.
    Prepared {
        /// The cache key `EXECUTE` runs it by.
        name: String,
        /// Number of `$n` parameters the plan takes.
        arity: usize,
    },
    /// `DEALLOCATE`: the plan and its warm state were dropped.
    Deallocated {
        /// The dropped cache key.
        name: String,
    },
}

/// Result of a `JOIN` query.
#[derive(Debug)]
pub struct JoinRowsOutput {
    /// Kept pairs, in pair order.
    pub rows: Vec<JoinedPair>,
    /// The joined relation of kept pairs (prefixed schema).
    pub relation: Relation,
    /// Join-level counters (incl. `pairs_pruned`).
    pub stats: JoinStats,
    /// The inner pair executor's counters.
    pub query_stats: QueryStats,
    /// Wall-clock execution time (excluding parse/bind).
    pub elapsed: Duration,
    /// The rendered plan that ran.
    pub plan: String,
}

/// Result of a one-shot relation query.
#[derive(Debug)]
pub struct RowsOutput {
    /// Kept rows, in source-tuple order.
    pub rows: Vec<ProjectedTuple>,
    /// Executor counters.
    pub stats: QueryStats,
    /// Wall-clock execution time (excluding parse/bind).
    pub elapsed: Duration,
    /// The rendered plan that ran.
    pub plan: String,
}

/// Result of a bounded stream query.
#[derive(Debug)]
pub struct StreamOutput {
    /// Per-query stream statistics.
    pub stats: StreamStats,
    /// Determinism digest over every emitted distribution and decision.
    pub digest: u64,
    /// The subscription's most recent emitted tuples.
    pub recent: Vec<KeptSummary>,
    /// Engine-level counters for the run.
    pub engine: EngineStats,
    /// The health monitor's rendered trend line, when it sampled at least
    /// once during the run.
    pub health: Option<String>,
    /// The rendered plan that ran.
    pub plan: String,
}

impl QueryOutput {
    /// Human-readable report (what the REPL prints).
    pub fn report(&self) -> String {
        match self {
            QueryOutput::Plan(p) => p.clone(),
            QueryOutput::Rows(r) => {
                let counters = udf_obs::fmt::KvLine::new()
                    .field("in", r.stats.tuples_in)
                    .field("out", r.stats.tuples_out)
                    .field("fast", r.stats.fast_path)
                    .field("slow", r.stats.slow_path)
                    .field("udf_calls", r.stats.udf_calls)
                    .field("cap_hits", r.stats.cap_hits)
                    .finish();
                let mut s = format!(
                    "{} row(s) in {:.2?}  [{counters}]\n",
                    r.rows.len(),
                    r.elapsed
                );
                const SHOW: usize = 10;
                for row in r.rows.iter().take(SHOW) {
                    s.push_str(&format!(
                        "  #{:<6} median={:<12.6} err≤{:<8.4} tep={:.3}\n",
                        row.source,
                        row.output.ecdf.quantile(0.5),
                        row.output.error_bound,
                        row.tep,
                    ));
                }
                if r.rows.len() > SHOW {
                    s.push_str(&format!("  … {} more\n", r.rows.len() - SHOW));
                }
                s
            }
            QueryOutput::Join(r) => {
                let mut s = format!(
                    "{} pair(s) in {:.2?}  [{}]\n",
                    r.rows.len(),
                    r.elapsed,
                    r.stats,
                );
                const SHOW: usize = 10;
                for row in r.rows.iter().take(SHOW) {
                    s.push_str(&format!(
                        "  #({:<4},{:<4}) median={:<12.6} err≤{:<8.4} tep={:.3}\n",
                        row.left,
                        row.right,
                        row.output.ecdf.quantile(0.5),
                        row.output.error_bound,
                        row.tep,
                    ));
                }
                if r.rows.len() > SHOW {
                    s.push_str(&format!("  … {} more\n", r.rows.len() - SHOW));
                }
                s
            }
            QueryOutput::Stream(o) => format!(
                "stream run: {} tuple(s), {} batch(es) in {:.2?}\n  {}\n  digest=0x{:016x}\n",
                o.engine.tuples, o.engine.batches, o.engine.elapsed, o.stats, o.digest,
            ),
            QueryOutput::Prepared { name, arity } => {
                format!("prepared `{name}` ({arity} parameter(s))\n")
            }
            QueryOutput::Deallocated { name } => format!("deallocated `{name}`\n"),
        }
    }
}

/// The one-shot facade: parse, bind, and execute one UQL statement
/// against `ctx`.
///
/// Plain queries run the full `Parse → Bind → Exec` pipeline, with each
/// phase timed (`uql.parse_ns` / `uql.bind_ns` / `uql.exec_ns`) and
/// bracketed in the trace buffer; `EXPLAIN` stops after binding,
/// `EXPLAIN ANALYZE` / `EXPLAIN TRACE` execute and annotate the plan.
///
/// The prepared-statement verbs split that pipeline. `PREPARE name AS …`
/// runs Parse + Bind once and caches the [`PreparedPlan`] on the context.
/// `EXECUTE name (args…)` skips both phases — argument binding is timed
/// separately under `uql.execute_bind_ns`, and an `EXPLAIN TRACE` of a
/// re-execution shows no Parse/Bind bracket at all. `DEALLOCATE name`
/// drops the cached plan. `EXECUTE` reuses the plan's warm state when the
/// argument bit patterns match the previous execution
/// (`uql.prepared_cache.hits`; any rebind counts a miss): the bound
/// physical plan is reused as-is, and a join restores its captured
/// post-warmup model snapshot instead of paying a second warmup — while
/// staying byte-identical to the one-shot statement, which the digest
/// suite pins at workers 1/2/8.
pub fn run_uql(src: &str, ctx: &mut Context) -> Result<QueryOutput> {
    let reg = ctx.metrics.clone();
    let tracer = ctx.trace.clone();
    // Watermark before parsing so a TRACE statement's window covers its
    // own parse/bind phases too (taken unconditionally: the mode is only
    // known after parsing, and a watermark is three atomic loads).
    let mark = tracer.watermark();
    let phase = |p: TracePhase, start: bool| {
        tracer.emit(
            0,
            if start {
                TraceEvent::PhaseStart { phase: p }
            } else {
                TraceEvent::PhaseEnd { phase: p }
            },
        );
    };
    // EXECUTE and DEALLOCATE exist to skip the Parse/Bind pipeline, so
    // their few-token parse is neither bracketed as a Parse phase (the
    // re-execution trace contract) nor recorded under `uql.parse_ns`.
    let stmt = if skips_parse_phase(src) {
        parse_statement(src)?
    } else {
        phase(TracePhase::Parse, true);
        let stmt = reg.histogram("uql.parse_ns").time(|| parse_statement(src));
        phase(TracePhase::Parse, false);
        stmt?
    };
    match stmt {
        Statement::Select(query) => {
            phase(TracePhase::Bind, true);
            let bound = reg.histogram("uql.bind_ns").time(|| bind(&query, ctx));
            phase(TracePhase::Bind, false);
            let bound = bound?;
            let plan = bound.explain();
            if query.explain == ExplainMode::Plan {
                return Ok(QueryOutput::Plan(plan));
            }
            let (out, _) = execute_physical(
                bound.physical,
                plan,
                query.explain,
                WarmMode::Cold,
                ctx,
                &reg,
                &tracer,
                mark,
            )?;
            Ok(out)
        }
        Statement::Prepare { name, select } => {
            if ctx.prepared.contains_key(&name.node) {
                return Err(LangError::semantic(
                    name.span,
                    format!(
                        "prepared statement `{}` already exists (DEALLOCATE it first)",
                        name.node,
                    ),
                ));
            }
            phase(TracePhase::Bind, true);
            let plan = reg.histogram("uql.bind_ns").time(|| prepare(&select, ctx));
            phase(TracePhase::Bind, false);
            let plan = plan?;
            let arity = plan.arity();
            ctx.prepared.insert(
                name.node.clone(),
                PreparedEntry {
                    text: select.to_string(),
                    plan,
                    epoch: ctx.catalog_epoch,
                    execs: 0,
                    warm: None,
                },
            );
            Ok(QueryOutput::Prepared {
                name: name.node,
                arity,
            })
        }
        Statement::Execute {
            explain,
            name,
            args,
        } => {
            let Some(mut entry) = ctx.prepared.remove(&name.node) else {
                return Err(LangError::semantic(
                    name.span,
                    format!(
                        "no prepared statement named `{}` (prepared: {})",
                        name.node,
                        render_names(ctx.prepared.keys()),
                    ),
                ));
            };
            // The entry is moved out of the cache while it runs (the
            // executors need `&mut Context`) and put back regardless of
            // the outcome — a failed EXECUTE must not deallocate.
            let result = run_prepared(&mut entry, explain, &name, &args, ctx, &reg, &tracer, mark);
            ctx.prepared.insert(name.node, entry);
            result
        }
        Statement::Deallocate { name } => {
            if ctx.prepared.remove(&name.node).is_none() {
                return Err(LangError::semantic(
                    name.span,
                    format!(
                        "no prepared statement named `{}` (prepared: {})",
                        name.node,
                        render_names(ctx.prepared.keys()),
                    ),
                ));
            }
            Ok(QueryOutput::Deallocated { name: name.node })
        }
    }
}

/// Whether the statement's leading verb is `EXECUTE` or `DEALLOCATE`
/// (possibly behind an `EXPLAIN [ANALYZE|TRACE]` prefix) — decided on the
/// raw text, so the decision can precede (and exclude) the parse itself.
fn skips_parse_phase(src: &str) -> bool {
    let mut words = src.split_whitespace().map(|w| w.to_ascii_uppercase());
    match words.next().as_deref() {
        Some("EXECUTE") | Some("DEALLOCATE") => true,
        Some("EXPLAIN") => {
            let w = words.next();
            let w = match w.as_deref() {
                Some("ANALYZE") | Some("TRACE") => words.next(),
                _ => w,
            };
            w.as_deref() == Some("EXECUTE")
        }
        _ => false,
    }
}

/// Sorted name list for "no such prepared statement" diagnostics.
fn render_names<'a>(names: impl Iterator<Item = &'a String>) -> String {
    let joined = names.map(String::as_str).collect::<Vec<_>>().join(", ");
    if joined.is_empty() {
        "none".to_string()
    } else {
        joined
    }
}

/// Run one `EXECUTE` against its cache entry: transparently re-prepare if
/// the catalog changed since prepare time, bind the argument set (or
/// reuse the warm binding when the bit patterns match), and execute with
/// the join warm state wired through.
#[allow(clippy::too_many_arguments)]
fn run_prepared(
    entry: &mut PreparedEntry,
    explain: ExplainMode,
    name: &Spanned<String>,
    args: &[Spanned<f64>],
    ctx: &mut Context,
    reg: &MetricsRegistry,
    tracer: &TraceBuffer,
    mark: u64,
) -> Result<QueryOutput> {
    // A registration since prepare time may have replaced any name the
    // plan resolved — re-prepare from the stored body (spans still point
    // into the original PREPARE text) and drop the warm state.
    if entry.epoch != ctx.catalog_epoch {
        let sel = entry.plan.select().clone();
        entry.plan = prepare(&sel, ctx)?;
        entry.warm = None;
        entry.epoch = ctx.catalog_epoch;
    }
    let key: Vec<u64> = args.iter().map(|a| a.node.to_bits()).collect();
    let hit = entry.warm.as_ref().is_some_and(|w| w.args_key == key);
    reg.counter(if hit {
        "uql.prepared_cache.hits"
    } else {
        "uql.prepared_cache.misses"
    })
    .inc();
    let physical = match entry.warm.as_ref().filter(|w| w.args_key == key) {
        Some(w) => w.physical.clone(),
        None => {
            let physical = reg
                .histogram("uql.execute_bind_ns")
                .time(|| entry.plan.bind_args(args, name.span))?;
            entry.warm = Some(WarmSlot {
                args_key: key,
                physical: physical.clone(),
                join_warm: None,
            });
            physical
        }
    };
    let bound = BoundQuery {
        logical: entry.plan.logical.clone(),
        optimized: entry.plan.optimized.clone(),
        physical,
    };
    let plan = bound.explain();
    if explain == ExplainMode::Plan {
        return Ok(QueryOutput::Plan(plan));
    }
    entry.execs += 1;
    let mode = match entry.warm.as_ref().and_then(|w| w.join_warm.as_ref()) {
        Some(state) if hit => WarmMode::Restore(state),
        _ if matches!(bound.physical, PhysicalPlan::Join(_)) => WarmMode::Capture,
        _ => WarmMode::Cold,
    };
    let (out, snapshot) =
        execute_physical(bound.physical, plan, explain, mode, ctx, reg, tracer, mark)?;
    if let (Some(snap), Some(w)) = (snapshot, entry.warm.as_mut()) {
        w.join_warm = Some(snap);
    }
    Ok(out)
}

/// Execute a bound physical plan under the Exec phase bracket and apply
/// any `EXPLAIN ANALYZE` / `EXPLAIN TRACE` annotation. Returns the output
/// plus the captured join warm state when `mode` asked for capture.
#[allow(clippy::too_many_arguments)]
fn execute_physical(
    physical: PhysicalPlan,
    plan: String,
    explain: ExplainMode,
    mode: WarmMode<'_>,
    ctx: &mut Context,
    reg: &MetricsRegistry,
    tracer: &TraceBuffer,
    mark: u64,
) -> Result<(QueryOutput, Option<WarmJoinState>)> {
    let phase = |p: TracePhase, start: bool| {
        tracer.emit(
            0,
            if start {
                TraceEvent::PhaseStart { phase: p }
            } else {
                TraceEvent::PhaseEnd { phase: p }
            },
        );
    };
    // For ANALYZE, attribute this statement's metrics via a snapshot
    // window around execution.
    let before = (explain == ExplainMode::Analyze).then(|| reg.snapshot());
    let exec_ns = reg.histogram("uql.exec_ns");
    phase(TracePhase::Exec, true);
    let out = {
        let _exec_span = exec_ns.span();
        match &physical {
            PhysicalPlan::Relation(p) => exec_relation(p, ctx, plan).map(|o| (o, None)),
            PhysicalPlan::Join(p) => exec_join(p, ctx, plan, mode),
            PhysicalPlan::Stream(p) => exec_stream(p, ctx, plan).map(|o| (o, None)),
        }
    };
    phase(TracePhase::Exec, false);
    let (out, snapshot) = out?;
    if let Some(before) = before {
        let delta = reg.snapshot().delta(&before);
        return Ok((QueryOutput::Plan(annotate_analyze(&out, &delta)), snapshot));
    }
    if explain == ExplainMode::Trace {
        let summary = tracer.summary_since(mark);
        return Ok((QueryOutput::Plan(annotate_trace(&out, &summary)), snapshot));
    }
    Ok((out, snapshot))
}

/// The executed plan plus its per-operator summary line — the header the
/// `EXPLAIN ANALYZE` and `EXPLAIN TRACE` renderings share. `None` for the
/// plan-only variant (which never executed anything).
fn plan_and_op(out: &QueryOutput) -> Option<(&str, String)> {
    use udf_obs::fmt::KvLine;
    match out {
        QueryOutput::Plan(_) | QueryOutput::Prepared { .. } | QueryOutput::Deallocated { .. } => {
            None
        }
        QueryOutput::Rows(r) => Some((
            r.plan.as_str(),
            KvLine::new()
                .raw(&format!("  BatchExec: time={:.2?}", r.elapsed))
                .field("rows", r.rows.len())
                .field("in", r.stats.tuples_in)
                .field("out", r.stats.tuples_out)
                .field("fast", r.stats.fast_path)
                .field("slow", r.stats.slow_path)
                .field("udf_calls", r.stats.udf_calls)
                .field("cap_hits", r.stats.cap_hits)
                .finish(),
        )),
        QueryOutput::Join(r) => Some((
            r.plan.as_str(),
            KvLine::new()
                .raw(&format!("  JoinExec: time={:.2?}", r.elapsed))
                .raw(&r.stats.to_string())
                .field("prune_attempts", r.stats.prune_attempts)
                .finish(),
        )),
        QueryOutput::Stream(o) => Some((
            o.plan.as_str(),
            KvLine::new()
                .raw(&format!("  StreamExec: time={:.2?}", o.engine.elapsed))
                .field("tuples", o.engine.tuples)
                .field("batches", o.engine.batches)
                .field("kept", o.stats.kept)
                .field("filtered", o.stats.filtered)
                .field("fast", o.stats.fast_path)
                .field("slow", o.stats.slow_path)
                .field("cap_hits", o.stats.cap_hits)
                .raw(&format!("digest=0x{:016x}", o.digest))
                .finish(),
        )),
    }
}

/// The `EXPLAIN ANALYZE` rendering: the executed plan, a per-operator
/// line with elapsed time and routing counters, and the statement's
/// metrics-registry delta.
fn annotate_analyze(out: &QueryOutput, delta: &Snapshot) -> String {
    let Some((plan, op)) = plan_and_op(out) else {
        // Unreachable in practice (ANALYZE always executes), but degrade
        // to the plain report rather than panicking.
        return out.report();
    };
    let mut s = String::from(plan);
    s.push_str("Execution (ANALYZE):\n");
    s.push_str(&op);
    s.push('\n');
    s.push_str("Metrics delta for this statement:\n");
    for line in delta.render().lines() {
        s.push_str("  ");
        s.push_str(line);
        s.push('\n');
    }
    s
}

/// The `EXPLAIN TRACE` rendering: the executed plan, the shared
/// per-operator line, and the statement's trace-window summary — event
/// counts, top reroute reasons, model-lifecycle attribution, certificate
/// misses with the worst `bound_gap`, and phase timings. Stream
/// statements append the health monitor's trend line when one sampled.
fn annotate_trace(out: &QueryOutput, summary: &TraceSummary) -> String {
    let Some((plan, op)) = plan_and_op(out) else {
        return out.report();
    };
    let mut s = String::from(plan);
    s.push_str("Execution (TRACE):\n");
    s.push_str(&op);
    s.push('\n');
    s.push_str("Trace for this statement:\n");
    for line in summary.render().lines() {
        s.push_str("  ");
        s.push_str(line);
        s.push('\n');
    }
    if let QueryOutput::Stream(o) = out {
        if let Some(h) = &o.health {
            s.push_str("  ");
            s.push_str(h);
            s.push('\n');
        }
    }
    s
}

/// A bound plan references a catalog name that no longer resolves. Can't
/// happen through `run_uql` (a catalog change re-prepares before
/// executing), but a caller holding a stale [`PhysicalPlan`] gets a
/// bind-stage-style error, never a panic.
fn stale_name(kind: &str, name: &str) -> LangError {
    LangError::Exec(format!(
        "{kind} `{name}` is no longer registered (stale plan; re-prepare the statement)"
    ))
}

fn exec_relation(p: &RelPlan, ctx: &mut Context, plan: String) -> Result<QueryOutput> {
    // Field-level borrows: the relation map and the scheduler cache are
    // disjoint, so the pool entry can be created while the relation is
    // held.
    let rel = ctx
        .relations
        .get(&p.relation)
        .ok_or_else(|| stale_name("relation", &p.relation))?;
    let reg = &ctx.metrics;
    let trace = &ctx.trace;
    let sched = ctx.schedulers.entry(p.workers).or_insert_with(|| {
        BatchScheduler::new(p.workers)
            .with_metrics(SchedMetrics::register(reg))
            .with_tracer(trace.clone())
    });
    let args: Vec<&str> = p.args.iter().map(String::as_str).collect();
    let call = UdfCall::resolve(p.udf.clone(), rel.schema(), &args)?;
    let mut executor = Executor::new(p.strategy, p.accuracy, &call, p.output_range)?
        .with_model_cap(p.model_cap, ModelBudget::StopGrowing)?
        .with_metrics(reg)
        .with_tracer(trace);
    let t0 = Instant::now();
    let rows = match &p.predicate {
        Some(pred) => executor.select_batch(rel, &call, pred, sched, p.seed)?,
        None => executor.project_batch(rel, &call, sched, p.seed)?,
    };
    Ok(QueryOutput::Rows(RowsOutput {
        rows,
        stats: executor.stats(),
        elapsed: t0.elapsed(),
        plan,
    }))
}

fn exec_join(
    p: &JoinPlan,
    ctx: &mut Context,
    plan: String,
    mode: WarmMode<'_>,
) -> Result<(QueryOutput, Option<WarmJoinState>)> {
    // Field-level borrows, like exec_relation: relations (shared) and the
    // scheduler cache (mutable) are disjoint fields.
    let left = ctx
        .relations
        .get(&p.left)
        .ok_or_else(|| stale_name("relation", &p.left))?;
    let right = ctx
        .relations
        .get(&p.right)
        .ok_or_else(|| stale_name("relation", &p.right))?;
    let reg = &ctx.metrics;
    let trace = &ctx.trace;
    let sched = ctx.schedulers.entry(p.workers).or_insert_with(|| {
        BatchScheduler::new(p.workers)
            .with_metrics(SchedMetrics::register(reg))
            .with_tracer(trace.clone())
    });
    let args: Vec<(udf_join::Side, &str)> = p.args.iter().map(|(s, c)| (*s, c.as_str())).collect();
    let mut spec = JoinSpec::new(
        left,
        p.left_alias.clone(),
        right,
        p.right_alias.clone(),
        p.udf.clone(),
        &args,
        p.accuracy,
        p.output_range,
    )
    .map_err(join_err)?
    .strategy(p.strategy)
    .prune(p.prune)
    .seed(p.seed)
    .model_cap(p.model_cap);
    if let Some(pred) = p.predicate {
        spec = spec.predicate(pred);
    }
    if let Some(((ls, lc), (rs, rc))) = &p.on {
        let resolve = |side: udf_join::Side, col: &str| -> Result<udf_join::JoinAttr> {
            let rel = match side {
                udf_join::Side::Left => left,
                udf_join::Side::Right => right,
            };
            Ok(udf_join::JoinAttr {
                side,
                index: rel.schema().index_of(col)?,
                name: col.to_string(),
            })
        };
        spec = spec.on(OnCondition {
            lhs: resolve(*ls, lc)?,
            rhs: resolve(*rs, rc)?,
        });
    }
    let t0 = Instant::now();
    let mut executor = JoinExecutor::new(&spec)
        .map_err(join_err)?
        .with_metrics(reg)
        .with_tracer(ctx.trace.clone());
    let (out, snapshot) = executor.run_warm(sched, mode).map_err(join_err)?;
    Ok((
        QueryOutput::Join(JoinRowsOutput {
            rows: out.rows,
            relation: out.relation,
            stats: out.stats,
            query_stats: out.query_stats,
            elapsed: t0.elapsed(),
            plan,
        }),
        snapshot,
    ))
}

fn join_err(e: udf_join::JoinError) -> LangError {
    LangError::Exec(e.to_string())
}

// `&mut Context` like the other executors — execution is uniformly
// mutating (one coherent mutability story), even though the stream path
// happens not to touch the scheduler cache today.
fn exec_stream(p: &StreamPlan, ctx: &mut Context, plan: String) -> Result<QueryOutput> {
    if p.limit.is_none() {
        return Err(LangError::Exec(
            "stream query has no LIMIT and UQL sources may be unbounded; \
             add `LIMIT n` to bound the run"
                .to_string(),
        ));
    }
    let (_, factory) = ctx
        .streams
        .get(&p.source)
        .ok_or_else(|| stale_name("stream source", &p.source))?;
    let source = factory();
    let mut session = Session::new(
        EngineConfig::new()
            .workers(p.workers)
            .batch_size(p.batch)
            .seed(p.seed),
    )
    .with_metrics(&ctx.metrics)
    .with_tracer(ctx.trace.clone())
    .with_health(HealthMonitor::new(
        udf_stream::health::DEFAULT_SAMPLE_EVERY,
        udf_stream::health::DEFAULT_CAPACITY,
    ));
    let mut spec = QuerySpec::new(
        format!("uql:{}@{}", p.udf.name(), p.source),
        p.udf.clone(),
        p.accuracy,
        p.strategy,
    )
    .output_range(p.output_range)
    .max_model_points(p.model_cap);
    if let Some(pred) = p.predicate {
        spec = spec.predicate(pred);
    }
    let id = session.subscribe(spec)?;
    let engine = session.run(source, p.limit)?;
    let health = session
        .health()
        .filter(|h| h.samples().next().is_some())
        .map(|h| h.render());
    Ok(QueryOutput::Stream(StreamOutput {
        stats: session.stats(id)?.clone(),
        digest: session.digest(id)?,
        recent: session.recent(id)?,
        engine,
        health,
        plan,
    }))
}
