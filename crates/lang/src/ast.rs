//! The typed UQL abstract syntax tree and its canonical pretty-printer.
//!
//! The [`Display`](std::fmt::Display) impl prints the canonical form of a
//! query: parsing its output yields a structurally identical AST (spans
//! aside — [`Spanned`] equality ignores them), which the proptest
//! round-trip suite exercises. Numeric literals print via `{:?}`, Rust's
//! shortest round-trip representation, so no precision is lost.

use crate::error::{Span, Spanned};
use std::fmt;

/// The `EXPLAIN` prefix, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// No prefix: execute and return results.
    #[default]
    None,
    /// `EXPLAIN`: plan only, nothing executed.
    Plan,
    /// `EXPLAIN ANALYZE`: execute, then render the plan annotated with
    /// per-operator elapsed time and counters.
    Analyze,
    /// `EXPLAIN TRACE`: execute, then render the plan annotated with this
    /// statement's structured trace window — reroute reasons, model
    /// lifecycle (grow/evict/cap), certificate misses, and phase timings.
    Trace,
}

/// A full UQL statement: a query, or one of the prepared-statement verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain (optionally `EXPLAIN`-prefixed) query.
    Select(Box<Query>),
    /// `PREPARE name AS SELECT …` — compile once, cache under `name`.
    Prepare {
        /// The statement name the plan is cached under.
        name: Spanned<String>,
        /// The SELECT body, possibly containing `$n` parameters.
        select: Box<Select>,
    },
    /// `EXECUTE name [(args…)]` — run a prepared plan with bound
    /// arguments. Composes with `EXPLAIN`/`ANALYZE`/`TRACE` like a query.
    Execute {
        /// `EXPLAIN` / `EXPLAIN ANALYZE` / `EXPLAIN TRACE` prefix.
        explain: ExplainMode,
        /// The prepared statement to run.
        name: Spanned<String>,
        /// Positional arguments for `$1..$n`, in order.
        args: Vec<Spanned<f64>>,
    },
    /// `DEALLOCATE name` — drop a prepared plan and its warm state.
    Deallocate {
        /// The prepared statement to drop.
        name: Spanned<String>,
    },
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Prepare { name, select } => {
                write!(f, "PREPARE {} AS {select}", name.node)
            }
            Statement::Execute {
                explain,
                name,
                args,
            } => {
                write!(f, "{}", explain_prefix(*explain))?;
                write!(f, "EXECUTE {}", name.node)?;
                if !args.is_empty() {
                    write!(f, " (")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{:?}", a.node)?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Deallocate { name } => write!(f, "DEALLOCATE {}", name.node),
        }
    }
}

fn explain_prefix(mode: ExplainMode) -> &'static str {
    match mode {
        ExplainMode::None => "",
        ExplainMode::Plan => "EXPLAIN ",
        ExplainMode::Analyze => "EXPLAIN ANALYZE ",
        ExplainMode::Trace => "EXPLAIN TRACE ",
    }
}

/// A full UQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `EXPLAIN` / `EXPLAIN ANALYZE` prefix.
    pub explain: ExplainMode,
    /// The SELECT body.
    pub select: Select,
}

/// A numeric position that is either a literal or a `$n` parameter of a
/// prepared statement (1-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumExpr {
    /// A literal number.
    Lit(f64),
    /// `$n` — bound at `EXECUTE` time.
    Param(usize),
}

impl NumExpr {
    /// The literal value, when this is not a parameter.
    pub fn as_lit(self) -> Option<f64> {
        match self {
            NumExpr::Lit(v) => Some(v),
            NumExpr::Param(_) => None,
        }
    }
}

impl From<f64> for NumExpr {
    fn from(v: f64) -> Self {
        NumExpr::Lit(v)
    }
}

impl fmt::Display for NumExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumExpr::Lit(v) => write!(f, "{v:?}"),
            NumExpr::Param(n) => write!(f, "${n}"),
        }
    }
}

/// An unsigned-integer position (`WORKERS`/`BATCH`/`SEED`/`LIMIT`/
/// `MODEL CAP`) that is either a literal or a `$n` parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UintExpr {
    /// A literal integer.
    Lit(u64),
    /// `$n` — bound at `EXECUTE` time (the argument must be a
    /// non-negative integer below 2^53).
    Param(usize),
}

impl UintExpr {
    /// The literal value, when this is not a parameter.
    pub fn as_lit(self) -> Option<u64> {
        match self {
            UintExpr::Lit(v) => Some(v),
            UintExpr::Param(_) => None,
        }
    }
}

impl From<u64> for UintExpr {
    fn from(v: u64) -> Self {
        UintExpr::Lit(v)
    }
}

impl fmt::Display for UintExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UintExpr::Lit(v) => write!(f, "{v}"),
            UintExpr::Param(n) => write!(f, "${n}"),
        }
    }
}

/// The SELECT body.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// The projected UDF call.
    pub call: CallExpr,
    /// Optional `WITH ACCURACY` clause.
    pub accuracy: Option<AccuracyClause>,
    /// The data source.
    pub source: SourceRef,
    /// Optional `WHERE PR(...) >= θ` clause.
    pub predicate: Option<PrFilterExpr>,
    /// Trailing options (`USING`/`WORKERS`/`BATCH`/`SEED`/`LIMIT`).
    pub options: Options,
}

/// An attribute reference: bare (`z`) or alias-qualified (`a.z`, join
/// queries only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRef {
    /// Join-side alias, when qualified.
    pub alias: Option<String>,
    /// Column name.
    pub name: String,
}

impl AttrRef {
    /// A bare (unqualified) reference.
    pub fn bare(name: impl Into<String>) -> Self {
        AttrRef {
            alias: None,
            name: name.into(),
        }
    }

    /// An alias-qualified reference.
    pub fn qualified(alias: impl Into<String>, name: impl Into<String>) -> Self {
        AttrRef {
            alias: Some(alias.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{a}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A UDF applied to attribute references, e.g. `ComoveVol(z1, z2)` or
/// `AngDist(a.z, b.z)`.
#[derive(Debug, Clone)]
pub struct CallExpr {
    /// UDF name.
    pub name: Spanned<String>,
    /// Argument attribute references.
    pub args: Vec<Spanned<AttrRef>>,
    /// Span of the whole call expression.
    pub span: Span,
}

impl PartialEq for CallExpr {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality ignores spans, like `Spanned`.
        self.name == other.name && self.args == other.args
    }
}

/// `WITH ACCURACY eps delta [METRIC ks|disc]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyClause {
    /// Error tolerance ε.
    pub eps: Spanned<NumExpr>,
    /// Failure probability δ.
    pub delta: Spanned<NumExpr>,
    /// Optional metric (defaults to the paper's λ-discrepancy).
    pub metric: Option<Spanned<MetricName>>,
}

/// The metric names UQL accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricName {
    /// Kolmogorov–Smirnov distance.
    Ks,
    /// λ-discrepancy (the paper's default).
    Disc,
}

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricName::Ks => write!(f, "KS"),
            MetricName::Disc => write!(f, "DISC"),
        }
    }
}

/// `FROM rel a JOIN rel b [ON a.key < b.key]`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSource {
    /// Left relation name.
    pub left: Spanned<String>,
    /// Left alias (column prefix).
    pub left_alias: Spanned<String>,
    /// Right relation name.
    pub right: Spanned<String>,
    /// Right alias (column prefix).
    pub right_alias: Spanned<String>,
    /// Optional `ON lhs < rhs` pair filter over key columns.
    pub on: Option<OnExpr>,
}

/// `ON lhs < rhs` (the only supported comparison; compares attribute
/// means, intended for deterministic key columns).
#[derive(Debug, Clone)]
pub struct OnExpr {
    /// Left operand of `<`.
    pub lhs: Spanned<AttrRef>,
    /// Right operand of `<`.
    pub rhs: Spanned<AttrRef>,
    /// Span of the whole clause.
    pub span: Span,
}

impl PartialEq for OnExpr {
    fn eq(&self, other: &Self) -> bool {
        self.lhs == other.lhs && self.rhs == other.rhs
    }
}

/// What the query reads from.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceRef {
    /// A finite registered relation.
    Relation(Spanned<String>),
    /// A registered stream source (`FROM STREAM name`).
    Stream(Spanned<String>),
    /// A two-relation θ-join (`FROM rel a JOIN rel b …`); boxed to keep
    /// the enum small next to the plain name variants.
    Join(Box<JoinSource>),
}

impl SourceRef {
    /// The (left, for joins) referenced name.
    pub fn name(&self) -> &str {
        match self {
            SourceRef::Relation(n) | SourceRef::Stream(n) => &n.node,
            SourceRef::Join(j) => &j.left.node,
        }
    }

    /// The name's span.
    pub fn span(&self) -> Span {
        match self {
            SourceRef::Relation(n) | SourceRef::Stream(n) => n.span,
            SourceRef::Join(j) => j.left.span.to(j.right_alias.span),
        }
    }
}

/// `WHERE PR(g(attr) IN [lo, hi]) >= theta`.
#[derive(Debug, Clone)]
pub struct PrFilterExpr {
    /// The UDF call inside `PR(...)`.
    pub call: CallExpr,
    /// Interval lower bound.
    pub lo: Spanned<NumExpr>,
    /// Interval upper bound.
    pub hi: Spanned<NumExpr>,
    /// TEP threshold θ.
    pub theta: Spanned<NumExpr>,
    /// Span of the whole clause.
    pub span: Span,
}

impl PartialEq for PrFilterExpr {
    fn eq(&self, other: &Self) -> bool {
        self.call == other.call
            && self.lo == other.lo
            && self.hi == other.hi
            && self.theta == other.theta
    }
}

/// The evaluation strategies UQL accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyName {
    /// Direct Monte Carlo sampling.
    Mc,
    /// OLGAPRO (GP emulation).
    Gp,
    /// Pick by the paper's §6.3 rules.
    Auto,
}

impl fmt::Display for StrategyName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyName::Mc => write!(f, "MC"),
            StrategyName::Gp => write!(f, "GP"),
            StrategyName::Auto => write!(f, "AUTO"),
        }
    }
}

/// Trailing options. Each may appear at most once, in any order; the
/// pretty-printer emits them in canonical order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Options {
    /// `USING mc|gp|auto` — evaluation strategy (default AUTO).
    pub strategy: Option<Spanned<StrategyName>>,
    /// `WORKERS n` — fast-path worker threads.
    pub workers: Option<Spanned<UintExpr>>,
    /// `BATCH n` — stream micro-batch size.
    pub batch: Option<Spanned<UintExpr>>,
    /// `SEED n` — master RNG seed.
    pub seed: Option<Spanned<UintExpr>>,
    /// `LIMIT n` — stop a stream after n tuples.
    pub limit: Option<Spanned<UintExpr>>,
    /// `MODEL CAP n` — GP model-size budget (0 = uncapped).
    pub model_cap: Option<Spanned<UintExpr>>,
    /// `PRUNE` — envelope-based pair pruning (GP joins with a WHERE
    /// clause only).
    pub prune: Option<Spanned<bool>>,
}

impl fmt::Display for CallExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name.node)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.node)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", explain_prefix(self.explain), self.select)
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", self.call)?;
        if let Some(acc) = &self.accuracy {
            write!(f, " WITH ACCURACY {} {}", acc.eps.node, acc.delta.node)?;
            if let Some(m) = &acc.metric {
                write!(f, " METRIC {}", m.node)?;
            }
        }
        match &self.source {
            SourceRef::Relation(n) => write!(f, " FROM {}", n.node)?,
            SourceRef::Stream(n) => write!(f, " FROM STREAM {}", n.node)?,
            SourceRef::Join(j) => {
                write!(
                    f,
                    " FROM {} {} JOIN {} {}",
                    j.left.node, j.left_alias.node, j.right.node, j.right_alias.node
                )?;
                if let Some(on) = &j.on {
                    write!(f, " ON {} < {}", on.lhs.node, on.rhs.node)?;
                }
            }
        }
        if let Some(p) = &self.predicate {
            write!(
                f,
                " WHERE PR({} IN [{}, {}]) >= {}",
                p.call, p.lo.node, p.hi.node, p.theta.node
            )?;
        }
        let o = &self.options;
        if let Some(s) = &o.strategy {
            write!(f, " USING {}", s.node)?;
        }
        if let Some(w) = &o.workers {
            write!(f, " WORKERS {}", w.node)?;
        }
        if let Some(b) = &o.batch {
            write!(f, " BATCH {}", b.node)?;
        }
        if let Some(s) = &o.seed {
            write!(f, " SEED {}", s.node)?;
        }
        if let Some(l) = &o.limit {
            write!(f, " LIMIT {}", l.node)?;
        }
        if let Some(c) = &o.model_cap {
            write!(f, " MODEL CAP {}", c.node)?;
        }
        if o.prune.is_some() {
            write!(f, " PRUNE")?;
        }
        Ok(())
    }
}
