//! The typed UQL abstract syntax tree and its canonical pretty-printer.
//!
//! The [`Display`](std::fmt::Display) impl prints the canonical form of a
//! query: parsing its output yields a structurally identical AST (spans
//! aside — [`Spanned`] equality ignores them), which the proptest
//! round-trip suite exercises. Numeric literals print via `{:?}`, Rust's
//! shortest round-trip representation, so no precision is lost.

use crate::error::{Span, Spanned};
use std::fmt;

/// The `EXPLAIN` prefix, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// No prefix: execute and return results.
    #[default]
    None,
    /// `EXPLAIN`: plan only, nothing executed.
    Plan,
    /// `EXPLAIN ANALYZE`: execute, then render the plan annotated with
    /// per-operator elapsed time and counters.
    Analyze,
    /// `EXPLAIN TRACE`: execute, then render the plan annotated with this
    /// statement's structured trace window — reroute reasons, model
    /// lifecycle (grow/evict/cap), certificate misses, and phase timings.
    Trace,
}

/// A full UQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `EXPLAIN` / `EXPLAIN ANALYZE` prefix.
    pub explain: ExplainMode,
    /// The SELECT body.
    pub select: Select,
}

/// The SELECT body.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// The projected UDF call.
    pub call: CallExpr,
    /// Optional `WITH ACCURACY` clause.
    pub accuracy: Option<AccuracyClause>,
    /// The data source.
    pub source: SourceRef,
    /// Optional `WHERE PR(...) >= θ` clause.
    pub predicate: Option<PrFilterExpr>,
    /// Trailing options (`USING`/`WORKERS`/`BATCH`/`SEED`/`LIMIT`).
    pub options: Options,
}

/// An attribute reference: bare (`z`) or alias-qualified (`a.z`, join
/// queries only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRef {
    /// Join-side alias, when qualified.
    pub alias: Option<String>,
    /// Column name.
    pub name: String,
}

impl AttrRef {
    /// A bare (unqualified) reference.
    pub fn bare(name: impl Into<String>) -> Self {
        AttrRef {
            alias: None,
            name: name.into(),
        }
    }

    /// An alias-qualified reference.
    pub fn qualified(alias: impl Into<String>, name: impl Into<String>) -> Self {
        AttrRef {
            alias: Some(alias.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{a}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A UDF applied to attribute references, e.g. `ComoveVol(z1, z2)` or
/// `AngDist(a.z, b.z)`.
#[derive(Debug, Clone)]
pub struct CallExpr {
    /// UDF name.
    pub name: Spanned<String>,
    /// Argument attribute references.
    pub args: Vec<Spanned<AttrRef>>,
    /// Span of the whole call expression.
    pub span: Span,
}

impl PartialEq for CallExpr {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality ignores spans, like `Spanned`.
        self.name == other.name && self.args == other.args
    }
}

/// `WITH ACCURACY eps delta [METRIC ks|disc]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyClause {
    /// Error tolerance ε.
    pub eps: Spanned<f64>,
    /// Failure probability δ.
    pub delta: Spanned<f64>,
    /// Optional metric (defaults to the paper's λ-discrepancy).
    pub metric: Option<Spanned<MetricName>>,
}

/// The metric names UQL accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricName {
    /// Kolmogorov–Smirnov distance.
    Ks,
    /// λ-discrepancy (the paper's default).
    Disc,
}

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricName::Ks => write!(f, "KS"),
            MetricName::Disc => write!(f, "DISC"),
        }
    }
}

/// `FROM rel a JOIN rel b [ON a.key < b.key]`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSource {
    /// Left relation name.
    pub left: Spanned<String>,
    /// Left alias (column prefix).
    pub left_alias: Spanned<String>,
    /// Right relation name.
    pub right: Spanned<String>,
    /// Right alias (column prefix).
    pub right_alias: Spanned<String>,
    /// Optional `ON lhs < rhs` pair filter over key columns.
    pub on: Option<OnExpr>,
}

/// `ON lhs < rhs` (the only supported comparison; compares attribute
/// means, intended for deterministic key columns).
#[derive(Debug, Clone)]
pub struct OnExpr {
    /// Left operand of `<`.
    pub lhs: Spanned<AttrRef>,
    /// Right operand of `<`.
    pub rhs: Spanned<AttrRef>,
    /// Span of the whole clause.
    pub span: Span,
}

impl PartialEq for OnExpr {
    fn eq(&self, other: &Self) -> bool {
        self.lhs == other.lhs && self.rhs == other.rhs
    }
}

/// What the query reads from.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceRef {
    /// A finite registered relation.
    Relation(Spanned<String>),
    /// A registered stream source (`FROM STREAM name`).
    Stream(Spanned<String>),
    /// A two-relation θ-join (`FROM rel a JOIN rel b …`); boxed to keep
    /// the enum small next to the plain name variants.
    Join(Box<JoinSource>),
}

impl SourceRef {
    /// The (left, for joins) referenced name.
    pub fn name(&self) -> &str {
        match self {
            SourceRef::Relation(n) | SourceRef::Stream(n) => &n.node,
            SourceRef::Join(j) => &j.left.node,
        }
    }

    /// The name's span.
    pub fn span(&self) -> Span {
        match self {
            SourceRef::Relation(n) | SourceRef::Stream(n) => n.span,
            SourceRef::Join(j) => j.left.span.to(j.right_alias.span),
        }
    }
}

/// `WHERE PR(g(attr) IN [lo, hi]) >= theta`.
#[derive(Debug, Clone)]
pub struct PrFilterExpr {
    /// The UDF call inside `PR(...)`.
    pub call: CallExpr,
    /// Interval lower bound.
    pub lo: Spanned<f64>,
    /// Interval upper bound.
    pub hi: Spanned<f64>,
    /// TEP threshold θ.
    pub theta: Spanned<f64>,
    /// Span of the whole clause.
    pub span: Span,
}

impl PartialEq for PrFilterExpr {
    fn eq(&self, other: &Self) -> bool {
        self.call == other.call
            && self.lo == other.lo
            && self.hi == other.hi
            && self.theta == other.theta
    }
}

/// The evaluation strategies UQL accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyName {
    /// Direct Monte Carlo sampling.
    Mc,
    /// OLGAPRO (GP emulation).
    Gp,
    /// Pick by the paper's §6.3 rules.
    Auto,
}

impl fmt::Display for StrategyName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyName::Mc => write!(f, "MC"),
            StrategyName::Gp => write!(f, "GP"),
            StrategyName::Auto => write!(f, "AUTO"),
        }
    }
}

/// Trailing options. Each may appear at most once, in any order; the
/// pretty-printer emits them in canonical order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Options {
    /// `USING mc|gp|auto` — evaluation strategy (default AUTO).
    pub strategy: Option<Spanned<StrategyName>>,
    /// `WORKERS n` — fast-path worker threads.
    pub workers: Option<Spanned<u64>>,
    /// `BATCH n` — stream micro-batch size.
    pub batch: Option<Spanned<u64>>,
    /// `SEED n` — master RNG seed.
    pub seed: Option<Spanned<u64>>,
    /// `LIMIT n` — stop a stream after n tuples.
    pub limit: Option<Spanned<u64>>,
    /// `MODEL CAP n` — GP model-size budget (0 = uncapped).
    pub model_cap: Option<Spanned<u64>>,
    /// `PRUNE` — envelope-based pair pruning (GP joins with a WHERE
    /// clause only).
    pub prune: Option<Spanned<bool>>,
}

impl fmt::Display for CallExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name.node)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.node)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.explain {
            ExplainMode::None => {}
            ExplainMode::Plan => write!(f, "EXPLAIN ")?,
            ExplainMode::Analyze => write!(f, "EXPLAIN ANALYZE ")?,
            ExplainMode::Trace => write!(f, "EXPLAIN TRACE ")?,
        }
        write!(f, "{}", self.select)
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", self.call)?;
        if let Some(acc) = &self.accuracy {
            write!(f, " WITH ACCURACY {:?} {:?}", acc.eps.node, acc.delta.node)?;
            if let Some(m) = &acc.metric {
                write!(f, " METRIC {}", m.node)?;
            }
        }
        match &self.source {
            SourceRef::Relation(n) => write!(f, " FROM {}", n.node)?,
            SourceRef::Stream(n) => write!(f, " FROM STREAM {}", n.node)?,
            SourceRef::Join(j) => {
                write!(
                    f,
                    " FROM {} {} JOIN {} {}",
                    j.left.node, j.left_alias.node, j.right.node, j.right_alias.node
                )?;
                if let Some(on) = &j.on {
                    write!(f, " ON {} < {}", on.lhs.node, on.rhs.node)?;
                }
            }
        }
        if let Some(p) = &self.predicate {
            write!(
                f,
                " WHERE PR({} IN [{:?}, {:?}]) >= {:?}",
                p.call, p.lo.node, p.hi.node, p.theta.node
            )?;
        }
        let o = &self.options;
        if let Some(s) = &o.strategy {
            write!(f, " USING {}", s.node)?;
        }
        if let Some(w) = &o.workers {
            write!(f, " WORKERS {}", w.node)?;
        }
        if let Some(b) = &o.batch {
            write!(f, " BATCH {}", b.node)?;
        }
        if let Some(s) = &o.seed {
            write!(f, " SEED {}", s.node)?;
        }
        if let Some(l) = &o.limit {
            write!(f, " LIMIT {}", l.node)?;
        }
        if let Some(c) = &o.model_cap {
            write!(f, " MODEL CAP {}", c.node)?;
        }
        if o.prune.is_some() {
            write!(f, " PRUNE")?;
        }
        Ok(())
    }
}
