//! Diagnostics with source spans.

use std::fmt;

/// A byte range into the query source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Build from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A value plus the span it was parsed from. Equality ignores the span —
/// two ASTs parsed from differently-formatted but equivalent text compare
/// equal, which is what the pretty-print → reparse round-trip tests rely
/// on.
#[derive(Debug, Clone, Copy)]
pub struct Spanned<T> {
    /// The parsed value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Attach a span to a value.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.node == other.node
    }
}

/// Which compilation stage rejected the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization (bad character, malformed number).
    Lex,
    /// Grammar (unexpected token, missing clause).
    Parse,
    /// Binding/validation (unknown UDF, bad accuracy, arity mismatch).
    Semantic,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => write!(f, "lex error"),
            Stage::Parse => write!(f, "parse error"),
            Stage::Semantic => write!(f, "semantic error"),
        }
    }
}

/// Errors raised by the UQL front-end.
#[derive(Debug)]
pub enum LangError {
    /// The query text was rejected; carries the source span at fault.
    Diagnostic {
        /// Stage that rejected it.
        stage: Stage,
        /// Span at fault.
        span: Span,
        /// Human-readable explanation.
        message: String,
    },
    /// The bound plan failed at execution time (engine-level failure).
    Exec(String),
}

impl LangError {
    /// A lexer diagnostic.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        LangError::Diagnostic {
            stage: Stage::Lex,
            span,
            message: message.into(),
        }
    }

    /// A parser diagnostic.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        LangError::Diagnostic {
            stage: Stage::Parse,
            span,
            message: message.into(),
        }
    }

    /// A binder diagnostic.
    pub fn semantic(span: Span, message: impl Into<String>) -> Self {
        LangError::Diagnostic {
            stage: Stage::Semantic,
            span,
            message: message.into(),
        }
    }

    /// The span at fault, when the error is a source diagnostic.
    pub fn span(&self) -> Option<Span> {
        match self {
            LangError::Diagnostic { span, .. } => Some(*span),
            LangError::Exec(_) => None,
        }
    }

    /// Render the diagnostic against its source with a caret underline:
    ///
    /// ```text
    /// semantic error: unknown UDF `GalAgee`
    ///   | SELECT GalAgee(z) FROM sky
    ///   |        ^^^^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        match self {
            LangError::Exec(msg) => format!("execution error: {msg}"),
            LangError::Diagnostic {
                stage,
                span,
                message,
            } => {
                let start = span.start.min(src.len());
                let end = span.end.clamp(start, src.len());
                // The line containing the span start.
                let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
                let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
                let line = &src[line_start..line_end];
                let col = src[line_start..start].chars().count();
                let width = src[start..end.min(line_end)].chars().count().max(1);
                format!(
                    "{stage}: {message}\n  | {line}\n  | {}{}",
                    " ".repeat(col),
                    "^".repeat(width),
                )
            }
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Diagnostic {
                stage,
                span,
                message,
            } => write!(f, "{stage} at {span}: {message}"),
            LangError::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<udf_query::QueryError> for LangError {
    fn from(e: udf_query::QueryError) -> Self {
        LangError::Exec(e.to_string())
    }
}

impl From<udf_stream::StreamError> for LangError {
    fn from(e: udf_stream::StreamError) -> Self {
        LangError::Exec(e.to_string())
    }
}

impl From<udf_core::CoreError> for LangError {
    fn from(e: udf_core::CoreError) -> Self {
        LangError::Exec(e.to_string())
    }
}

/// Result alias for UQL operations.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanned_equality_ignores_span() {
        let a = Spanned::new(1.5, Span::new(0, 3));
        let b = Spanned::new(1.5, Span::new(10, 13));
        assert_eq!(a, b);
        assert_ne!(a, Spanned::new(2.5, Span::new(0, 3)));
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "SELECT GalAgee(z) FROM sky";
        let err = LangError::semantic(Span::new(7, 14), "unknown UDF `GalAgee`");
        let r = err.render(src);
        assert!(r.contains("unknown UDF"));
        assert!(r.contains("  | SELECT GalAgee(z) FROM sky"));
        assert!(r.contains("  |        ^^^^^^^"), "got:\n{r}");
    }

    #[test]
    fn render_survives_out_of_range_spans() {
        let err = LangError::parse(Span::new(100, 200), "unexpected end of input");
        let r = err.render("short");
        assert!(r.contains("unexpected end of input"));
    }

    #[test]
    fn span_join_covers_both() {
        assert_eq!(Span::new(3, 5).to(Span::new(10, 12)), Span::new(3, 12));
        assert_eq!(Span::new(10, 12).to(Span::new(3, 5)), Span::new(3, 12));
    }
}
