//! The UQL recursive-descent parser: tokens → typed AST.
//!
//! Grammar (EBNF; keywords are case-insensitive):
//!
//! ```text
//! statement := "PREPARE" IDENT "AS" select
//!            | [ explain ] "EXECUTE" IDENT [ "(" NUMBER { "," NUMBER } ")" ]
//!            | "DEALLOCATE" IDENT
//!            | query ;
//! query     := [ explain ] select ;
//! explain   := "EXPLAIN" [ "ANALYZE" | "TRACE" ] ;
//! select    := "SELECT" call [ accuracy ] "FROM" source [ where ] { option } ;
//! call      := IDENT "(" attr { "," attr } ")" ;
//! attr      := IDENT [ "." IDENT ] ;
//! accuracy  := "WITH" "ACCURACY" num num [ "METRIC" ( "KS" | "DISC" ) ] ;
//! source    := "STREAM" IDENT
//!            | IDENT IDENT "JOIN" IDENT IDENT [ "ON" attr "<" attr ]
//!            | IDENT ;
//! where     := "WHERE" "PR" "(" call "IN" "[" num "," num "]" ")" ">=" num ;
//! option    := "USING" ( "MC" | "GP" | "AUTO" )
//!            | "WORKERS" uint | "BATCH" uint | "SEED" uint | "LIMIT" uint
//!            | "MODEL" "CAP" uint | "PRUNE" ;
//! num       := NUMBER | PARAM ;
//! uint      := INT | PARAM ;
//! ```
//!
//! `PARAM` is a `$1`-style positional parameter (1-based). Parameters are
//! accepted anywhere a number goes — accuracy ε/δ, predicate bounds and θ,
//! and the integer options — but only survive binding inside a `PREPARE`
//! body; a one-shot statement with a `$n` is a semantic error.
//!
//! Qualified attributes (`a.z`) and the `JOIN` source form go together:
//! the binder rejects qualification outside a join and requires it inside
//! one. The join form is recognized by two-token lookahead after the
//! relation name (`IDENT "JOIN"`), so relation names that collide with
//! keywords in other positions still parse.
//!
//! Options may appear in any order but at most once each; the AST
//! pretty-printer emits them canonically, so pretty-print → reparse is an
//! identity on the AST.

use crate::ast::{
    AccuracyClause, AttrRef, CallExpr, ExplainMode, JoinSource, MetricName, NumExpr, OnExpr,
    Options, PrFilterExpr, Query, Select, SourceRef, Statement, StrategyName, UintExpr,
};
use crate::error::{LangError, Result, Span, Spanned};
use crate::token::{lex, Tok, Token};

/// Parse one UQL query (a [`Select`], optionally `EXPLAIN`-prefixed).
/// The prepared-statement verbs are not accepted here — use
/// [`parse_statement`] for the full statement grammar.
pub fn parse(src: &str) -> Result<Query> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        eof: Span::new(src.len(), src.len()),
    };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse one UQL statement: `PREPARE`/`EXECUTE`/`DEALLOCATE` or a query.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        eof: Span::new(src.len(), src.len()),
    };
    let s = p.statement()?;
    p.expect_end()?;
    Ok(s)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    eof: Span,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, ahead: usize) -> Option<&Token> {
        self.tokens.get(self.pos + ahead)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.peek().map_or(self.eof, |t| t.span)
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            Some(t) => Err(LangError::parse(
                t.span,
                format!("trailing input: unexpected {}", t.tok.describe()),
            )),
            None => Ok(()),
        }
    }

    fn err_expected(&self, what: &str) -> LangError {
        match self.peek() {
            Some(t) => LangError::parse(
                t.span,
                format!("expected {what}, found {}", t.tok.describe()),
            ),
            None => LangError::parse(self.eof, format!("expected {what}, found end of input")),
        }
    }

    /// True when the next token is the given (case-insensitive) keyword.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword or fail.
    fn expect_keyword(&mut self, kw: &str) -> Result<Span> {
        if self.at_keyword(kw) {
            Ok(self.next().expect("peeked").span)
        } else {
            Err(self.err_expected(&format!("keyword `{kw}`")))
        }
    }

    /// Consume the keyword if present.
    fn eat_keyword(&mut self, kw: &str) -> Option<Span> {
        if self.at_keyword(kw) {
            Some(self.next().expect("peeked").span)
        } else {
            None
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Spanned<String>> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(_), ..
            }) => {
                let t = self.next().expect("peeked");
                let Tok::Ident(s) = t.tok else { unreachable!() };
                Ok(Spanned::new(s, t.span))
            }
            _ => Err(self.err_expected(what)),
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<Span> {
        match self.peek() {
            Some(t) if t.tok == tok => Ok(self.next().expect("peeked").span),
            _ => Err(self.err_expected(what)),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<Spanned<f64>> {
        match self.peek() {
            Some(Token {
                tok: Tok::Number(_),
                ..
            }) => {
                let t = self.next().expect("peeked");
                let Tok::Number(n) = t.tok else {
                    unreachable!()
                };
                Ok(Spanned::new(n, t.span))
            }
            _ => Err(self.err_expected(what)),
        }
    }

    /// A non-negative integer literal (for WORKERS/BATCH/SEED/LIMIT).
    /// Values must lie strictly below 2⁵³: at and above it the f64 literal
    /// no longer identifies the integer the user wrote (2⁵³ + 1 rounds to
    /// 2⁵³), and silently rounding a SEED would break the determinism
    /// contract.
    fn expect_uint(&mut self, what: &str) -> Result<Spanned<u64>> {
        const MAX_EXACT: f64 = (1u64 << 53) as f64;
        let n = self.expect_number(what)?;
        if n.node < 0.0 || n.node.fract() != 0.0 || n.node >= MAX_EXACT {
            return Err(LangError::parse(
                n.span,
                format!(
                    "{what} must be a non-negative integer below 2^53, got `{:?}`",
                    n.node
                ),
            ));
        }
        Ok(Spanned::new(n.node as u64, n.span))
    }

    /// A `$n` parameter, if one is next.
    fn eat_param(&mut self) -> Option<Spanned<usize>> {
        match self.peek() {
            Some(Token {
                tok: Tok::Param(_), ..
            }) => {
                let t = self.next().expect("peeked");
                let Tok::Param(n) = t.tok else { unreachable!() };
                Some(Spanned::new(n as usize, t.span))
            }
            _ => None,
        }
    }

    /// A numeric position: literal or `$n` parameter.
    fn expect_num_expr(&mut self, what: &str) -> Result<Spanned<NumExpr>> {
        if let Some(p) = self.eat_param() {
            return Ok(Spanned::new(NumExpr::Param(p.node), p.span));
        }
        let n = self.expect_number(what)?;
        Ok(Spanned::new(NumExpr::Lit(n.node), n.span))
    }

    /// An unsigned-integer position: literal or `$n` parameter.
    fn expect_uint_expr(&mut self, what: &str) -> Result<Spanned<UintExpr>> {
        if let Some(p) = self.eat_param() {
            return Ok(Spanned::new(UintExpr::Param(p.node), p.span));
        }
        let n = self.expect_uint(what)?;
        Ok(Spanned::new(UintExpr::Lit(n.node), n.span))
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.at_keyword("PREPARE") {
            self.next();
            let name = self.expect_ident("prepared statement name")?;
            self.expect_keyword("AS")?;
            let select = self.select()?;
            return Ok(Statement::Prepare {
                name,
                select: Box::new(select),
            });
        }
        if self.at_keyword("DEALLOCATE") {
            self.next();
            let name = self.expect_ident("prepared statement name")?;
            return Ok(Statement::Deallocate { name });
        }
        if self.at_keyword("EXECUTE") {
            return self.execute(ExplainMode::None);
        }
        // `EXPLAIN [ANALYZE|TRACE] EXECUTE …` composes like a query;
        // rewind when the explain prefix turns out to front a SELECT.
        if self.at_keyword("EXPLAIN") {
            let save = self.pos;
            self.next();
            let mode = if self.eat_keyword("ANALYZE").is_some() {
                ExplainMode::Analyze
            } else if self.eat_keyword("TRACE").is_some() {
                ExplainMode::Trace
            } else {
                ExplainMode::Plan
            };
            if self.at_keyword("EXECUTE") {
                return self.execute(mode);
            }
            self.pos = save;
        }
        Ok(Statement::Select(Box::new(self.query()?)))
    }

    /// `EXECUTE name [ "(" NUMBER { "," NUMBER } ")" ]`.
    fn execute(&mut self, explain: ExplainMode) -> Result<Statement> {
        self.expect_keyword("EXECUTE")?;
        let name = self.expect_ident("prepared statement name")?;
        let mut args = Vec::new();
        if self.peek().is_some_and(|t| t.tok == Tok::LParen) {
            self.next();
            args.push(self.expect_number("argument value")?);
            while self.peek().is_some_and(|t| t.tok == Tok::Comma) {
                self.next();
                args.push(self.expect_number("argument value")?);
            }
            self.expect_tok(Tok::RParen, "`)` or `,` in the argument list")?;
        }
        Ok(Statement::Execute {
            explain,
            name,
            args,
        })
    }

    fn query(&mut self) -> Result<Query> {
        let explain = if self.eat_keyword("EXPLAIN").is_some() {
            if self.eat_keyword("ANALYZE").is_some() {
                ExplainMode::Analyze
            } else if self.eat_keyword("TRACE").is_some() {
                ExplainMode::Trace
            } else {
                ExplainMode::Plan
            }
        } else {
            ExplainMode::None
        };
        let select = self.select()?;
        Ok(Query { explain, select })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let call = self.call()?;
        let accuracy = if self.eat_keyword("WITH").is_some() {
            Some(self.accuracy_clause()?)
        } else {
            None
        };
        self.expect_keyword("FROM")?;
        let source = if self.eat_keyword("STREAM").is_some() {
            SourceRef::Stream(self.expect_ident("stream source name")?)
        } else {
            let rel = self.expect_ident("relation name")?;
            // Two-token lookahead: `rel alias JOIN …` is the join form;
            // a bare relation otherwise (aliases exist only for joins).
            let aliased_join = matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Ident(_),
                    ..
                })
            ) && matches!(
                self.peek_at(1),
                Some(Token { tok: Tok::Ident(k), .. }) if k.eq_ignore_ascii_case("JOIN")
            );
            if aliased_join {
                let left_alias = self.expect_ident("join alias")?;
                self.expect_keyword("JOIN")?;
                let right = self.expect_ident("right relation name")?;
                let right_alias = self.expect_ident("right join alias")?;
                let on = if self.eat_keyword("ON").is_some() {
                    let lhs = self.attr_ref()?;
                    self.expect_tok(Tok::Lt, "`<` between ON key columns")?;
                    let rhs = self.attr_ref()?;
                    let span = lhs.span.to(rhs.span);
                    Some(OnExpr { lhs, rhs, span })
                } else {
                    None
                };
                SourceRef::Join(Box::new(JoinSource {
                    left: rel,
                    left_alias,
                    right,
                    right_alias,
                    on,
                }))
            } else {
                SourceRef::Relation(rel)
            }
        };
        let predicate = if self.at_keyword("WHERE") {
            Some(self.where_clause()?)
        } else {
            None
        };
        let options = self.options()?;
        Ok(Select {
            call,
            accuracy,
            source,
            predicate,
            options,
        })
    }

    fn call(&mut self) -> Result<CallExpr> {
        let name = self.expect_ident("UDF name")?;
        self.expect_tok(Tok::LParen, "`(` after UDF name")?;
        let mut args = vec![self.attr_ref()?];
        while self.peek().is_some_and(|t| t.tok == Tok::Comma) {
            self.next();
            args.push(self.attr_ref()?);
        }
        let close = self.expect_tok(Tok::RParen, "`)` or `,` in argument list")?;
        let span = name.span.to(close);
        Ok(CallExpr { name, args, span })
    }

    /// `IDENT [ "." IDENT ]` — a bare or alias-qualified attribute.
    fn attr_ref(&mut self) -> Result<Spanned<AttrRef>> {
        let first = self.expect_ident("attribute name")?;
        if self.peek().is_some_and(|t| t.tok == Tok::Dot) {
            self.next();
            let name = self.expect_ident("attribute name after `.`")?;
            let span = first.span.to(name.span);
            Ok(Spanned::new(
                AttrRef::qualified(first.node, name.node),
                span,
            ))
        } else {
            let span = first.span;
            Ok(Spanned::new(AttrRef::bare(first.node), span))
        }
    }

    fn accuracy_clause(&mut self) -> Result<AccuracyClause> {
        self.expect_keyword("ACCURACY")?;
        let eps = self.expect_num_expr("accuracy ε (a number in (0, 1))")?;
        let delta = self.expect_num_expr("accuracy δ (a number in (0, 1))")?;
        let metric = if self.eat_keyword("METRIC").is_some() {
            let here = self.here();
            let name = self.expect_ident("metric name (`ks` or `disc`)")?;
            let m = if name.node.eq_ignore_ascii_case("ks") {
                MetricName::Ks
            } else if name.node.eq_ignore_ascii_case("disc") {
                MetricName::Disc
            } else {
                return Err(LangError::parse(
                    here,
                    format!("unknown metric `{}` (expected `ks` or `disc`)", name.node),
                ));
            };
            Some(Spanned::new(m, name.span))
        } else {
            None
        };
        Ok(AccuracyClause { eps, delta, metric })
    }

    fn where_clause(&mut self) -> Result<PrFilterExpr> {
        let start = self.expect_keyword("WHERE")?;
        self.expect_keyword("PR")?;
        self.expect_tok(Tok::LParen, "`(` after PR")?;
        let call = self.call()?;
        self.expect_keyword("IN")?;
        self.expect_tok(Tok::LBracket, "`[` opening the interval")?;
        let lo = self.expect_num_expr("interval lower bound")?;
        self.expect_tok(Tok::Comma, "`,` between interval bounds")?;
        let hi = self.expect_num_expr("interval upper bound")?;
        self.expect_tok(Tok::RBracket, "`]` closing the interval")?;
        self.expect_tok(Tok::RParen, "`)` closing PR(...)")?;
        self.expect_tok(Tok::Ge, "`>=` before the probability threshold")?;
        let theta = self.expect_num_expr("probability threshold θ")?;
        let span = start.to(theta.span);
        Ok(PrFilterExpr {
            call,
            lo,
            hi,
            theta,
            span,
        })
    }

    fn options(&mut self) -> Result<Options> {
        let mut o = Options::default();
        loop {
            if self.at_keyword("USING") {
                let kw = self.next().expect("peeked").span;
                let here = self.here();
                let name = self.expect_ident("strategy (`mc`, `gp`, or `auto`)")?;
                let s = if name.node.eq_ignore_ascii_case("mc") {
                    StrategyName::Mc
                } else if name.node.eq_ignore_ascii_case("gp") {
                    StrategyName::Gp
                } else if name.node.eq_ignore_ascii_case("auto") {
                    StrategyName::Auto
                } else {
                    return Err(LangError::parse(
                        here,
                        format!(
                            "unknown strategy `{}` (expected `mc`, `gp`, or `auto`)",
                            name.node
                        ),
                    ));
                };
                set_once(&mut o.strategy, Spanned::new(s, name.span), kw, "USING")?;
            } else if self.at_keyword("WORKERS") {
                let kw = self.next().expect("peeked").span;
                let n = self.expect_uint_expr("WORKERS count")?;
                set_once(&mut o.workers, n, kw, "WORKERS")?;
            } else if self.at_keyword("BATCH") {
                let kw = self.next().expect("peeked").span;
                let n = self.expect_uint_expr("BATCH size")?;
                set_once(&mut o.batch, n, kw, "BATCH")?;
            } else if self.at_keyword("SEED") {
                let kw = self.next().expect("peeked").span;
                let n = self.expect_uint_expr("SEED value")?;
                set_once(&mut o.seed, n, kw, "SEED")?;
            } else if self.at_keyword("LIMIT") {
                let kw = self.next().expect("peeked").span;
                let n = self.expect_uint_expr("LIMIT count")?;
                set_once(&mut o.limit, n, kw, "LIMIT")?;
            } else if self.at_keyword("MODEL") {
                let kw = self.next().expect("peeked").span;
                self.expect_keyword("CAP")?;
                let n = self.expect_uint_expr("MODEL CAP size")?;
                set_once(&mut o.model_cap, n, kw, "MODEL CAP")?;
            } else if self.at_keyword("PRUNE") {
                let kw = self.next().expect("peeked").span;
                set_once(&mut o.prune, Spanned::new(true, kw), kw, "PRUNE")?;
            } else {
                return Ok(o);
            }
        }
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, kw_span: Span, clause: &str) -> Result<()> {
    if slot.is_some() {
        return Err(LangError::parse(
            kw_span,
            format!("duplicate `{clause}` clause"),
        ));
    }
    *slot = Some(value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_motivating_query() {
        let q = parse(
            "SELECT GalAge(z) WITH ACCURACY 0.1 0.05 METRIC disc FROM sky \
             WHERE PR(ComoveVol(z, z2) IN [0.1, 0.4]) >= 0.8 USING gp WORKERS 4 SEED 7",
        )
        .unwrap();
        assert_eq!(q.explain, ExplainMode::None);
        assert_eq!(q.select.call.name.node, "GalAge");
        assert_eq!(q.select.call.args.len(), 1);
        let acc = q.select.accuracy.as_ref().unwrap();
        assert_eq!(acc.eps.node, NumExpr::Lit(0.1));
        assert_eq!(acc.metric.as_ref().unwrap().node, MetricName::Disc);
        assert!(matches!(q.select.source, SourceRef::Relation(_)));
        let p = q.select.predicate.as_ref().unwrap();
        assert_eq!(p.call.args.len(), 2);
        assert_eq!(p.theta.node, NumExpr::Lit(0.8));
        assert_eq!(
            q.select.options.workers.as_ref().unwrap().node,
            UintExpr::Lit(4)
        );
        assert_eq!(
            q.select.options.seed.as_ref().unwrap().node,
            UintExpr::Lit(7)
        );
        assert!(q.select.options.limit.is_none());
    }

    #[test]
    fn parses_stream_and_explain() {
        let q = parse("EXPLAIN SELECT F3(x) FROM STREAM synth LIMIT 1000 BATCH 64").unwrap();
        assert_eq!(q.explain, ExplainMode::Plan);
        assert!(matches!(q.select.source, SourceRef::Stream(_)));
        assert_eq!(
            q.select.options.limit.as_ref().unwrap().node,
            UintExpr::Lit(1000)
        );
        assert_eq!(
            q.select.options.batch.as_ref().unwrap().node,
            UintExpr::Lit(64)
        );
        let q = parse("EXPLAIN ANALYZE SELECT F3(x) FROM STREAM synth LIMIT 1000").unwrap();
        assert_eq!(q.explain, ExplainMode::Analyze);
        let q = parse("EXPLAIN TRACE SELECT F3(x) FROM STREAM synth LIMIT 1000").unwrap();
        assert_eq!(q.explain, ExplainMode::Trace);
        // TRACE only carries meaning after EXPLAIN: elsewhere it is a
        // plain identifier (here, a relation named `trace`).
        let q = parse("SELECT F1(x) FROM trace").unwrap();
        assert_eq!(q.explain, ExplainMode::None);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse("select F1(x) from sky using mc").unwrap();
        let b = parse("SELECT F1(x) FROM sky USING MC").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn options_accept_any_order_but_not_duplicates() {
        let a = parse("SELECT F1(x) FROM sky SEED 3 USING gp WORKERS 2").unwrap();
        let b = parse("SELECT F1(x) FROM sky USING gp WORKERS 2 SEED 3").unwrap();
        assert_eq!(a, b);
        let err = parse("SELECT F1(x) FROM sky SEED 3 SEED 4").unwrap_err();
        assert!(err.to_string().contains("duplicate `SEED`"), "{err}");
    }

    #[test]
    fn parses_model_cap() {
        let q = parse("SELECT F2(x) FROM pts USING gp MODEL CAP 32 SEED 1").unwrap();
        assert_eq!(
            q.select.options.model_cap.as_ref().unwrap().node,
            UintExpr::Lit(32)
        );
        // Two-keyword clause: `MODEL` without `CAP` is a parse error.
        let err = parse("SELECT F2(x) FROM pts MODEL 32").unwrap_err();
        assert!(err.to_string().contains("keyword `CAP`"), "{err}");
        let err = parse("SELECT F2(x) FROM pts MODEL CAP 8 MODEL CAP 9").unwrap_err();
        assert!(err.to_string().contains("duplicate `MODEL CAP`"), "{err}");
        let err = parse("SELECT F2(x) FROM pts MODEL CAP -3").unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
    }

    #[test]
    fn parses_join_source_with_qualified_refs() {
        let q = parse(
            "SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b ON a.objID < b.objID \
             WHERE PR(AngDist(a.z, b.z) IN [0.1, 0.3]) >= 0.5 USING gp PRUNE SEED 2",
        )
        .unwrap();
        let SourceRef::Join(j) = &q.select.source else {
            panic!("join source expected")
        };
        assert_eq!(j.left.node, "sky");
        assert_eq!(j.left_alias.node, "a");
        assert_eq!(j.right_alias.node, "b");
        let on = j.on.as_ref().unwrap();
        assert_eq!(on.lhs.node, AttrRef::qualified("a", "objID"));
        assert_eq!(on.rhs.node, AttrRef::qualified("b", "objID"));
        assert_eq!(q.select.call.args[0].node, AttrRef::qualified("a", "z"));
        assert!(q.select.options.prune.is_some());

        // Join without ON; bare FROM still parses as a plain relation.
        let q = parse("SELECT AngDist(a.z, b.z) FROM sky a JOIN stars b").unwrap();
        let SourceRef::Join(j) = &q.select.source else {
            panic!("join")
        };
        assert!(j.on.is_none());
        assert_eq!(j.right.node, "stars");
        let q = parse("SELECT GalAge(z) FROM sky USING mc").unwrap();
        assert!(matches!(q.select.source, SourceRef::Relation(_)));
    }

    #[test]
    fn join_parse_errors_have_spans() {
        let err = parse("SELECT AngDist(a.z, b.z) FROM sky a JOIN sky").unwrap_err();
        assert!(err.to_string().contains("right join alias"), "{err}");
        let err = parse("SELECT AngDist(a.z, b.z) FROM sky a JOIN sky b ON a.objID >= b.objID")
            .unwrap_err();
        assert!(err.to_string().contains("`<` between ON key"), "{err}");
        let err = parse("SELECT AngDist(a., b.z) FROM sky a JOIN sky b").unwrap_err();
        assert!(
            err.to_string().contains("attribute name after `.`"),
            "{err}"
        );
        let err = parse("SELECT F1(x) FROM sky PRUNE PRUNE").unwrap_err();
        assert!(err.to_string().contains("duplicate `PRUNE`"), "{err}");
    }

    #[test]
    fn canonical_display_reparses_identically() {
        let srcs = [
            "SELECT GalAge(z) FROM sky",
            "explain analyze select GalAge(z) from sky using gp seed 4",
            "explain select AngDist(z1, z2) with accuracy 0.2 0.05 metric ks from stream pairs \
             where pr(AngDist(z1, z2) in [0.1, 0.3]) >= 0.5 using gp workers 8 batch 32 seed 9 \
             limit 500 model cap 64",
            "select AngDist(a.z, b.z) from sky a join sky b on a.objID < b.objID \
             where pr(AngDist(a.z, b.z) in [0.1, 0.3]) >= 0.5 using gp workers 2 prune",
        ];
        for src in srcs {
            let ast = parse(src).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(ast, reparsed, "canonical form {printed:?}");
        }
    }

    #[test]
    fn parses_prepare_with_parameters() {
        let s = parse_statement(
            "PREPARE q AS SELECT GalAge(z) WITH ACCURACY $1 $2 FROM sky \
             WHERE PR(GalAge(z) IN [$3, 0.4]) >= $4 USING gp WORKERS $5 SEED 7",
        )
        .unwrap();
        let Statement::Prepare { name, select } = &s else {
            panic!("PREPARE expected, got {s}")
        };
        assert_eq!(name.node, "q");
        let acc = select.accuracy.as_ref().unwrap();
        assert_eq!(acc.eps.node, NumExpr::Param(1));
        assert_eq!(acc.delta.node, NumExpr::Param(2));
        let p = select.predicate.as_ref().unwrap();
        assert_eq!(p.lo.node, NumExpr::Param(3));
        assert_eq!(p.hi.node, NumExpr::Lit(0.4));
        assert_eq!(p.theta.node, NumExpr::Param(4));
        assert_eq!(
            select.options.workers.as_ref().unwrap().node,
            UintExpr::Param(5)
        );
        assert_eq!(select.options.seed.as_ref().unwrap().node, UintExpr::Lit(7));
    }

    #[test]
    fn parses_execute_and_deallocate() {
        let s = parse_statement("EXECUTE q").unwrap();
        let Statement::Execute {
            explain,
            name,
            args,
        } = &s
        else {
            panic!("EXECUTE expected")
        };
        assert_eq!(*explain, ExplainMode::None);
        assert_eq!(name.node, "q");
        assert!(args.is_empty());

        let s = parse_statement("EXECUTE q (0.5, 2)").unwrap();
        let Statement::Execute { args, .. } = &s else {
            panic!("EXECUTE expected")
        };
        assert_eq!(args.len(), 2);
        assert_eq!(args[0].node, 0.5);
        assert_eq!(args[1].node, 2.0);

        let s = parse_statement("EXPLAIN ANALYZE EXECUTE q (1)").unwrap();
        let Statement::Execute { explain, .. } = &s else {
            panic!("EXECUTE expected")
        };
        assert_eq!(*explain, ExplainMode::Analyze);

        let s = parse_statement("DEALLOCATE q").unwrap();
        let Statement::Deallocate { name } = &s else {
            panic!("DEALLOCATE expected")
        };
        assert_eq!(name.node, "q");

        // A plain query still parses as a statement.
        let s = parse_statement("SELECT F1(x) FROM sky").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        // And EXPLAIN on a query rewinds correctly after the EXECUTE lookahead.
        let s = parse_statement("EXPLAIN TRACE SELECT F1(x) FROM sky").unwrap();
        let Statement::Select(q) = &s else {
            panic!("SELECT expected")
        };
        assert_eq!(q.explain, ExplainMode::Trace);
    }

    #[test]
    fn statement_parse_errors() {
        let err = parse_statement("PREPARE").unwrap_err();
        assert!(err.to_string().contains("statement name"), "{err}");
        let err = parse_statement("PREPARE q SELECT F1(x) FROM sky").unwrap_err();
        assert!(err.to_string().contains("`AS`"), "{err}");
        let err = parse_statement("EXECUTE q (1,)").unwrap_err();
        assert!(err.to_string().contains("argument value"), "{err}");
        let err = parse_statement("EXECUTE q (1 2)").unwrap_err();
        assert!(err.to_string().contains("argument list"), "{err}");
        let err = parse_statement("DEALLOCATE").unwrap_err();
        assert!(err.to_string().contains("statement name"), "{err}");
        let err = parse_statement("EXECUTE q extra").unwrap_err();
        assert!(err.to_string().contains("trailing input"), "{err}");
    }

    #[test]
    fn statements_round_trip_through_display() {
        let srcs = [
            "PREPARE q AS SELECT GalAge(z) WITH ACCURACY $1 0.05 FROM sky \
             WHERE PR(GalAge(z) IN [$2, $3]) >= 0.5 USING gp WORKERS $4 SEED 7",
            "EXECUTE q",
            "EXECUTE q (0.5, 2.0)",
            "EXPLAIN ANALYZE EXECUTE q (1.0)",
            "DEALLOCATE q",
            "SELECT F1(x) FROM sky USING mc",
        ];
        for src in srcs {
            let ast = parse_statement(src).unwrap();
            let printed = ast.to_string();
            let reparsed = parse_statement(&printed).unwrap();
            assert_eq!(ast, reparsed, "canonical form {printed:?}");
        }
    }
}
