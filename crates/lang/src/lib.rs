//! # udf-lang — UQL, the declarative uncertain-query front-end
//!
//! The paper's motivating queries (§1) are declarative:
//!
//! ```sql
//! SELECT GalAge(z) FROM Sky WHERE Pr[ComoveVol(z) ∈ [a, b]] ≥ θ
//! ```
//!
//! UQL is that surface as a small language over this workspace's engine: a
//! std-only lexer ([`token`]), a recursive-descent parser into a typed AST
//! ([`ast`], [`parser`]), a logical-plan layer with predicate pushdown and
//! a binder that validates names/accuracies/predicates against a catalog
//! ([`plan`]), and three execution backends ([`exec`]):
//!
//! * finite relations run batch-parallel through
//!   [`udf_query::Executor::select_batch`] on a
//!   [`BatchScheduler`](udf_core::sched::BatchScheduler) pool — selections
//!   ride the GP-envelope filtering fast path (§5.5);
//! * `FROM rel a JOIN rel b` θ-joins (the paper's Q2 shape) lower to
//!   [`udf_join::JoinExecutor`], with optional `PRUNE` envelope-based
//!   pair pruning (§4.2);
//! * `FROM STREAM` queries lower to [`udf_stream::Session`] subscriptions
//!   and inherit the stream engine's determinism digests.
//!
//! ## Quickstart
//!
//! ```
//! use udf_lang::{run_uql, Context, QueryOutput};
//! use udf_query::{Relation, Schema, Tuple, Value};
//!
//! let mut ctx = Context::standard(); // F1–F4 + GalAge/ComoveVol/AngDist
//! let tuples = (0..32)
//!     .map(|i| {
//!         Tuple::new(vec![
//!             Value::Det(i as f64),
//!             Value::Gaussian { mu: 0.1 + 0.05 * i as f64, sigma: 0.02 },
//!         ])
//!     })
//!     .collect();
//! ctx.register_relation(
//!     "sky",
//!     Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap(),
//! );
//!
//! let out = run_uql(
//!     "SELECT GalAge(z) FROM sky \
//!      WHERE PR(GalAge(z) IN [0.5, 0.95]) >= 0.6 USING gp WORKERS 2 SEED 7",
//!     &mut ctx,
//! )
//! .unwrap();
//! let QueryOutput::Rows(rows) = out else { panic!("relation query") };
//! assert!(rows.stats.tuples_in == 32 && !rows.rows.is_empty());
//! ```
//!
//! Errors at any stage carry source spans and render caret diagnostics:
//!
//! ```text
//! semantic error: unknown UDF `GalAgee`
//!   | SELECT GalAgee(z) FROM sky
//!   |        ^^^^^^^
//! ```

pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use ast::{
    AttrRef, ExplainMode, JoinSource, MetricName, NumExpr, OnExpr, Query, Select, SourceRef,
    Statement, StrategyName, UintExpr,
};
pub use error::{LangError, Result, Span, Spanned, Stage};
pub use exec::{
    run_uql, Context, JoinRowsOutput, PreparedEntry, QueryOutput, RowsOutput, SourceFactory,
    StreamOutput,
};
pub use parser::{parse, parse_statement};
pub use plan::{
    bind, prepare, BoundQuery, JoinPlan, LogicalPlan, ParamSlot, ParamType, PhysicalPlan,
    PreparedPlan, RelPlan, StreamPlan,
};
