//! Property fuzz of the hand-rolled JSON layer: whatever the builders
//! write, the validator must accept and the parser must materialize back
//! to the same values — including hostile strings (quotes, backslashes,
//! control characters) and non-finite floats (which serialize as `null`).

use proptest::prelude::*;
use udf_obs::json::{parse, validate, JsonArr, JsonObj, JsonValue};

/// One string fragment from the escape classes the writer knows about.
fn piece(kind: u8, raw: u32) -> String {
    match kind {
        0 => char::from_u32(raw).map(String::from).unwrap_or_default(),
        1 => "\"".to_string(),
        2 => "\\".to_string(),
        3 => "\n".to_string(),
        4 => "\r".to_string(),
        5 => "\t".to_string(),
        6 => "\u{0}".to_string(),
        7 => "\u{1f}".to_string(),
        8 => "\\u0041".to_string(), // literal backslash-u, must re-escape
        _ => "{}[],: \u{e9}\u{4e16}".to_string(),
    }
}

/// Strings exercising every escape class (plus arbitrary BMP chars).
fn hostile_string() -> impl Strategy<Value = String> {
    prop::collection::vec((0u8..10, 0u32..0xD800), 0..12)
        .prop_map(|parts| parts.into_iter().map(|(k, c)| piece(k, c)).collect())
}

/// Floats including the non-finite values JSON cannot represent.
fn any_f64() -> impl Strategy<Value = f64> {
    (0u8..10, -1.0e300f64..1.0e300).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        5 => f64::MIN_POSITIVE,
        6 => f64::MAX,
        _ => v,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn object_writer_round_trips(
        key in hostile_string(),
        s in hostile_string(),
        n in 0u64..u64::MAX,
        x in any_f64(),
        flag in 0u8..2,
    ) {
        let b = flag == 1;
        let mut obj = JsonObj::new();
        obj.str(&key, &s).u64("n", n).f64("x", x).bool("b", b);
        let text = obj.finish();
        prop_assert!(validate(&text).is_ok(), "writer emitted invalid JSON: {}", text);
        let v = parse(&text).unwrap();
        // A generated key can collide with "n"/"x"/"b"; `get` returns the
        // first member (always the str field), so only assert on the
        // fixed-name fields when the key is distinct.
        if key != "n" && key != "x" && key != "b" {
            prop_assert_eq!(v.get(&key).and_then(JsonValue::as_str), Some(s.as_str()));
            prop_assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(n as f64));
            prop_assert_eq!(v.get("b"), Some(&JsonValue::Bool(b)));
            match v.get("x").unwrap() {
                JsonValue::Null => prop_assert!(!x.is_finite(), "finite {} became null", x),
                JsonValue::Num(y) => {
                    prop_assert!(x.is_finite());
                    // Rust's f64 Display is shortest-round-trip, so the
                    // re-parsed value is bit-exact.
                    prop_assert_eq!(*y, x);
                }
                other => prop_assert!(false, "x materialized as {:?}", other),
            }
        }
    }

    #[test]
    fn array_writer_round_trips(
        strs in prop::collection::vec(hostile_string(), 0..6),
        nums in prop::collection::vec(any_f64(), 0..6),
    ) {
        let mut arr = JsonArr::new();
        for s in &strs {
            arr.str(s);
        }
        for &x in &nums {
            arr.f64(x);
        }
        let text = arr.finish();
        prop_assert!(validate(&text).is_ok(), "writer emitted invalid JSON: {}", text);
        let v = parse(&text).unwrap();
        let items = v.as_arr().unwrap();
        prop_assert_eq!(items.len(), strs.len() + nums.len());
        for (i, s) in strs.iter().enumerate() {
            prop_assert_eq!(items[i].as_str(), Some(s.as_str()));
        }
        for (i, &x) in nums.iter().enumerate() {
            match &items[strs.len() + i] {
                JsonValue::Null => prop_assert!(!x.is_finite()),
                JsonValue::Num(y) => prop_assert_eq!(*y, x),
                other => prop_assert!(false, "num materialized as {:?}", other),
            }
        }
    }

    #[test]
    fn nested_structures_stay_valid(
        depth in 1usize..6,
        leaf in hostile_string(),
    ) {
        let mut text = {
            let mut o = JsonObj::new();
            o.str("leaf", &leaf);
            o.finish()
        };
        for level in 0..depth {
            let mut o = JsonObj::new();
            let mut a = JsonArr::new();
            a.raw(&text).u64(level as u64);
            o.raw("children", &a.finish());
            text = o.finish();
        }
        prop_assert!(validate(&text).is_ok(), "{}", text);
        prop_assert!(parse(&text).is_ok(), "{}", text);
    }
}
