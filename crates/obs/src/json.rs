//! A hand-rolled JSON writer (and a validator for tests). The workspace
//! has no crates.io access, so there is no serde; everything that emits
//! JSON — [`crate::Snapshot::to_json`], the `trajectory` bench that
//! writes `BENCH_*.json` — goes through these builders.

use std::fmt::Write as _;

/// Append `s` to `buf` as a JSON string literal (with quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A float as a JSON number token (`null` for NaN/±∞, which JSON cannot
/// represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral floats; keep it
        // so consumers see a float-typed field consistently.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// An object builder. Push fields with the typed methods, then
/// [`finish`](JsonObj::finish):
///
/// ```
/// use udf_obs::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("name", "stream/throughput").u64("tuples", 4096);
/// assert_eq!(o.finish(), r#"{"name": "stream/throughput", "tuples": 4096}"#);
/// ```
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
        escape_into(&mut self.buf, k);
        self.buf.push_str(": ");
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        escape_into(&mut self.buf, v);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-serialized JSON value (nested object or array).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// An array builder, mirroring [`JsonObj`].
#[derive(Debug)]
pub struct JsonArr {
    buf: String,
    first: bool,
}

impl JsonArr {
    /// Start an empty array.
    pub fn new() -> Self {
        JsonArr {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
    }

    /// Append a pre-serialized JSON value.
    pub fn raw(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(v);
        self
    }

    /// Append a string element.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, v);
        self
    }

    /// Append an unsigned integer element.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a float element (`null` when non-finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&number(v));
        self
    }

    /// Close the array and return the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArr {
    fn default() -> Self {
        JsonArr::new()
    }
}

/// Validate that `s` is one well-formed JSON value (recursive descent;
/// no value materialization). Tests use this to keep the writers honest
/// without a JSON dependency.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => num(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn num(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        Err(format!("empty number at byte {start}"))
    } else {
        Ok(())
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

/// A materialized JSON value, for the handful of consumers that need to
/// *read* JSON (the `bench-gate` trajectory differ). Numbers are `f64` —
/// every number the workspace writes fits without precision questions that
/// matter for trend ratios.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (including what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number token.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` for other shapes / missing key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one complete JSON document into a [`JsonValue`]. Accepts exactly
/// what [`validate`] accepts; numbers that fail to parse as `f64` are
/// errors rather than silent zeros.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => literal(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => literal(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => literal(b, pos, "null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            num(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    string(b, pos)?;
    // Re-walk the validated span decoding escapes.
    let span = std::str::from_utf8(&b[start + 1..*pos - 1]).map_err(|e| e.to_string())?;
    let mut out = String::with_capacity(span.len());
    let mut chars = span.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err(format!("truncated \\u escape {hex:?}"));
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u{hex}: {e}"))?;
                // The writer never emits surrogate pairs (it only escapes
                // ASCII control chars); reject rather than mis-decode.
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code:#x}"))?);
            }
            other => return Err(format!("bad escape {other:?}")),
        }
    }
    Ok(out)
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // {
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_emit_valid_json() {
        let mut inner = JsonObj::new();
        inner.str("k", "v\"with\\quotes\n").f64("x", 1.5);
        let mut arr = JsonArr::new();
        arr.u64(1).f64(2.5).str("three").raw(&inner.finish());
        let mut root = JsonObj::new();
        root.raw("items", &arr.finish())
            .bool("ok", true)
            .f64("nan", f64::NAN)
            .f64("whole", 3.0);
        let s = root.finish();
        validate(&s).unwrap();
        assert!(s.contains("\"nan\": null"));
        assert!(
            s.contains("\"whole\": 3.0"),
            "integral floats keep a dot: {s}"
        );
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{} trailing").is_err());
        assert!(validate("").is_err());
        assert!(validate("{\"a\": [1, {\"b\": null}]}").is_ok());
    }

    #[test]
    fn escape_handles_control_chars() {
        let mut buf = String::new();
        escape_into(&mut buf, "a\u{1}b");
        assert_eq!(buf, "\"a\\u0001b\"");
    }

    #[test]
    fn parse_materializes_what_builders_write() {
        let mut obj = JsonObj::new();
        obj.str("name", "q\"1\"\n")
            .u64("n", 42)
            .f64("rate", 2.5)
            .f64("gap", f64::NAN)
            .bool("ok", true)
            .raw("xs", "[1, 2.0, \"s\"]");
        let s = obj.finish();
        let v = parse(&s).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("q\"1\"\n"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(v.get("rate").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("gap"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        let xs = v.get("xs").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_str(), Some("s"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for bad in ["{", "{\"a\":}", "[1,]", "{} x", ""] {
            assert!(parse(bad).is_err(), "{bad:?}");
            assert!(validate(bad).is_err(), "{bad:?}");
        }
        // Escape decoding is stricter than the span-skipping validator.
        assert!(parse("\"\\u12\"").is_err());
        assert_eq!(parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(parse(" null ").unwrap(), JsonValue::Null);
    }
}
