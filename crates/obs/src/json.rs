//! A hand-rolled JSON writer (and a validator for tests). The workspace
//! has no crates.io access, so there is no serde; everything that emits
//! JSON — [`crate::Snapshot::to_json`], the `trajectory` bench that
//! writes `BENCH_*.json` — goes through these builders.

use std::fmt::Write as _;

/// Append `s` to `buf` as a JSON string literal (with quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A float as a JSON number token (`null` for NaN/±∞, which JSON cannot
/// represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral floats; keep it
        // so consumers see a float-typed field consistently.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// An object builder. Push fields with the typed methods, then
/// [`finish`](JsonObj::finish):
///
/// ```
/// use udf_obs::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("name", "stream/throughput").u64("tuples", 4096);
/// assert_eq!(o.finish(), r#"{"name": "stream/throughput", "tuples": 4096}"#);
/// ```
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
        escape_into(&mut self.buf, k);
        self.buf.push_str(": ");
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        escape_into(&mut self.buf, v);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-serialized JSON value (nested object or array).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// An array builder, mirroring [`JsonObj`].
#[derive(Debug)]
pub struct JsonArr {
    buf: String,
    first: bool,
}

impl JsonArr {
    /// Start an empty array.
    pub fn new() -> Self {
        JsonArr {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
    }

    /// Append a pre-serialized JSON value.
    pub fn raw(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(v);
        self
    }

    /// Append a string element.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, v);
        self
    }

    /// Append an unsigned integer element.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a float element (`null` when non-finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&number(v));
        self
    }

    /// Close the array and return the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArr {
    fn default() -> Self {
        JsonArr::new()
    }
}

/// Validate that `s` is one well-formed JSON value (recursive descent;
/// no value materialization). Tests use this to keep the writers honest
/// without a JSON dependency.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => num(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn num(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        Err(format!("empty number at byte {start}"))
    } else {
        Ok(())
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_emit_valid_json() {
        let mut inner = JsonObj::new();
        inner.str("k", "v\"with\\quotes\n").f64("x", 1.5);
        let mut arr = JsonArr::new();
        arr.u64(1).f64(2.5).str("three").raw(&inner.finish());
        let mut root = JsonObj::new();
        root.raw("items", &arr.finish())
            .bool("ok", true)
            .f64("nan", f64::NAN)
            .f64("whole", 3.0);
        let s = root.finish();
        validate(&s).unwrap();
        assert!(s.contains("\"nan\": null"));
        assert!(
            s.contains("\"whole\": 3.0"),
            "integral floats keep a dot: {s}"
        );
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("{").is_err());
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{} trailing").is_err());
        assert!(validate("").is_err());
        assert!(validate("{\"a\": [1, {\"b\": null}]}").is_ok());
    }

    #[test]
    fn escape_handles_control_chars() {
        let mut buf = String::new();
        escape_into(&mut buf, "a\u{1}b");
        assert_eq!(buf, "\"a\\u0001b\"");
    }
}
