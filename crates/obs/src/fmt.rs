//! The shared `key=value` stats-line builder.
//!
//! Every human-facing counter block in the workspace — the REPL report,
//! `StreamStats` / `JoinStats` `Display`, the examples — renders through
//! [`KvLine`], so counters spell identically everywhere (`cap_hits=3`,
//! `pairs_pruned=120`, …) and scripts can grep one format.

use std::fmt::Display;

/// Builds one space-separated `key=value` line.
///
/// ```
/// use udf_obs::fmt::KvLine;
/// let line = KvLine::new()
///     .label("q1", 4)
///     .field("in", 100)
///     .field_pad("kept", 40, 6)
///     .raw("1234 tup/s");
/// assert_eq!(line.finish(), "q1  in=100 kept=40    1234 tup/s");
/// ```
#[derive(Debug, Default)]
pub struct KvLine {
    buf: String,
}

impl KvLine {
    /// Start an empty line.
    pub fn new() -> Self {
        KvLine { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() && !self.buf.ends_with(' ') {
            self.buf.push(' ');
        }
    }

    /// A leading label, left-padded to `width` columns (for aligned
    /// multi-line reports).
    pub fn label(mut self, text: &str, width: usize) -> Self {
        self.sep();
        self.buf.push_str(&format!("{text:<width$}"));
        self
    }

    /// Append `key=value`.
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        self.sep();
        self.buf.push_str(&format!("{key}={value}"));
        self
    }

    /// Append `key=value` with the value left-aligned to `width` columns.
    pub fn field_pad(mut self, key: &str, value: impl Display, width: usize) -> Self {
        self.sep();
        self.buf.push_str(&format!("{key}={value:<width$}"));
        self
    }

    /// Append pre-formatted text verbatim (units, rates).
    pub fn raw(mut self, text: &str) -> Self {
        self.sep();
        self.buf.push_str(text);
        self
    }

    /// The assembled line (no trailing newline; trailing pad spaces are
    /// trimmed).
    pub fn finish(self) -> String {
        self.buf.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_join_with_single_spaces() {
        let line = KvLine::new().field("a", 1).field("b", "x").finish();
        assert_eq!(line, "a=1 b=x");
    }

    #[test]
    fn padding_aligns_columns() {
        let line = KvLine::new()
            .label("q", 3)
            .field_pad("in", 7, 4)
            .field("out", 2)
            .finish();
        assert_eq!(line, "q  in=7   out=2");
    }

    #[test]
    fn empty_line_is_empty() {
        assert_eq!(KvLine::new().finish(), "");
    }
}
