//! Structured event tracing: per-worker lock-free ring buffers of typed
//! events with causal context.
//!
//! PR 6's metrics say *how much* time each layer spends; the trace layer
//! records *why*: which tuples rerouted to the slow path (and whether the
//! cause was an accuracy miss, a cold model, or a forced bootstrap), when
//! models grew / evicted / hit their cap, which join pairs failed envelope
//! certification and by how much, and where phase boundaries fell.
//!
//! The discipline matches the metric handles exactly:
//!
//! * **Output-blind.** Nothing here feeds back into evaluation. Digests are
//!   byte-identical with tracing enabled or disabled at any worker count —
//!   the determinism suites in `udf-stream` and `udf-lang` pin this.
//! * **Cheap enough to leave on.** [`TraceBuffer::emit`] on a disabled
//!   buffer is one relaxed load and a branch. Enabled, it is a handful of
//!   relaxed atomic stores into a fixed-capacity per-lane ring — zero
//!   allocation on the hot path, oldest events overwritten when a lane
//!   fills (drop-oldest).
//!
//! Each *lane* is a single-producer ring (by convention one lane per
//! scheduler worker slot; sequential emitters use lane 0). Readers may race
//! writers: every slot carries a global sequence number written last
//! (release), re-checked after the payload loads, so a slot overwritten
//! mid-read is skipped instead of surfacing torn.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a tuple left the fast path for the sequential slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RerouteReason {
    /// The fast-path error bound missed the ε_GP budget (the accept hook
    /// ruled [`Reroute`](https://docs.rs/)-style).
    AccuracyMiss,
    /// The fast pass raced a not-yet-bootstrapped model (empty-model
    /// inference error) and was rerouted.
    ColdModel,
    /// A forced sequential pass: the bootstrap tuple that gives the fast
    /// phase a model to read.
    Forced,
}

impl RerouteReason {
    /// Stable lower-snake name (what summaries and chrome args print).
    pub fn as_str(self) -> &'static str {
        match self {
            RerouteReason::AccuracyMiss => "accuracy_miss",
            RerouteReason::ColdModel => "cold_model",
            RerouteReason::Forced => "forced",
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            0 => RerouteReason::AccuracyMiss,
            1 => RerouteReason::ColdModel,
            _ => RerouteReason::Forced,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            RerouteReason::AccuracyMiss => 0,
            RerouteReason::ColdModel => 1,
            RerouteReason::Forced => 2,
        }
    }
}

/// A traced execution phase (the `PhaseStart`/`PhaseEnd` bracket label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// UQL statement parsing.
    Parse,
    /// UQL binding (name resolution + plan construction).
    Bind,
    /// Whole-statement execution.
    Exec,
    /// The scheduler's concurrent read-only fast phase.
    Fast,
    /// The scheduler's sequential fold (accepts, filters, slow reruns).
    Slow,
    /// The join executor's sequential model warmup round.
    Warmup,
    /// The join executor's main batched round.
    Main,
}

/// Number of [`TracePhase`] variants (sizes the summary's accumulators).
const PHASES: usize = 7;

impl TracePhase {
    /// Stable lower-case name (summary lines, chrome `name` fields).
    pub fn as_str(self) -> &'static str {
        match self {
            TracePhase::Parse => "parse",
            TracePhase::Bind => "bind",
            TracePhase::Exec => "exec",
            TracePhase::Fast => "fast",
            TracePhase::Slow => "slow",
            TracePhase::Warmup => "warmup",
            TracePhase::Main => "main",
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            0 => TracePhase::Parse,
            1 => TracePhase::Bind,
            2 => TracePhase::Exec,
            3 => TracePhase::Fast,
            4 => TracePhase::Slow,
            5 => TracePhase::Warmup,
            _ => TracePhase::Main,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            TracePhase::Parse => 0,
            TracePhase::Bind => 1,
            TracePhase::Exec => 2,
            TracePhase::Fast => 3,
            TracePhase::Slow => 4,
            TracePhase::Warmup => 5,
            TracePhase::Main => 6,
        }
    }
}

/// One typed trace event. Every variant packs into two `u64` payload words
/// plus a tag, so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A tuple left the fast path, with the causal reason.
    Reroute {
        /// Tuple index (global stream index or batch index).
        tuple: u64,
        /// Why it rerouted.
        reason: RerouteReason,
    },
    /// The GP model absorbed a training point.
    ModelGrow {
        /// Training-set size after the growth.
        points: u64,
        /// The model cap in force (0 = uncapped).
        budget: u64,
    },
    /// The GP model evicted its oldest point to stay under the cap.
    ModelEvict {
        /// Training-set size after the eviction.
        points: u64,
        /// The model cap in force.
        budget: u64,
    },
    /// A tuple was accepted at degraded accuracy because the model cap
    /// forbade further growth.
    CapHit {
        /// Training-set size at the hit.
        points: u64,
        /// The model cap in force.
        budget: u64,
    },
    /// A screened join pair stayed `Undecided` under the §4.2 envelope
    /// certificate and fell through to full evaluation.
    CertifyFail {
        /// `(left, right)` tuple indices of the pair.
        pair: (u32, u32),
        /// How far the band bracket was from any certificate (0 = at a
        /// boundary; `INFINITY` when no bracket was computable).
        bound_gap: f64,
    },
    /// A phase opened.
    PhaseStart {
        /// Which phase.
        phase: TracePhase,
    },
    /// A phase closed.
    PhaseEnd {
        /// Which phase.
        phase: TracePhase,
    },
}

impl TraceEvent {
    fn encode(self) -> (u64, u64, u64) {
        match self {
            TraceEvent::Reroute { tuple, reason } => (1, tuple, reason.as_u64()),
            TraceEvent::ModelGrow { points, budget } => (2, points, budget),
            TraceEvent::ModelEvict { points, budget } => (3, points, budget),
            TraceEvent::CapHit { points, budget } => (4, points, budget),
            TraceEvent::CertifyFail { pair, bound_gap } => (
                5,
                (u64::from(pair.0) << 32) | u64::from(pair.1),
                bound_gap.to_bits(),
            ),
            TraceEvent::PhaseStart { phase } => (6, phase.as_u64(), 0),
            TraceEvent::PhaseEnd { phase } => (7, phase.as_u64(), 0),
        }
    }

    fn decode(tag: u64, a: u64, b: u64) -> Option<Self> {
        Some(match tag {
            1 => TraceEvent::Reroute {
                tuple: a,
                reason: RerouteReason::from_u64(b),
            },
            2 => TraceEvent::ModelGrow {
                points: a,
                budget: b,
            },
            3 => TraceEvent::ModelEvict {
                points: a,
                budget: b,
            },
            4 => TraceEvent::CapHit {
                points: a,
                budget: b,
            },
            5 => TraceEvent::CertifyFail {
                pair: ((a >> 32) as u32, a as u32),
                bound_gap: f64::from_bits(b),
            },
            6 => TraceEvent::PhaseStart {
                phase: TracePhase::from_u64(a),
            },
            7 => TraceEvent::PhaseEnd {
                phase: TracePhase::from_u64(a),
            },
            _ => return None,
        })
    }

    /// Stable lower-snake kind name (chrome `name`, summary grouping).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Reroute { .. } => "reroute",
            TraceEvent::ModelGrow { .. } => "model_grow",
            TraceEvent::ModelEvict { .. } => "model_evict",
            TraceEvent::CapHit { .. } => "cap_hit",
            TraceEvent::CertifyFail { .. } => "certify_fail",
            TraceEvent::PhaseStart { .. } => "phase_start",
            TraceEvent::PhaseEnd { .. } => "phase_end",
        }
    }
}

/// An event read back out of the buffer, with its global order and time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Global sequence number (total order across lanes; starts at 1).
    pub seq: u64,
    /// Nanoseconds since the buffer's creation.
    pub t_ns: u64,
    /// The lane (worker slot) that emitted it.
    pub lane: usize,
    /// The event payload.
    pub event: TraceEvent,
}

/// One ring slot: five atomics, sequence first and last-written.
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    tag: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// One single-producer ring.
struct Lane {
    slots: Box<[Slot]>,
    /// Total events ever emitted into this lane (drop-oldest accounting).
    emitted: AtomicUsize,
}

struct Inner {
    enabled: AtomicBool,
    /// Next global sequence number (starts at 1; 0 marks an empty slot).
    seq: AtomicU64,
    epoch: Instant,
    lanes: Vec<Lane>,
    capacity: usize,
}

/// The per-worker ring-buffer event log. Cloning shares the buffer; a
/// disabled buffer costs one relaxed load and a branch per
/// [`emit`](TraceBuffer::emit).
#[derive(Clone)]
pub struct TraceBuffer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("lanes", &self.inner.lanes.len())
            .field("capacity", &self.inner.capacity)
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceBuffer {
    /// A buffer with `lanes` rings of `capacity` slots each, recording
    /// enabled. Both are clamped to ≥ 1. Emissions into lanes beyond the
    /// allocated count wrap (`lane % lanes`), so a buffer sized for fewer
    /// workers than actually run loses lane attribution, never events.
    pub fn new(lanes: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                seq: AtomicU64::new(1),
                epoch: Instant::now(),
                lanes: (0..lanes.max(1))
                    .map(|_| Lane {
                        slots: (0..capacity).map(|_| Slot::empty()).collect(),
                        emitted: AtomicUsize::new(0),
                    })
                    .collect(),
                capacity,
            }),
        }
    }

    /// A free-standing no-op buffer (what un-wired components hold, so
    /// instrumented structs never need an `Option`). One lane of one slot;
    /// nothing records until [`set_enabled`](TraceBuffer::set_enabled) —
    /// and even then it only retains the latest event.
    pub fn disabled() -> Self {
        let buf = TraceBuffer::new(1, 1);
        buf.set_enabled(false);
        buf
    }

    /// Flip recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether [`emit`](TraceBuffer::emit) currently records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.inner.lanes.len()
    }

    /// Slots per lane.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Record one event into `lane`. Disabled: one relaxed load and a
    /// branch. Enabled: a timestamp read plus a handful of relaxed stores
    /// into the lane's ring — no allocation, no locks. The oldest event in
    /// the lane is overwritten when the ring is full.
    #[inline]
    pub fn emit(&self, lane: usize, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        self.record(lane, event);
    }

    #[cold]
    fn record(&self, lane: usize, event: TraceEvent) {
        let inner = &*self.inner;
        let lane_idx = lane % inner.lanes.len();
        let ring = &inner.lanes[lane_idx];
        let pos = ring.emitted.fetch_add(1, Ordering::Relaxed) % inner.capacity;
        let slot = &ring.slots[pos];
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let t_ns = u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (tag, a, b) = event.encode();
        // Invalidate, write payload, publish: a concurrent reader that
        // catches the slot mid-write sees seq 0 (skip) or a seq mismatch
        // across its payload loads (skip), never a torn event.
        slot.seq.store(0, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.tag.store(tag, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// The last sequence number issued so far (0 before any event). Events
    /// emitted after this call all satisfy `seq > watermark()`, which is
    /// how `EXPLAIN TRACE` windows one statement's events.
    pub fn watermark(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed) - 1
    }

    /// Total events ever emitted into `lane` (including overwritten ones).
    pub fn lane_emitted(&self, lane: usize) -> u64 {
        self.inner
            .lanes
            .get(lane)
            .map_or(0, |l| l.emitted.load(Ordering::Relaxed) as u64)
    }

    /// Every retained event with `seq > mark`, merged across lanes in
    /// global sequence order. Slots being overwritten concurrently are
    /// skipped (see [`emit`](TraceBuffer::emit)).
    pub fn events_since(&self, mark: u64) -> Vec<TimedEvent> {
        let inner = &*self.inner;
        let mut out = Vec::new();
        for (lane_idx, lane) in inner.lanes.iter().enumerate() {
            for slot in lane.slots.iter() {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 <= mark {
                    continue;
                }
                let t_ns = slot.t_ns.load(Ordering::Relaxed);
                let tag = slot.tag.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                let s2 = slot.seq.load(Ordering::Acquire);
                if s1 != s2 {
                    continue; // overwritten mid-read
                }
                if let Some(event) = TraceEvent::decode(tag, a, b) {
                    out.push(TimedEvent {
                        seq: s1,
                        t_ns,
                        lane: lane_idx,
                        event,
                    });
                }
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// Every retained event, in global sequence order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events_since(0)
    }

    /// Drop every retained event (sequence numbers keep climbing, so
    /// existing watermarks stay valid).
    pub fn clear(&self) {
        for lane in &self.inner.lanes {
            for slot in lane.slots.iter() {
                slot.seq.store(0, Ordering::Release);
            }
        }
    }

    /// Aggregate the events after `mark` into a [`TraceSummary`].
    pub fn summary_since(&self, mark: u64) -> TraceSummary {
        TraceSummary::from_events(&self.events_since(mark))
    }
}

/// Root-cause aggregation over a window of trace events — what
/// `EXPLAIN TRACE` renders per statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Events in the window (retained ones; drop-oldest may have shed more).
    pub events: u64,
    /// Reroutes by cause, indexed by [`RerouteReason`] discriminant.
    pub reroutes: [u64; 3],
    /// Model growth events.
    pub model_grows: u64,
    /// Model evictions.
    pub model_evicts: u64,
    /// Degraded-accuracy cap hits.
    pub cap_hits: u64,
    /// Last observed `(points, budget)` from any model event.
    pub model_state: Option<(u64, u64)>,
    /// Join pairs that failed envelope certification.
    pub certify_fails: u64,
    /// Largest finite `bound_gap` among the failures (how far the hardest
    /// pair was from a certificate).
    pub max_bound_gap: f64,
    /// Total nanoseconds inside each phase (paired start/end per lane),
    /// indexed by [`TracePhase`] discriminant.
    pub phase_ns: [u64; PHASES],
}

impl TraceSummary {
    /// Aggregate a window of events (as returned by
    /// [`TraceBuffer::events_since`] — sorted by `seq`).
    pub fn from_events(events: &[TimedEvent]) -> Self {
        let mut s = TraceSummary {
            events: events.len() as u64,
            ..TraceSummary::default()
        };
        // Per-(lane, phase) open timestamps; lanes are single-producer so
        // one pending start per pair suffices.
        let mut open: std::collections::BTreeMap<(usize, u64), u64> =
            std::collections::BTreeMap::new();
        for e in events {
            match e.event {
                TraceEvent::Reroute { reason, .. } => {
                    s.reroutes[reason.as_u64() as usize] += 1;
                }
                TraceEvent::ModelGrow { points, budget } => {
                    s.model_grows += 1;
                    s.model_state = Some((points, budget));
                }
                TraceEvent::ModelEvict { points, budget } => {
                    s.model_evicts += 1;
                    s.model_state = Some((points, budget));
                }
                TraceEvent::CapHit { points, budget } => {
                    s.cap_hits += 1;
                    s.model_state = Some((points, budget));
                }
                TraceEvent::CertifyFail { bound_gap, .. } => {
                    s.certify_fails += 1;
                    if bound_gap.is_finite() {
                        s.max_bound_gap = s.max_bound_gap.max(bound_gap);
                    }
                }
                TraceEvent::PhaseStart { phase } => {
                    open.insert((e.lane, phase.as_u64()), e.t_ns);
                }
                TraceEvent::PhaseEnd { phase } => {
                    if let Some(t0) = open.remove(&(e.lane, phase.as_u64())) {
                        s.phase_ns[phase.as_u64() as usize] += e.t_ns.saturating_sub(t0);
                    }
                }
            }
        }
        s
    }

    /// Total reroutes across causes.
    pub fn total_reroutes(&self) -> u64 {
        self.reroutes.iter().sum()
    }

    /// Reroute causes by descending count (zero-count causes omitted) —
    /// the "top-k reroute reasons" view.
    pub fn top_reroute_reasons(&self) -> Vec<(RerouteReason, u64)> {
        let mut v: Vec<(RerouteReason, u64)> = [
            RerouteReason::AccuracyMiss,
            RerouteReason::ColdModel,
            RerouteReason::Forced,
        ]
        .into_iter()
        .map(|r| (r, self.reroutes[r.as_u64() as usize]))
        .filter(|&(_, n)| n > 0)
        .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// Human-readable block (what `EXPLAIN TRACE` and the REPL print).
    pub fn render(&self) -> String {
        let mut s = format!("Trace summary: {} event(s)\n", self.events);
        let reasons = self.top_reroute_reasons();
        if !reasons.is_empty() {
            let mut line = crate::fmt::KvLine::new().raw("  reroutes:");
            for (r, n) in &reasons {
                line = line.field(r.as_str(), n);
            }
            s.push_str(&line.finish());
            s.push('\n');
        }
        if self.model_grows + self.model_evicts + self.cap_hits > 0 {
            let mut line = crate::fmt::KvLine::new()
                .raw("  model:")
                .field("grows", self.model_grows)
                .field("evicts", self.model_evicts)
                .field("cap_hits", self.cap_hits);
            if let Some((points, budget)) = self.model_state {
                line = line.field("points", points).field("budget", budget);
            }
            s.push_str(&line.finish());
            s.push('\n');
        }
        if self.certify_fails > 0 {
            s.push_str(
                &crate::fmt::KvLine::new()
                    .raw("  certify:")
                    .field("fails", self.certify_fails)
                    .field("max_gap", format!("{:.4}", self.max_bound_gap))
                    .finish(),
            );
            s.push('\n');
        }
        let phases: Vec<String> = (0..PHASES as u64)
            .filter(|&p| self.phase_ns[p as usize] > 0)
            .map(|p| {
                format!(
                    "{}={:.2?}",
                    TracePhase::from_u64(p).as_str(),
                    Duration::from_nanos(self.phase_ns[p as usize])
                )
            })
            .collect();
        if !phases.is_empty() {
            s.push_str("  phases: ");
            s.push_str(&phases.join(" "));
            s.push('\n');
        }
        if self.events == 0 {
            s.push_str("  (no events recorded)\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_codec_round_trips() {
        let events = [
            TraceEvent::Reroute {
                tuple: 42,
                reason: RerouteReason::AccuracyMiss,
            },
            TraceEvent::Reroute {
                tuple: u64::MAX,
                reason: RerouteReason::ColdModel,
            },
            TraceEvent::Reroute {
                tuple: 0,
                reason: RerouteReason::Forced,
            },
            TraceEvent::ModelGrow {
                points: 17,
                budget: 64,
            },
            TraceEvent::ModelEvict {
                points: 63,
                budget: 64,
            },
            TraceEvent::CapHit {
                points: 64,
                budget: 64,
            },
            TraceEvent::CertifyFail {
                pair: (7, 123_456),
                bound_gap: 0.25,
            },
            TraceEvent::CertifyFail {
                pair: (u32::MAX, 0),
                bound_gap: f64::INFINITY,
            },
            TraceEvent::PhaseStart {
                phase: TracePhase::Fast,
            },
            TraceEvent::PhaseEnd {
                phase: TracePhase::Main,
            },
        ];
        for e in events {
            let (tag, a, b) = e.encode();
            assert_eq!(TraceEvent::decode(tag, a, b), Some(e), "{e:?}");
        }
        assert_eq!(TraceEvent::decode(99, 0, 0), None);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let buf = TraceBuffer::disabled();
        buf.emit(
            0,
            TraceEvent::CapHit {
                points: 1,
                budget: 1,
            },
        );
        assert!(buf.events().is_empty());
        assert_eq!(buf.watermark(), 0);
    }

    #[test]
    fn events_come_back_in_emission_order() {
        let buf = TraceBuffer::new(4, 16);
        for i in 0..10u64 {
            buf.emit(
                (i % 3) as usize,
                TraceEvent::Reroute {
                    tuple: i,
                    reason: RerouteReason::AccuracyMiss,
                },
            );
        }
        let events = buf.events();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1);
            assert_eq!(e.lane, i % 3);
            assert_eq!(
                e.event,
                TraceEvent::Reroute {
                    tuple: i as u64,
                    reason: RerouteReason::AccuracyMiss
                }
            );
        }
    }

    #[test]
    fn watermark_windows_a_statement() {
        let buf = TraceBuffer::new(1, 32);
        buf.emit(
            0,
            TraceEvent::ModelGrow {
                points: 1,
                budget: 0,
            },
        );
        let mark = buf.watermark();
        buf.emit(
            0,
            TraceEvent::CapHit {
                points: 2,
                budget: 2,
            },
        );
        let window = buf.events_since(mark);
        assert_eq!(window.len(), 1);
        assert_eq!(
            window[0].event,
            TraceEvent::CapHit {
                points: 2,
                budget: 2
            }
        );
    }

    #[test]
    fn ring_drops_oldest_exactly() {
        let buf = TraceBuffer::new(1, 8);
        for i in 0..20u64 {
            buf.emit(
                0,
                TraceEvent::Reroute {
                    tuple: i,
                    reason: RerouteReason::Forced,
                },
            );
        }
        let events = buf.events();
        assert_eq!(events.len(), 8, "capacity bounds retention");
        assert_eq!(buf.lane_emitted(0), 20, "drop-oldest accounting");
        // Exactly the newest 8 survive, in order.
        for (k, e) in events.iter().enumerate() {
            let expected = 12 + k as u64;
            assert_eq!(
                e.event,
                TraceEvent::Reroute {
                    tuple: expected,
                    reason: RerouteReason::Forced
                }
            );
        }
    }

    #[test]
    fn multi_thread_drop_oldest_is_exact_per_lane() {
        // The satellite-spec exactness test: T producer threads, one lane
        // each (the production shape — lanes are per worker slot), each
        // emitting far past capacity. Every lane must retain *exactly* its
        // own newest `capacity` events, untorn and in order.
        const LANES: usize = 4;
        const CAP: usize = 32;
        const PER_LANE: u64 = 1000;
        let buf = TraceBuffer::new(LANES, CAP);
        std::thread::scope(|s| {
            for lane in 0..LANES {
                let buf = buf.clone();
                s.spawn(move || {
                    for i in 0..PER_LANE {
                        buf.emit(
                            lane,
                            TraceEvent::Reroute {
                                tuple: (lane as u64) << 32 | i,
                                reason: RerouteReason::AccuracyMiss,
                            },
                        );
                    }
                });
            }
        });
        let events = buf.events();
        assert_eq!(events.len(), LANES * CAP);
        for lane in 0..LANES {
            assert_eq!(buf.lane_emitted(lane), PER_LANE);
            let mine: Vec<u64> = events
                .iter()
                .filter(|e| e.lane == lane)
                .map(|e| match e.event {
                    TraceEvent::Reroute { tuple, .. } => {
                        assert_eq!(tuple >> 32, lane as u64, "torn event crossed lanes");
                        tuple & 0xFFFF_FFFF
                    }
                    other => panic!("unexpected event {other:?}"),
                })
                .collect();
            let expected: Vec<u64> = (PER_LANE - CAP as u64..PER_LANE).collect();
            assert_eq!(mine, expected, "lane {lane} retention drifted");
        }
    }

    #[test]
    fn concurrent_reads_never_see_torn_events() {
        // One writer hammering a tiny ring while a reader polls: every
        // decoded event must be self-consistent (payload matches its own
        // redundant check word).
        let buf = TraceBuffer::new(1, 4);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let writer = buf.clone();
            let stop_ref = &stop;
            s.spawn(move || {
                for i in 0..200_000u64 {
                    // points and budget move in lockstep; a torn read
                    // breaks the invariant.
                    writer.emit(
                        0,
                        TraceEvent::ModelGrow {
                            points: i,
                            budget: i.wrapping_mul(3),
                        },
                    );
                }
                stop_ref.store(true, Ordering::Release);
            });
            while !stop.load(Ordering::Acquire) {
                for e in buf.events() {
                    match e.event {
                        TraceEvent::ModelGrow { points, budget } => {
                            assert_eq!(budget, points.wrapping_mul(3), "torn slot surfaced");
                        }
                        other => panic!("unexpected event {other:?}"),
                    }
                }
            }
        });
    }

    #[test]
    fn summary_attributes_causes_and_phases() {
        let buf = TraceBuffer::new(2, 64);
        buf.emit(
            0,
            TraceEvent::PhaseStart {
                phase: TracePhase::Fast,
            },
        );
        for i in 0..3 {
            buf.emit(
                0,
                TraceEvent::Reroute {
                    tuple: i,
                    reason: RerouteReason::AccuracyMiss,
                },
            );
        }
        buf.emit(
            1,
            TraceEvent::Reroute {
                tuple: 9,
                reason: RerouteReason::Forced,
            },
        );
        buf.emit(
            0,
            TraceEvent::ModelGrow {
                points: 15,
                budget: 16,
            },
        );
        buf.emit(
            0,
            TraceEvent::CapHit {
                points: 16,
                budget: 16,
            },
        );
        buf.emit(
            1,
            TraceEvent::CertifyFail {
                pair: (3, 5),
                bound_gap: 0.5,
            },
        );
        buf.emit(
            1,
            TraceEvent::CertifyFail {
                pair: (3, 6),
                bound_gap: f64::INFINITY,
            },
        );
        buf.emit(
            0,
            TraceEvent::PhaseEnd {
                phase: TracePhase::Fast,
            },
        );
        let s = buf.summary_since(0);
        assert_eq!(s.total_reroutes(), 4);
        assert_eq!(
            s.top_reroute_reasons(),
            vec![(RerouteReason::AccuracyMiss, 3), (RerouteReason::Forced, 1)]
        );
        assert_eq!(s.model_grows, 1);
        assert_eq!(s.cap_hits, 1);
        assert_eq!(s.model_state, Some((16, 16)));
        assert_eq!(s.certify_fails, 2);
        assert_eq!(s.max_bound_gap, 0.5, "infinite gaps excluded from max");
        let text = s.render();
        assert!(
            text.contains("reroutes: accuracy_miss=3 forced=1"),
            "{text}"
        );
        assert!(text.contains("cap_hits=1"), "{text}");
        assert!(text.contains("fails=2"), "{text}");
    }

    #[test]
    fn clear_keeps_watermarks_valid() {
        let buf = TraceBuffer::new(1, 8);
        buf.emit(
            0,
            TraceEvent::ModelGrow {
                points: 1,
                budget: 0,
            },
        );
        let mark = buf.watermark();
        buf.clear();
        assert!(buf.events().is_empty());
        buf.emit(
            0,
            TraceEvent::ModelGrow {
                points: 2,
                budget: 0,
            },
        );
        assert_eq!(buf.events_since(mark).len(), 1, "seq keeps climbing");
    }

    #[test]
    fn lane_overflow_wraps_instead_of_panicking() {
        let buf = TraceBuffer::new(2, 8);
        buf.emit(
            7,
            TraceEvent::CapHit {
                points: 1,
                budget: 1,
            },
        );
        let events = buf.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].lane, 7 % 2);
    }
}
