//! The [`MetricsRegistry`]: named handles plus snapshot/export.

use crate::json::JsonObj;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    enabled: Arc<AtomicBool>,
    /// Registry creation time — the origin of the monotonic `uptime_ns`
    /// stamp on exported snapshots.
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The process-local metrics namespace. Cloning is cheap (shared `Arc`);
/// every clone sees the same handles and the same enabled switch.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a short-lived
/// lock and returns a cloneable handle; all subsequent recording through
/// the handle is lock-free. Handles registered under one name share one
/// cell, so independently-wired components accumulate into the same
/// metric.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// A registry with recording enabled.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A registry whose handles are all no-ops until
    /// [`set_enabled`](MetricsRegistry::set_enabled)`(true)`.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            inner: Arc::new(Inner {
                enabled: Arc::new(AtomicBool::new(enabled)),
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Flip recording for every handle this registry ever issued.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether handles currently record.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("counter registry");
        map.entry(name.to_string())
            .or_insert_with(|| Counter::with_switch(self.inner.enabled.clone()))
            .clone()
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("gauge registry");
        map.entry(name.to_string())
            .or_insert_with(|| Gauge::with_switch(self.inner.enabled.clone()))
            .clone()
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("histogram registry");
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::with_switch(self.inner.enabled.clone()))
            .clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Monotonic nanoseconds since this registry was created (saturating
    /// at `u64::MAX` after ~584 years).
    pub fn uptime_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Zero every registered handle in place. Names and handle identity
    /// survive — components keep recording into the same cells — so this
    /// re-baselines a long-running session between experiments (REPL
    /// `\metrics reset`).
    pub fn reset(&self) {
        for c in self
            .inner
            .counters
            .lock()
            .expect("counter registry")
            .values()
        {
            c.reset();
        }
        for g in self.inner.gauges.lock().expect("gauge registry").values() {
            g.reset();
        }
        for h in self
            .inner
            .histograms
            .lock()
            .expect("histogram registry")
            .values()
        {
            h.reset();
        }
    }

    /// Serialize the current snapshot, stamped so the export is
    /// self-describing:
    ///
    /// ```json
    /// {"uptime_ns": 123456, "enabled": true,
    ///  "counters": {...}, "gauges": {...}, "histograms": {...}}
    /// ```
    ///
    /// The inner sections are exactly [`Snapshot::to_json`].
    pub fn to_json(&self) -> String {
        let snap = self.snapshot().to_json();
        // Splice the stamp in front of the snapshot's own members (the
        // snapshot serializes as `{"counters": ...}` — never empty).
        let body = snap.strip_prefix('{').expect("snapshot JSON is an object");
        let mut root = JsonObj::new();
        root.u64("uptime_ns", self.uptime_ns())
            .bool("enabled", self.is_enabled());
        let mut s = root.finish();
        s.pop(); // drop the closing brace
        s.push_str(", ");
        s.push_str(body);
        s
    }

    /// Render the current snapshot — see [`Snapshot::render`].
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// A point-in-time copy of a registry, used for rendering, JSON export,
/// and per-query attribution via [`delta`](Snapshot::delta).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0)
            && self.histograms.values().all(|h| h.count == 0)
    }

    /// What happened between `earlier` and `self`: counters and histogram
    /// counts/sums are differenced; gauges keep the later value (they are
    /// levels, not totals); histogram maxima keep the later value (maxima
    /// are not invertible). Metrics that only exist in `self` pass
    /// through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => h.delta(e),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// The subset whose metric names start with `prefix` (what the REPL's
    /// `\metrics uql.` filter renders: one subsystem, not the whole
    /// registry dump).
    pub fn filtered(&self, prefix: &str) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }

    /// Hand-rolled JSON export (no serde in this workspace):
    ///
    /// ```json
    /// {"counters": {"name": 1},
    ///  "gauges": {"name": 2},
    ///  "histograms": {"name": {"count": 3, "sum": 30, "max": 20,
    ///                           "mean": 10.0, "p50": 15, "p95": 20,
    ///                           "p99": 20}}}
    /// ```
    ///
    /// Bucket arrays are omitted: consumers scrape the derived
    /// statistics, and the full resolution stays available in-process.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObj::new();
        for (k, &v) in &self.counters {
            counters.u64(k, v);
        }
        let mut gauges = JsonObj::new();
        for (k, &v) in &self.gauges {
            gauges.u64(k, v);
        }
        let mut histograms = JsonObj::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObj::new();
            o.u64("count", h.count)
                .u64("sum", h.sum)
                .u64("max", h.max)
                .f64("mean", h.mean())
                .u64("p50", h.quantile(0.5))
                .u64("p95", h.quantile(0.95))
                .u64("p99", h.quantile(0.99));
            histograms.raw(k, &o.finish());
        }
        let mut root = JsonObj::new();
        root.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms.finish());
        root.finish()
    }

    /// Human-readable dump (what the REPL `\metrics` command prints).
    /// Histograms whose name ends in `_ns` render as durations.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &self.counters {
                s.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                s.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let fmt_v = |v: u64| -> String {
                    if k.ends_with("_ns") {
                        format!("{:.2?}", Duration::from_nanos(v))
                    } else {
                        v.to_string()
                    }
                };
                let mean = if k.ends_with("_ns") {
                    format!("{:.2?}", Duration::from_nanos(h.mean() as u64))
                } else {
                    format!("{:.2}", h.mean())
                };
                s.push_str(&format!(
                    "  {k}: count={} mean={} p50={} p95={} p99={} max={}\n",
                    h.count,
                    mean,
                    fmt_v(h.quantile(0.5)),
                    fmt_v(h.quantile(0.95)),
                    fmt_v(h.quantile(0.99)),
                    fmt_v(h.max),
                ));
            }
        }
        if s.is_empty() {
            s.push_str("(no metrics recorded)\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn handles_share_cells_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn disable_switch_gates_every_handle() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.inc();
        h.record(7);
        reg.set_enabled(false);
        c.inc();
        h.record(7);
        reg.set_enabled(true);
        c.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 2);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn snapshot_delta_attributes_a_window() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events");
        c.add(5);
        let before = reg.snapshot();
        c.add(3);
        reg.gauge("level").set(9);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counters["events"], 3);
        assert_eq!(d.gauges["level"], 9);
    }

    #[test]
    fn to_json_is_valid_and_greppable() {
        let reg = MetricsRegistry::new();
        reg.counter("sched.verdict.accept").add(4);
        reg.gauge("olgapro.model_points").set(17);
        reg.histogram("uql.exec_ns").record(1_500);
        let json = reg.to_json();
        validate(&json).expect("registry JSON must parse");
        assert!(json.contains("\"sched.verdict.accept\": 4"));
        assert!(json.contains("\"olgapro.model_points\": 17"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn to_json_is_stamped_with_uptime_and_switch_state() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        let json = reg.to_json();
        validate(&json).expect("stamped JSON must parse");
        assert!(json.starts_with("{\"uptime_ns\": "), "{json}");
        assert!(json.contains("\"enabled\": true"), "{json}");
        assert!(json.contains("\"counters\": {\"c\": 1}"), "{json}");
        reg.set_enabled(false);
        assert!(reg.to_json().contains("\"enabled\": false"));
        // The stamp is monotonic.
        let parse_uptime = |s: &str| -> u64 {
            let v = crate::json::parse(s).unwrap();
            v.get("uptime_ns").and_then(|u| u.as_f64()).unwrap() as u64
        };
        let a = parse_uptime(&reg.to_json());
        let b = parse_uptime(&reg.to_json());
        assert!(b >= a, "uptime went backwards: {a} -> {b}");
    }

    #[test]
    fn reset_rebaselines_without_breaking_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(7);
        g.set(9);
        h.record(1_000);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 0);
        assert_eq!(snap.gauges["g"], 0);
        assert_eq!(snap.histograms["h"].count, 0);
        assert_eq!(snap.histograms["h"].sum, 0);
        assert_eq!(snap.histograms["h"].max, 0);
        assert!(snap.histograms["h"].buckets.iter().all(|&b| b == 0));
        // Old handles keep recording into the same cells.
        c.inc();
        h.record(2);
        assert_eq!(reg.counter("c").get(), 1);
        assert_eq!(reg.histogram("h").snapshot().count, 1);
    }

    #[test]
    fn delta_survives_reregistration_of_a_same_name_handle() {
        // The satellite-spec edge case: a component drops its handle and a
        // later component re-registers the same name. Registration is
        // get-or-create, so the new handle shares the old cell and a delta
        // across the re-registration attributes only the new window.
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("sched.verdict.reroute");
        let h1 = reg.histogram("sched.fast_phase_ns");
        c1.add(5);
        h1.record(100);
        drop(c1);
        drop(h1);
        let before = reg.snapshot();
        let c2 = reg.counter("sched.verdict.reroute");
        let h2 = reg.histogram("sched.fast_phase_ns");
        assert_eq!(c2.get(), 5, "re-registration must not zero the cell");
        c2.add(3);
        h2.record(200);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counters["sched.verdict.reroute"], 3);
        assert_eq!(d.histograms["sched.fast_phase_ns"].count, 1);
        assert_eq!(d.histograms["sched.fast_phase_ns"].sum, 200);
    }

    #[test]
    fn filtered_keeps_one_subsystem() {
        let reg = MetricsRegistry::new();
        reg.counter("uql.prepared_cache.hits").add(2);
        reg.counter("sched.verdict.accept").add(9);
        reg.gauge("olgapro.model_points").set(16);
        reg.histogram("uql.exec_ns").record(500);
        let f = reg.snapshot().filtered("uql.");
        assert_eq!(f.counters.len(), 1);
        assert_eq!(f.counters["uql.prepared_cache.hits"], 2);
        assert!(f.gauges.is_empty());
        assert_eq!(f.histograms.len(), 1);
        let text = f.render();
        assert!(text.contains("uql.exec_ns"), "{text}");
        assert!(!text.contains("sched."), "{text}");
        // A prefix matching nothing renders the empty-registry line.
        assert!(reg
            .snapshot()
            .filtered("nope.")
            .render()
            .contains("no metrics"));
    }

    #[test]
    fn delta_across_reset_saturates_instead_of_wrapping() {
        // The reset edge case: `earlier` was snapped before a
        // `MetricsRegistry::reset()`, so the current totals are *smaller*
        // than the baseline. Histogram count/sum/bucket deltas must
        // saturate at 0 like counters do — never wrap toward `u64::MAX`.
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("lat_ns");
        c.add(7);
        for v in [1_000, 3_000, 5_000] {
            h.record(v);
        }
        let earlier = reg.snapshot();
        reg.reset();
        c.inc();
        h.record(50);
        let d = reg.snapshot().delta(&earlier);
        assert_eq!(d.counters["c"], 0, "counter saturates");
        let dh = &d.histograms["lat_ns"];
        assert_eq!(dh.count, 0, "count saturates like a counter");
        assert_eq!(dh.sum, 0, "sum saturates like a counter");
        assert!(
            dh.buckets.iter().all(|&b| b <= 1),
            "no bucket wraps: {:?}",
            dh.buckets
        );
        assert_eq!(dh.mean(), 0.0, "empty-window mean degrades to 0, not NaN");
        assert_eq!(dh.max, 50, "max keeps the later value (not invertible)");
        // The window is renderable and exportable without panicking.
        crate::json::validate(&d.to_json()).expect("post-reset delta exports");
        assert!(d.render().contains("lat_ns"));
    }

    #[test]
    fn mean_is_exact_and_rendered_everywhere() {
        // `\metrics` and `EXPLAIN ANALYZE` both render through
        // `Snapshot::render`/`to_json`; the exact sum/count mean must
        // appear in both (bucket-edge p50/p95 overstate central
        // tendency).
        let reg = MetricsRegistry::new();
        let h = reg.histogram("vals");
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(reg.snapshot().histograms["vals"].mean(), 25.0);
        let text = reg.render();
        assert!(text.contains("mean=25.00"), "{text}");
        let json = reg.to_json();
        assert!(json.contains("\"mean\": 25.0"), "{json}");
        // Duration-valued histograms render the mean as a duration too.
        reg.histogram("t_ns").record(2_000_000);
        assert!(
            reg.render().contains("t_ns: count=1 mean=2.00ms"),
            "{}",
            reg.render()
        );
    }

    #[test]
    fn render_is_stable_and_humane() {
        let reg = MetricsRegistry::new();
        assert!(reg.render().contains("no metrics"));
        reg.counter("a.b").inc();
        reg.histogram("lat_ns").record(2_000_000);
        let text = reg.render();
        assert!(text.contains("a.b = 1"));
        assert!(text.contains("lat_ns: count=1"));
        assert!(
            text.contains("ms"),
            "ns-suffixed histograms render as durations: {text}"
        );
    }
}
