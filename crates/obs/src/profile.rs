//! Collapsed-stack profile export: fold the trace ring's phase brackets
//! into flamegraph-compatible `a;b;c count` lines.
//!
//! Each lane's [`PhaseStart`](crate::TraceEvent::PhaseStart) /
//! [`PhaseEnd`](crate::TraceEvent::PhaseEnd) brackets form a nesting
//! (`exec` wraps the scheduler's `fast`/`slow`, a join's `warmup`/`main`
//! wrap their batch phases), so the fold is a per-lane stack walk: every
//! closed bracket contributes its *self time* (bracket span minus
//! enclosed child spans) to the `;`-joined path of phases open at close
//! time. Counts are nanoseconds — `flamegraph.pl < profile.txt` or any
//! speedscope-style viewer renders the output directly.
//!
//! The ring is drop-oldest, so a window may open mid-bracket: an end with
//! no matching start is skipped, a start with no end contributes nothing.
//! Multiple statements accumulate — the profile answers "where has this
//! session spent its time", statement-windowed attribution stays with
//! `EXPLAIN TRACE`.

use crate::trace::{TimedEvent, TraceBuffer, TraceEvent, TracePhase};
use std::collections::BTreeMap;

/// Fold phase brackets into collapsed-stack lines, sorted by path. Counts
/// are self-time nanoseconds; zero-self-time frames are omitted.
pub fn collapsed_stacks(events: &[TimedEvent]) -> String {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    // Per-lane open-bracket stacks: (phase, start time, child span total).
    let mut stacks: BTreeMap<usize, Vec<(TracePhase, u64, u64)>> = BTreeMap::new();
    for e in events {
        let stack = stacks.entry(e.lane).or_default();
        match e.event {
            TraceEvent::PhaseStart { phase } => stack.push((phase, e.t_ns, 0)),
            TraceEvent::PhaseEnd { phase } => {
                // Unwind to the matching open bracket; orphaned inner
                // frames (their starts aged out of the ring, or the
                // bracket never closed) are discarded unattributed.
                let Some(at) = stack.iter().rposition(|&(p, _, _)| p == phase) else {
                    continue;
                };
                stack.truncate(at + 1);
                let (_, t0, child_ns) = stack.pop().expect("rposition hit");
                let total = e.t_ns.saturating_sub(t0);
                let self_ns = total.saturating_sub(child_ns);
                let mut path: Vec<&str> = stack.iter().map(|&(p, _, _)| p.as_str()).collect();
                path.push(phase.as_str());
                if self_ns > 0 {
                    *totals.entry(path.join(";")).or_default() += self_ns;
                }
                if let Some(parent) = stack.last_mut() {
                    parent.2 += total;
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (path, ns) in &totals {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

impl TraceBuffer {
    /// The whole ring as a collapsed-stack profile — see
    /// [`collapsed_stacks`]. What the REPL's `\profile` exports.
    pub fn to_collapsed(&self) -> String {
        collapsed_stacks(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_ns: u64, lane: usize, event: TraceEvent) -> TimedEvent {
        TimedEvent {
            seq,
            t_ns,
            lane,
            event,
        }
    }

    fn start(phase: TracePhase) -> TraceEvent {
        TraceEvent::PhaseStart { phase }
    }

    fn end(phase: TracePhase) -> TraceEvent {
        TraceEvent::PhaseEnd { phase }
    }

    #[test]
    fn nested_brackets_attribute_self_time() {
        use TracePhase::*;
        // exec [0, 100] wrapping fast [10, 40] and slow [40, 90]:
        // exec self = 100 - 30 - 50 = 20.
        let events = vec![
            ev(1, 0, 0, start(Exec)),
            ev(2, 10, 0, start(Fast)),
            ev(3, 40, 0, end(Fast)),
            ev(4, 40, 0, start(Slow)),
            ev(5, 90, 0, end(Slow)),
            ev(6, 100, 0, end(Exec)),
        ];
        let out = collapsed_stacks(&events);
        assert_eq!(out, "exec 20\nexec;fast 30\nexec;slow 50\n");
    }

    #[test]
    fn sibling_phases_and_repeats_accumulate() {
        use TracePhase::*;
        let events = vec![
            ev(1, 0, 0, start(Parse)),
            ev(2, 5, 0, end(Parse)),
            ev(3, 5, 0, start(Bind)),
            ev(4, 12, 0, end(Bind)),
            ev(5, 20, 0, start(Parse)),
            ev(6, 28, 0, end(Parse)),
        ];
        let out = collapsed_stacks(&events);
        assert_eq!(out, "bind 7\nparse 13\n");
    }

    #[test]
    fn lanes_fold_independently() {
        use TracePhase::*;
        // Lane 1's fast bracket must not nest under lane 0's exec.
        let events = vec![
            ev(1, 0, 0, start(Exec)),
            ev(2, 10, 1, start(Fast)),
            ev(3, 30, 1, end(Fast)),
            ev(4, 50, 0, end(Exec)),
        ];
        let out = collapsed_stacks(&events);
        assert_eq!(out, "exec 50\nfast 20\n");
    }

    #[test]
    fn truncated_ring_degrades_gracefully() {
        use TracePhase::*;
        // An end whose start aged out is skipped; an unclosed start
        // contributes nothing; an orphaned inner frame is discarded when
        // its parent closes.
        let events = vec![
            ev(1, 10, 0, end(Fast)), // start lost to the ring
            ev(2, 20, 0, start(Exec)),
            ev(3, 25, 0, start(Slow)), // never ends
            ev(4, 60, 0, end(Exec)),
            ev(5, 70, 0, start(Main)), // still open at export
        ];
        let out = collapsed_stacks(&events);
        assert_eq!(out, "exec 40\n");
    }

    /// Burn enough cycles that consecutive emits get distinct nanosecond
    /// stamps (a zero-span bracket would legitimately fold to nothing).
    fn spin() {
        let mut x = 0u64;
        for i in 0..50_000u64 {
            x = x.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(x);
    }

    #[test]
    fn buffer_export_matches_event_fold() {
        use TracePhase::*;
        let buf = TraceBuffer::new(2, 64);
        buf.emit(0, start(Exec));
        spin();
        buf.emit(0, start(Fast));
        spin();
        buf.emit(0, end(Fast));
        spin();
        buf.emit(0, end(Exec));
        let out = buf.to_collapsed();
        assert_eq!(out, collapsed_stacks(&buf.events()));
        assert!(out.contains("exec;fast "), "{out}");
        for line in out.lines() {
            let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
            assert!(!path.is_empty());
            count.parse::<u64>().expect("integer count");
        }
    }
}
