//! Continuous monitoring over a whole [`MetricsRegistry`]: bounded
//! per-metric time-series rings, declarative alert rules, and a live
//! dashboard — the registry-wide generalization of the stream engine's
//! `HealthMonitor`.
//!
//! The pieces:
//!
//! * [`TsRing`] / [`TsStore`] — one drop-oldest ring of [`TsPoint`]s per
//!   derived series. Sampling a registry turns each [`Snapshot::delta`]
//!   window into *rate points*: a counter `c` yields `c.rate`
//!   (increments/second), a gauge keeps its name and its level, a
//!   histogram `h` yields windowed `h.p50` / `h.p95` (bucket-upper-edge
//!   quantiles of the window's records) and `h.count` (records/second).
//! * [`Monitor`] — owns the store, a [`Sampler`]-shared last-snapshot
//!   baseline, the [`AlertRule`] set, and a bounded log of
//!   firing/resolved [`AlertEvent`] transitions. Sampling is either
//!   **tick-driven** ([`Monitor::tick`] / [`Monitor::tick_at`] — what
//!   deterministic tests and the REPL use; no sleeps anywhere) or a
//!   background [`Sampler`] thread at a configurable cadence
//!   ([`Monitor::start`]).
//! * [`AlertRule`] — `metric` + condition + `for_samples` debounce. A
//!   [`Threshold`] compares the newest point; a [`Trend`] compares the
//!   ring's two halves (mean of the earlier half vs. mean of the later
//!   half), so reroute-rate spikes, `cap_hits` bursts, and throughput
//!   decay are declared, not hand-coded per engine.
//!
//! The obs-stack hard rules hold: monitoring only *reads* snapshots, so
//! emitted distributions and digests are byte-identical with the sampler
//! on or off (pinned by `udf-lang`'s digest-parity suite), and a context
//! that never ticks pays nothing.

use crate::fmt::KvLine;
use crate::json::JsonObj;
use crate::registry::{MetricsRegistry, Snapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One reading of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsPoint {
    /// Nanoseconds since the sampled registry's epoch.
    pub t_ns: u64,
    /// Rate (for `.rate`/`.count` series), level (gauges), or windowed
    /// quantile (`.p50`/`.p95`).
    pub value: f64,
}

/// A bounded drop-oldest ring of [`TsPoint`]s (the same discipline as the
/// trace ring and the stream health ring: old history ages out, recording
/// never blocks on a full buffer).
#[derive(Debug, Clone)]
pub struct TsRing {
    capacity: usize,
    points: VecDeque<TsPoint>,
}

impl TsRing {
    /// An empty ring holding at most `capacity` points (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TsRing {
            capacity,
            points: VecDeque::with_capacity(capacity),
        }
    }

    /// Append a point, dropping the oldest when full.
    pub fn push(&mut self, p: TsPoint) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(p);
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The newest point, if any.
    pub fn latest(&self) -> Option<TsPoint> {
        self.points.back().copied()
    }

    /// Points oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TsPoint> {
        self.points.iter()
    }

    /// Mean value of the earlier and later half of the window. `None`
    /// until both halves hold at least one point (< 2 points total) — the
    /// same "no verdict before a comparable split" contract as
    /// `HealthTrend`'s optional fields.
    pub fn half_means(&self) -> Option<(f64, f64)> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        let mid = n / 2;
        let mean = |s: &mut dyn Iterator<Item = &TsPoint>, len: usize| {
            s.map(|p| p.value).sum::<f64>() / len as f64
        };
        let earlier = mean(&mut self.points.iter().take(mid), mid);
        let later = mean(&mut self.points.iter().skip(mid), n - mid);
        Some((earlier, later))
    }

    /// Sparkline-style drift arrow from the half-window split: `↑` when
    /// the later half runs ≥ 5% above the earlier, `↓` when ≥ 5% below,
    /// `→` when steady, `·` before both halves exist.
    pub fn trend_arrow(&self) -> &'static str {
        match self.half_means() {
            None => "·",
            Some((earlier, later)) => {
                let band = earlier.abs().max(1e-12) * 0.05;
                if later - earlier > band {
                    "↑"
                } else if earlier - later > band {
                    "↓"
                } else {
                    "→"
                }
            }
        }
    }
}

/// Default per-series ring capacity: four minutes of history at the
/// REPL's statement-driven cadence or a 1 s background cadence.
pub const DEFAULT_RING_CAPACITY: usize = 240;

/// The per-metric ring map. Series appear on first sample; every ring
/// shares one capacity.
#[derive(Debug, Clone)]
pub struct TsStore {
    capacity: usize,
    series: BTreeMap<String, TsRing>,
}

impl TsStore {
    /// An empty store whose rings hold `capacity` points each.
    pub fn new(capacity: usize) -> Self {
        TsStore {
            capacity: capacity.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The shared ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of series seen so far.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Sorted series names.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// The ring for `name`, if it ever recorded.
    pub fn get(&self, name: &str) -> Option<&TsRing> {
        self.series.get(name)
    }

    /// Append one point to `name`'s ring (created on first use).
    pub fn push(&mut self, name: &str, t_ns: u64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TsRing::new(self.capacity))
            .push(TsPoint { t_ns, value });
    }

    /// Fold one snapshot-delta window into rate points: counters become
    /// `name.rate` (increments/second), gauges keep their name and level,
    /// histograms become windowed `name.p50` / `name.p95` plus
    /// `name.count` (records/second). `dt_ns == 0` windows are dropped —
    /// no span, no rate.
    pub fn record_window(&mut self, t_ns: u64, dt_ns: u64, delta: &Snapshot, current: &Snapshot) {
        if dt_ns == 0 {
            return;
        }
        let secs = dt_ns as f64 / 1e9;
        for (name, &d) in &delta.counters {
            self.push(&format!("{name}.rate"), t_ns, d as f64 / secs);
        }
        for (name, &v) in &current.gauges {
            self.push(name, t_ns, v as f64);
        }
        for (name, h) in &delta.histograms {
            self.push(&format!("{name}.p50"), t_ns, h.quantile(0.5) as f64);
            self.push(&format!("{name}.p95"), t_ns, h.quantile(0.95) as f64);
            self.push(&format!("{name}.count"), t_ns, h.count as f64 / secs);
        }
    }

    /// The top-`k` `.rate`/`.count` series by newest value (the dashboard
    /// rows): `(name, latest, arrow)`, busiest first, zero-rate series
    /// skipped.
    pub fn top_rates(&self, k: usize) -> Vec<(&str, f64, &'static str)> {
        let mut rows: Vec<(&str, f64, &'static str)> = self
            .series
            .iter()
            .filter(|(name, _)| name.ends_with(".rate") || name.ends_with(".count"))
            .filter_map(|(name, ring)| {
                let latest = ring.latest()?.value;
                (latest > 0.0).then(|| (name.as_str(), latest, ring.trend_arrow()))
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        rows.truncate(k);
        rows
    }

    /// JSON Lines export: one `{"series", "t_ns", "value"}` object per
    /// retained point, series in name order, points oldest-first — the
    /// scrape format a future network front-end serves as-is.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, ring) in &self.series {
            for p in ring.iter() {
                let mut o = JsonObj::new();
                o.str("series", name)
                    .u64("t_ns", p.t_ns)
                    .f64("value", p.value);
                out.push_str(&o.finish());
                out.push('\n');
            }
        }
        out
    }
}

/// Threshold conditions compare a series' newest point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Breached while `latest > value`.
    Above(f64),
    /// Breached while `latest < value`.
    Below(f64),
}

/// Trend conditions compare the ring's half-window means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trend {
    /// Breached while `later_mean - earlier_mean >= delta`.
    Rising(f64),
    /// Breached while `later_mean / earlier_mean <= ratio` (requires a
    /// positive earlier mean — decay of nothing is not decay).
    Decaying(f64),
}

/// What an [`AlertRule`] evaluates each sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// Newest-point comparison.
    Threshold(Threshold),
    /// Half-window drift comparison.
    Trend(Trend),
}

/// One declarative alert: watch `metric`, evaluate `condition` per
/// sample, fire after `for_samples` consecutive breaches, resolve on the
/// first clean sample.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (the log and dashboard key).
    pub name: String,
    /// The watched series (a [`TsStore`] name, e.g.
    /// `sched.verdict.reroute.rate`).
    pub metric: String,
    /// The per-sample predicate.
    pub condition: Condition,
    /// Debounce: consecutive breached samples required before the rule
    /// fires (clamped to ≥ 1).
    pub for_samples: usize,
}

impl AlertRule {
    /// A [`Threshold::Above`] rule.
    pub fn above(name: impl Into<String>, metric: impl Into<String>, value: f64) -> Self {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            condition: Condition::Threshold(Threshold::Above(value)),
            for_samples: 1,
        }
    }

    /// A [`Threshold::Below`] rule.
    pub fn below(name: impl Into<String>, metric: impl Into<String>, value: f64) -> Self {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            condition: Condition::Threshold(Threshold::Below(value)),
            for_samples: 1,
        }
    }

    /// A [`Trend::Rising`] rule.
    pub fn rising(name: impl Into<String>, metric: impl Into<String>, delta: f64) -> Self {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            condition: Condition::Trend(Trend::Rising(delta)),
            for_samples: 1,
        }
    }

    /// A [`Trend::Decaying`] rule.
    pub fn decaying(name: impl Into<String>, metric: impl Into<String>, ratio: f64) -> Self {
        AlertRule {
            name: name.into(),
            metric: metric.into(),
            condition: Condition::Trend(Trend::Decaying(ratio)),
            for_samples: 1,
        }
    }

    /// Require `n` consecutive breached samples before firing.
    pub fn for_samples(mut self, n: usize) -> Self {
        self.for_samples = n.max(1);
        self
    }

    /// One evaluation against the watched ring. `None` = no verdict yet
    /// (series missing, empty, or the trend split not comparable) — which
    /// counts as a clean sample for debounce purposes.
    fn breached(&self, ring: Option<&TsRing>) -> Option<bool> {
        let ring = ring?;
        match self.condition {
            Condition::Threshold(t) => {
                let latest = ring.latest()?.value;
                Some(match t {
                    Threshold::Above(v) => latest > v,
                    Threshold::Below(v) => latest < v,
                })
            }
            Condition::Trend(t) => {
                let (earlier, later) = ring.half_means()?;
                match t {
                    Trend::Rising(delta) => Some(later - earlier >= delta),
                    Trend::Decaying(ratio) => (earlier > 0.0).then(|| later / earlier <= ratio),
                }
            }
        }
    }
}

/// One firing/resolved transition in the alert log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Sample timestamp of the transition.
    pub t_ns: u64,
    /// The rule that transitioned.
    pub rule: String,
    /// The watched series.
    pub metric: String,
    /// `true` = the rule started firing, `false` = it resolved.
    pub firing: bool,
    /// The series' newest value at the transition (0.0 when the series
    /// vanished).
    pub value: f64,
}

/// Per-rule debounce state.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    consecutive: usize,
    firing: bool,
}

/// Bound on the retained alert log (drop-oldest, like every ring here).
const ALERT_LOG_CAPACITY: usize = 256;

#[derive(Debug)]
struct MonitorInner {
    registry: MetricsRegistry,
    store: TsStore,
    /// `(t_ns, snapshot)` baseline of the previous sample; `None` until
    /// the first tick (which only baselines — a rate needs a window).
    last: Option<(u64, Snapshot)>,
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    log: VecDeque<AlertEvent>,
    samples: u64,
}

/// The registry-wide monitor: cheap to clone (shared state), sampled by
/// ticks or a background [`Sampler`]. See the module docs for the full
/// tour.
#[derive(Debug, Clone)]
pub struct Monitor {
    inner: Arc<Mutex<MonitorInner>>,
}

impl Monitor {
    /// A monitor over `registry` with [`DEFAULT_RING_CAPACITY`] rings and
    /// no rules.
    pub fn new(registry: &MetricsRegistry) -> Self {
        Monitor::with_capacity(registry, DEFAULT_RING_CAPACITY)
    }

    /// A monitor whose rings hold `capacity` points each.
    pub fn with_capacity(registry: &MetricsRegistry, capacity: usize) -> Self {
        Monitor {
            inner: Arc::new(Mutex::new(MonitorInner {
                registry: registry.clone(),
                store: TsStore::new(capacity),
                last: None,
                rules: Vec::new(),
                states: Vec::new(),
                log: VecDeque::new(),
                samples: 0,
            })),
        }
    }

    /// The demo rule set the REPL installs: the paper's long-running
    /// failure modes as engine-agnostic signals — any `cap_hits` in a
    /// window (the model stopped absorbing drift), a sustained
    /// reroute-rate climb (the model is falling behind), and a halved
    /// stream batch rate (throughput decay).
    pub fn standard_rules() -> Vec<AlertRule> {
        vec![
            AlertRule::above("cap_hits_burst", "olgapro.cap_hits.rate", 0.0),
            AlertRule::rising("reroute_spike", "sched.verdict.reroute.rate", 50.0).for_samples(2),
            AlertRule::decaying("throughput_decay", "stream.batch_ns.count", 0.5).for_samples(2),
        ]
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MonitorInner> {
        // Monitoring state is pure observation; recover it after a panic
        // rather than poisoning every later dashboard render.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Install a rule (evaluated from the next sample on).
    pub fn add_rule(&self, rule: AlertRule) {
        let mut inner = self.lock();
        inner.rules.push(rule);
        inner.states.push(RuleState::default());
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.lock().rules.len()
    }

    /// Number of samples folded so far (the baseline tick included).
    pub fn samples(&self) -> u64 {
        self.lock().samples
    }

    /// Sample the registry now: snapshot, delta against the previous
    /// sample, fold the window into the store, evaluate every rule.
    pub fn tick(&self) {
        let (t_ns, snap) = {
            let inner = self.lock();
            (inner.registry.uptime_ns(), inner.registry.snapshot())
        };
        self.tick_at(t_ns, snap);
    }

    /// The deterministic entry point: fold an explicit `(t_ns, snapshot)`
    /// sample. Tests drive synthetic series through this without sleeping
    /// or touching a real clock; [`Monitor::tick`] and the background
    /// [`Sampler`] both land here.
    pub fn tick_at(&self, t_ns: u64, snap: Snapshot) {
        let mut inner = self.lock();
        inner.samples += 1;
        if let Some((last_t, last_snap)) = inner.last.take() {
            let delta = snap.delta(&last_snap);
            let dt_ns = t_ns.saturating_sub(last_t);
            inner.store.record_window(t_ns, dt_ns, &delta, &snap);
        }
        inner.last = Some((t_ns, snap));
        evaluate_rules(&mut inner, t_ns);
    }

    /// Spawn a background sampler calling [`Monitor::tick`] every
    /// `cadence`. The returned guard stops and joins the thread on drop;
    /// dropping it is the only way to stop sampling, so the thread can
    /// never outlive its owner silently.
    pub fn start(&self, cadence: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = self.clone();
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(cadence);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                monitor.tick();
            }
        });
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Names of currently-firing rules, with the watched series' newest
    /// value.
    pub fn active_alerts(&self) -> Vec<(String, String, f64)> {
        let inner = self.lock();
        inner
            .rules
            .iter()
            .zip(&inner.states)
            .filter(|(_, s)| s.firing)
            .map(|(r, _)| {
                let value = inner
                    .store
                    .get(&r.metric)
                    .and_then(TsRing::latest)
                    .map_or(0.0, |p| p.value);
                (r.name.clone(), r.metric.clone(), value)
            })
            .collect()
    }

    /// The retained firing/resolved transitions, oldest first.
    pub fn alert_log(&self) -> Vec<AlertEvent> {
        self.lock().log.iter().cloned().collect()
    }

    /// Newest value of one series, for tests and ad-hoc probes.
    pub fn latest(&self, series: &str) -> Option<f64> {
        self.lock()
            .store
            .get(series)
            .and_then(|r| r.latest())
            .map(|p| p.value)
    }

    /// Number of points retained for one series.
    pub fn series_len(&self, series: &str) -> usize {
        self.lock().store.get(series).map_or(0, TsRing::len)
    }

    /// Number of distinct series the store has accumulated.
    pub fn series_count(&self) -> usize {
        self.lock().store.series_count()
    }

    /// JSON Lines export of every retained point — see
    /// [`TsStore::export_jsonl`].
    pub fn export_jsonl(&self) -> String {
        self.lock().store.export_jsonl()
    }

    /// The `\top` dashboard: a summary line, the top-`k` busiest rate
    /// series with trend arrows, active alerts, and the freshest log
    /// transitions.
    pub fn render_top(&self, k: usize) -> String {
        let inner = self.lock();
        let mut s = KvLine::new()
            .raw("monitor:")
            .field("samples", inner.samples)
            .field("series", inner.store.series_count())
            .field("rules", inner.rules.len())
            .field("firing", inner.states.iter().filter(|st| st.firing).count())
            .finish();
        s.push('\n');
        let rows = inner.store.top_rates(k);
        if rows.is_empty() {
            s.push_str("top rates: none yet (tick the monitor after running statements)\n");
        } else {
            s.push_str("top rates:\n");
            for (name, rate, arrow) in rows {
                s.push_str(&format!("  {name:<34} {rate:>12.1}/s {arrow}\n"));
            }
        }
        let firing: Vec<&AlertRule> = inner
            .rules
            .iter()
            .zip(&inner.states)
            .filter(|(_, st)| st.firing)
            .map(|(r, _)| r)
            .collect();
        if firing.is_empty() {
            s.push_str("alerts: none firing\n");
        } else {
            s.push_str("alerts:\n");
            for r in firing {
                let value = inner
                    .store
                    .get(&r.metric)
                    .and_then(TsRing::latest)
                    .map_or(0.0, |p| p.value);
                s.push_str(&format!(
                    "  FIRING {} on {} value={value:.1}\n",
                    r.name, r.metric
                ));
            }
        }
        const LOG_TAIL: usize = 4;
        if !inner.log.is_empty() {
            s.push_str("recent transitions:\n");
            let skip = inner.log.len().saturating_sub(LOG_TAIL);
            for e in inner.log.iter().skip(skip) {
                s.push_str(&format!(
                    "  [{:>8.3}s] {} {} value={:.1}\n",
                    e.t_ns as f64 / 1e9,
                    if e.firing { "FIRING" } else { "RESOLVED" },
                    e.rule,
                    e.value,
                ));
            }
        }
        s
    }
}

/// Evaluate every rule against the store after one sample, logging
/// firing/resolved transitions.
fn evaluate_rules(inner: &mut MonitorInner, t_ns: u64) {
    // Split-borrow the rule table from the store: evaluation reads the
    // store and mutates states/log.
    let MonitorInner {
        store,
        rules,
        states,
        log,
        ..
    } = inner;
    for (rule, state) in rules.iter().zip(states.iter_mut()) {
        let ring = store.get(&rule.metric);
        let value = ring.and_then(TsRing::latest).map_or(0.0, |p| p.value);
        match rule.breached(ring) {
            Some(true) => {
                state.consecutive += 1;
                if !state.firing && state.consecutive >= rule.for_samples {
                    state.firing = true;
                    push_event(log, t_ns, rule, true, value);
                }
            }
            // A clean sample (or no verdict yet) resets the debounce and
            // resolves immediately: alerts describe the present.
            Some(false) | None => {
                state.consecutive = 0;
                if state.firing {
                    state.firing = false;
                    push_event(log, t_ns, rule, false, value);
                }
            }
        }
    }
}

fn push_event(
    log: &mut VecDeque<AlertEvent>,
    t_ns: u64,
    rule: &AlertRule,
    firing: bool,
    value: f64,
) {
    if log.len() == ALERT_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(AlertEvent {
        t_ns,
        rule: rule.name.clone(),
        metric: rule.metric.clone(),
        firing,
        value,
    });
}

/// Guard over the background sampling thread — see [`Monitor::start`].
/// Dropping it stops and joins the thread.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic snapshot: one counter, one gauge, one histogram record.
    fn snap(counter: u64, gauge: u64, hist_records: &[u64]) -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(counter);
        reg.gauge("g").set(gauge);
        let h = reg.histogram("h");
        for &v in hist_records {
            h.record(v);
        }
        reg.snapshot()
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let mut ring = TsRing::new(3);
        for i in 0..5u64 {
            ring.push(TsPoint {
                t_ns: i,
                value: i as f64,
            });
        }
        assert_eq!(ring.len(), 3);
        let vals: Vec<f64> = ring.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
        assert_eq!(ring.latest().unwrap().value, 4.0);
    }

    #[test]
    fn half_means_need_both_halves() {
        let mut ring = TsRing::new(8);
        assert_eq!(ring.half_means(), None);
        assert_eq!(ring.trend_arrow(), "·");
        ring.push(TsPoint {
            t_ns: 0,
            value: 1.0,
        });
        assert_eq!(ring.half_means(), None, "one point has no later half");
        ring.push(TsPoint {
            t_ns: 1,
            value: 3.0,
        });
        assert_eq!(ring.half_means(), Some((1.0, 3.0)));
        assert_eq!(ring.trend_arrow(), "↑");
    }

    #[test]
    fn counters_become_rates_gauges_stay_levels() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.tick_at(0, snap(0, 0, &[]));
        // 100 increments over exactly one second → 100/s.
        mon.tick_at(SEC, snap(100, 7, &[10, 20, 30, 40]));
        assert_eq!(mon.latest("c.rate"), Some(100.0));
        assert_eq!(mon.latest("g"), Some(7.0));
        assert_eq!(mon.latest("h.count"), Some(4.0));
        // Windowed quantiles come from the delta's buckets (log₂ upper
        // edges: p50 of {10,20,30,40} brackets 20 → 31).
        let p50 = mon.latest("h.p50").unwrap();
        assert!(p50 >= 20.0, "p50 upper edge brackets the data: {p50}");
        let p95 = mon.latest("h.p95").unwrap();
        assert!(p95 >= 40.0, "p95 upper edge brackets the max: {p95}");
    }

    #[test]
    fn first_tick_only_baselines_and_zero_dt_is_dropped() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.tick_at(SEC, snap(50, 0, &[]));
        assert_eq!(mon.samples(), 1);
        assert_eq!(mon.series_len("c.rate"), 0, "no window on the first tick");
        // Same timestamp again: no span, no point.
        mon.tick_at(SEC, snap(80, 0, &[]));
        assert_eq!(mon.series_len("c.rate"), 0, "zero-dt window dropped");
        mon.tick_at(2 * SEC, snap(90, 0, &[]));
        assert_eq!(
            mon.latest("c.rate"),
            Some(10.0),
            "delta is vs newest baseline"
        );
    }

    #[test]
    fn window_rate_is_deltas_not_totals() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.tick_at(0, snap(1000, 0, &[]));
        mon.tick_at(SEC, snap(1010, 0, &[]));
        mon.tick_at(2 * SEC, snap(1030, 0, &[]));
        assert_eq!(mon.series_len("c.rate"), 2);
        assert_eq!(mon.latest("c.rate"), Some(20.0));
    }

    #[test]
    fn threshold_rule_fires_and_resolves() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.add_rule(AlertRule::above("burst", "c.rate", 50.0));
        mon.tick_at(0, snap(0, 0, &[]));
        assert!(mon.active_alerts().is_empty(), "baseline sample can't fire");
        mon.tick_at(SEC, snap(100, 0, &[])); // 100/s > 50
        let active = mon.active_alerts();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].0, "burst");
        assert_eq!(active[0].2, 100.0);
        mon.tick_at(2 * SEC, snap(110, 0, &[])); // 10/s → clean
        assert!(mon.active_alerts().is_empty());
        let log = mon.alert_log();
        assert_eq!(log.len(), 2, "one firing + one resolved transition");
        assert!(log[0].firing && log[0].rule == "burst");
        assert!(!log[1].firing);
        assert_eq!(log[0].t_ns, SEC);
        assert_eq!(log[1].t_ns, 2 * SEC);
    }

    #[test]
    fn for_samples_debounces_firing() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.add_rule(AlertRule::above("sustained", "c.rate", 50.0).for_samples(3));
        mon.tick_at(0, snap(0, 0, &[]));
        // Two hot samples: breached but debounced.
        mon.tick_at(SEC, snap(100, 0, &[]));
        mon.tick_at(2 * SEC, snap(200, 0, &[]));
        assert!(mon.active_alerts().is_empty(), "2 < for_samples=3");
        // A clean sample resets the streak.
        mon.tick_at(3 * SEC, snap(201, 0, &[]));
        mon.tick_at(4 * SEC, snap(301, 0, &[]));
        mon.tick_at(5 * SEC, snap(401, 0, &[]));
        assert!(mon.active_alerts().is_empty(), "streak restarted at 0");
        mon.tick_at(6 * SEC, snap(501, 0, &[]));
        assert_eq!(
            mon.active_alerts().len(),
            1,
            "third consecutive breach fires"
        );
        assert_eq!(mon.alert_log().len(), 1);
    }

    #[test]
    fn trend_rules_compare_half_windows() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.add_rule(AlertRule::rising("climb", "c.rate", 50.0));
        mon.add_rule(AlertRule::decaying("decay", "h.count", 0.5).for_samples(2));
        // Counter-rate windows 10/s, 10/s, 100/s, 100/s → the final ring
        // splits [10, 10] vs [100, 100], a +90 climb ≥ 50. Histogram
        // records land only in the first window, so its count rate decays
        // to 0 and stays there past the 2-sample debounce.
        let mut total = 0;
        let mut hist: Vec<u64> = Vec::new();
        for (i, (rate, recs)) in [(0, 0), (10, 4), (10, 0), (100, 0), (100, 0)]
            .iter()
            .enumerate()
        {
            total += rate;
            hist.extend(std::iter::repeat_n(5, *recs));
            mon.tick_at((i as u64 + 1) * SEC, snap(total, 0, &hist));
        }
        let active = mon.active_alerts();
        let names: Vec<&str> = active.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"climb"), "rising rule fired: {names:?}");
        assert!(names.contains(&"decay"), "decaying rule fired: {names:?}");
    }

    #[test]
    fn missing_series_is_no_verdict_not_a_breach() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 16);
        mon.add_rule(AlertRule::below("starved", "no.such.series", 1.0));
        mon.tick_at(0, snap(0, 0, &[]));
        mon.tick_at(SEC, snap(1, 0, &[]));
        assert!(mon.active_alerts().is_empty());
        assert!(mon.alert_log().is_empty());
    }

    #[test]
    fn store_rings_are_bounded() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 4);
        for i in 0..20u64 {
            mon.tick_at(i * SEC, snap(i * 10, 0, &[]));
        }
        assert_eq!(mon.series_len("c.rate"), 4, "ring bounded at capacity");
        assert_eq!(mon.latest("c.rate"), Some(10.0));
    }

    #[test]
    fn export_is_json_lines() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 8);
        mon.tick_at(0, snap(0, 3, &[]));
        mon.tick_at(SEC, snap(60, 3, &[]));
        let out = mon.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            crate::json::validate(line).expect("each line is one JSON object");
            assert!(line.starts_with("{\"series\": "), "{line}");
        }
        assert!(out.contains("\"series\": \"c.rate\""));
        assert!(out.contains("\"value\": 60"), "{out}");
    }

    #[test]
    fn dashboard_renders_rates_alerts_and_transitions() {
        let reg = MetricsRegistry::new();
        let mon = Monitor::with_capacity(&reg, 8);
        mon.add_rule(AlertRule::above("burst", "c.rate", 50.0));
        let empty = mon.render_top(5);
        assert!(empty.contains("none yet"), "{empty}");
        mon.tick_at(0, snap(0, 0, &[]));
        mon.tick_at(SEC, snap(100, 0, &[]));
        let top = mon.render_top(5);
        assert!(top.contains("monitor: samples=2"), "{top}");
        assert!(top.contains("c.rate"), "{top}");
        assert!(top.contains("FIRING burst on c.rate value=100.0"), "{top}");
        assert!(top.contains("recent transitions:"), "{top}");
        mon.tick_at(2 * SEC, snap(101, 0, &[]));
        let resolved = mon.render_top(5);
        assert!(resolved.contains("alerts: none firing"), "{resolved}");
        assert!(resolved.contains("RESOLVED burst"), "{resolved}");
    }

    #[test]
    fn top_rates_ranks_and_truncates() {
        let mut store = TsStore::new(8);
        store.push("a.rate", 0, 5.0);
        store.push("b.rate", 0, 50.0);
        store.push("c.count", 0, 20.0);
        store.push("zero.rate", 0, 0.0);
        store.push("level_gauge", 0, 999.0); // not a rate series
        let top = store.top_rates(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b.rate");
        assert_eq!(top[1].0, "c.count");
    }

    #[test]
    fn background_sampler_ticks_and_stops() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(5);
        let mon = Monitor::with_capacity(&reg, 32);
        let guard = mon.start(Duration::from_millis(1));
        // Wait until at least two real ticks landed (windowed rates need
        // a baseline plus one sample).
        let t0 = std::time::Instant::now();
        while mon.samples() < 2 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::yield_now();
        }
        assert!(mon.samples() >= 2, "sampler thread ticked");
        drop(guard);
        let after = mon.samples();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(mon.samples(), after, "dropping the guard stops sampling");
    }
}
