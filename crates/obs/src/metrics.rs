//! The atomic metric handles: counters, gauges, log₂ histograms, spans.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log₂ histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)`, and bucket 64 tops out at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log₂ bucket a value lands in (0 → 0, 1 → 1, `u64::MAX` → 64).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its reported quantile value).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// A monotonic event counter. Cloning shares the underlying cell; a
/// disabled handle is one relaxed load and a branch per operation.
#[derive(Clone, Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub(crate) fn with_switch(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            enabled,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A free-standing no-op counter (what un-wired components hold, so
    /// instrumented structs never need an `Option`).
    pub fn disabled() -> Self {
        Counter::with_switch(Arc::new(AtomicBool::new(false)))
    }

    /// Whether operations on this handle currently record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Zero the counter (re-baselining between experiments).
    pub(crate) fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// A last-value (or running-max) gauge.
#[derive(Clone, Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    pub(crate) fn with_switch(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            enabled,
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A free-standing no-op gauge.
    pub fn disabled() -> Self {
        Gauge::with_switch(Arc::new(AtomicBool::new(false)))
    }

    /// Whether operations on this handle currently record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Overwrite the gauge value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger (running maximum).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.enabled() {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Zero the gauge (re-baselining between experiments).
    pub(crate) fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Saturating sum of recorded values (never wraps).
    sum: AtomicU64,
    /// Exact maximum recorded value.
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed distribution of `u64` values — by convention
/// nanosecond latencies. Recording is lock-free: one bucket `fetch_add`,
/// a count, a saturating sum, and a `fetch_max`. Quantiles are
/// approximate (reported at the containing bucket's upper edge); `max`
/// is exact.
#[derive(Clone, Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    pub(crate) fn with_switch(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            enabled,
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// A free-standing no-op histogram.
    pub fn disabled() -> Self {
        Histogram::with_switch(Arc::new(AtomicBool::new(false)))
    }

    /// Whether operations on this handle currently record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled() {
            return;
        }
        let core = &*self.core;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add: a CAS loop so the sum can never wrap, even for
        // u64::MAX samples.
        let mut cur = core.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match core
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.enabled() {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Time a closure and record its duration. When disabled, the clock
    /// is never read — the closure runs bare.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !self.enabled() {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        self.record_duration(t0.elapsed());
        out
    }

    /// Open a [`Span`] that records into this histogram when dropped.
    /// Useful across early returns, where a closure would fight borrows.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: self.enabled().then(Instant::now),
        }
    }

    /// Zero every bucket and statistic (re-baselining between
    /// experiments). Not atomic with respect to concurrent recording: a
    /// racing `record` may land before or after the wipe, which is fine
    /// for the interactive reset this serves.
    pub(crate) fn reset(&self) {
        let core = &*self.core;
        for b in &core.buckets {
            b.store(0, Ordering::Relaxed);
        }
        core.count.store(0, Ordering::Relaxed);
        core.sum.store(0, Ordering::Relaxed);
        core.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.core;
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A timing guard from [`Histogram::span`]: records the elapsed time into
/// the histogram on drop (a no-op when the histogram is disabled).
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.hist.record_duration(t0.elapsed());
        }
    }
}

/// A point-in-time copy of one histogram's state. Fields are read with
/// relaxed loads, so a snapshot taken during concurrent recording may be
/// off by in-flight samples; snapshots taken between batches are exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Per-bucket counts (`HISTOGRAM_BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper edge of the bucket containing the
    /// `q`-th ranked sample (`q` clamped to `[0, 1]`). The true `max` is
    /// reported for the top-most occupied bucket, so `quantile(1.0)` is
    /// exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let last = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // The max lives in the last occupied bucket; it is a
                // tighter (and exact) upper edge than 2^i − 1.
                return if i == last { self.max } else { bucket_upper(i) };
            }
        }
        self.max
    }

    /// Subtract an earlier snapshot of the same histogram: bucket counts,
    /// `count`, and `sum` are differenced; `max` keeps the later value
    /// (maxima are not invertible).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // The edges the satellite spec calls out: 0, sub-µs, multi-s,
        // u64::MAX saturation.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(999), 10); // sub-µs latency in ns
        assert_eq!(bucket_index(2_500_000_000), 32); // 2.5 s in ns
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose range contains it.
        for v in [0u64, 1, 7, 1_000, 1_000_000, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "value {v} above bucket {i} edge");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "value {v} below bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_saturates_at_u64_max() {
        let h = Histogram::with_switch(Arc::new(AtomicBool::new(true)));
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.quantile(0.5), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::with_switch(Arc::new(AtomicBool::new(true)));
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        // Rank 500 lands in bucket 9 (256..=511).
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(1.0), 1000, "top quantile reports exact max");
        assert!(s.quantile(0.99) >= s.quantile(0.5));
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn zero_values_stay_in_bucket_zero() {
        let h = Histogram::with_switch(Arc::new(AtomicBool::new(true)));
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(5);
        g.set_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.record(5);
        h.record_duration(Duration::from_millis(1));
        let _ = h.time(|| 42);
        drop(h.span());
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::with_switch(Arc::new(AtomicBool::new(true)));
        {
            let _s = h.span();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        // 8 threads hammering cloned handles of the same counter and
        // histogram: totals must be exact (atomics, not racy read-modify-
        // write) and the histogram sum must equal the amount recorded.
        let c = Counter::with_switch(Arc::new(AtomicBool::new(true)));
        let h = Histogram::with_switch(Arc::new(AtomicBool::new(true)));
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS * PER_THREAD);
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum, n * (n - 1) / 2, "sum of 0..n");
        assert_eq!(snap.max, n - 1);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let h = Histogram::with_switch(Arc::new(AtomicBool::new(true)));
        h.record(10);
        let before = h.snapshot();
        h.record(20);
        h.record(30);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 50);
        assert_eq!(d.buckets.iter().sum::<u64>(), 2);
    }
}
