//! The observability core shared by every engine layer.
//!
//! Instrumentation here follows two hard rules:
//!
//! 1. **Metric-blind outputs.** Nothing in this crate feeds back into
//!    evaluation: counters and timers only *observe*. Seeds, digests, and
//!    ECDFs are byte-identical with metrics enabled or disabled — the
//!    determinism tests in `udf-stream` and `udf-lang` pin this.
//! 2. **Cheap enough to leave on.** Hot-path operations are lock-free
//!    (relaxed atomics); the only lock in the crate guards handle
//!    *registration*, which happens once per metric name. When a registry
//!    is disabled every operation degenerates to one relaxed load and a
//!    branch, and timers skip the `Instant::now()` syscall entirely — the
//!    `uql/overhead` bench pins the no-op cost at ≤ ~1%.
//!
//! The pieces:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — cloneable, thread-safe
//!   handles over shared atomic cells. Histograms are log₂-bucketed
//!   (65 buckets cover `0..=u64::MAX`) with approximate `p50/p95/p99`
//!   and an exact `max`, sized for nanosecond latencies.
//! * [`MetricsRegistry`] — names the handles, owns the shared
//!   enabled/disabled switch, and snapshots everything into a
//!   [`Snapshot`] for rendering, JSON export, or per-query
//!   [`Snapshot::delta`] attribution (what `EXPLAIN ANALYZE` uses).
//! * [`TraceBuffer`] — structured event tracing: per-worker lock-free
//!   ring buffers of typed [`TraceEvent`]s with causal context (why a
//!   tuple rerouted, when a model hit its cap, which join pair failed
//!   certification). Summarized per statement by `EXPLAIN TRACE`,
//!   exported to chrome://tracing via
//!   [`TraceBuffer::to_chrome_json`]. Both hard rules above apply
//!   unchanged: tracing is output-blind and a disabled buffer costs one
//!   relaxed load and a branch per emit.
//! * [`monitor`] — continuous monitoring over the whole registry:
//!   bounded per-metric time-series rings fed by snapshot-delta rate
//!   points (tick-driven or from a background [`Sampler`] thread),
//!   declarative [`AlertRule`]s with firing/resolved transitions, and
//!   the REPL's `\top` dashboard. [`collapsed_stacks`] folds the trace
//!   ring's phase brackets into flamegraph-compatible `a;b;c count`
//!   lines. Same hard rules: sampling only reads snapshots.
//! * [`json`] — the hand-rolled JSON writer, a validator, and a small
//!   materializing parser (for the `bench-gate` trajectory differ);
//!   there is no serde in this workspace.
//! * [`fmt`] — the shared `key=value` stats-line builder every report
//!   block (REPL, stream session, join executor, examples) renders with.

mod chrome;
pub mod fmt;
pub mod json;
mod metrics;
pub mod monitor;
mod profile;
mod registry;
mod trace;

pub use metrics::{
    bucket_index, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, Span,
    HISTOGRAM_BUCKETS,
};
pub use monitor::{
    AlertEvent, AlertRule, Condition, Monitor, Sampler, Threshold, Trend, TsPoint, TsRing, TsStore,
};
pub use profile::collapsed_stacks;
pub use registry::{MetricsRegistry, Snapshot};
pub use trace::{RerouteReason, TimedEvent, TraceBuffer, TraceEvent, TracePhase, TraceSummary};
