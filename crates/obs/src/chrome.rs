//! chrome://tracing export for [`TraceBuffer`](crate::TraceBuffer).
//!
//! Emits the Trace Event Format's JSON object form
//! (`{"traceEvents": [...]}`): phase brackets become duration events
//! (`"ph": "B"` / `"ph": "E"`) and every other trace event becomes a
//! thread-scoped instant event (`"ph": "i"`, `"s": "t"`) with its payload
//! under `args`. Lanes map to `tid`, the whole buffer to `pid` 1, and
//! timestamps are microseconds since buffer creation (the format's unit).
//!
//! Hand-rolled on [`crate::json`] — no serde in this workspace — and kept
//! honest by the same validator the benches use.

use crate::json::{JsonArr, JsonObj};
use crate::trace::{TimedEvent, TraceBuffer, TraceEvent};

/// Process id for every exported event (one buffer = one process).
const PID: u64 = 1;

fn event_json(ev: &TimedEvent) -> String {
    let mut obj = JsonObj::new();
    let ts_us = ev.t_ns as f64 / 1000.0;
    match ev.event {
        TraceEvent::PhaseStart { phase } => {
            obj.str("name", phase.as_str())
                .str("cat", "phase")
                .str("ph", "B")
                .f64("ts", ts_us)
                .u64("pid", PID)
                .u64("tid", ev.lane as u64);
        }
        TraceEvent::PhaseEnd { phase } => {
            obj.str("name", phase.as_str())
                .str("cat", "phase")
                .str("ph", "E")
                .f64("ts", ts_us)
                .u64("pid", PID)
                .u64("tid", ev.lane as u64);
        }
        other => {
            let mut args = JsonObj::new();
            match other {
                TraceEvent::Reroute { tuple, reason } => {
                    args.u64("tuple", tuple).str("reason", reason.as_str());
                }
                TraceEvent::ModelGrow { points, budget }
                | TraceEvent::ModelEvict { points, budget }
                | TraceEvent::CapHit { points, budget } => {
                    args.u64("points", points).u64("budget", budget);
                }
                TraceEvent::CertifyFail { pair, bound_gap } => {
                    // Non-finite gaps (no bracket computable) become null,
                    // matching the writer's number policy.
                    args.u64("left", u64::from(pair.0))
                        .u64("right", u64::from(pair.1))
                        .f64("bound_gap", bound_gap);
                }
                TraceEvent::PhaseStart { .. } | TraceEvent::PhaseEnd { .. } => unreachable!(),
            }
            obj.str("name", other.kind())
                .str("cat", "event")
                .str("ph", "i")
                .str("s", "t")
                .f64("ts", ts_us)
                .u64("pid", PID)
                .u64("tid", ev.lane as u64)
                .u64("seq", ev.seq)
                .raw("args", &args.finish());
        }
    }
    obj.finish()
}

impl TraceBuffer {
    /// Serialize every retained event as a chrome://tracing document.
    /// Load the result via `chrome://tracing` or Perfetto's legacy
    /// importer. Always a valid JSON object, even when empty.
    pub fn to_chrome_json(&self) -> String {
        let mut arr = JsonArr::new();
        for ev in self.events() {
            arr.raw(&event_json(&ev));
        }
        let mut root = JsonObj::new();
        root.raw("traceEvents", &arr.finish())
            .str("displayTimeUnit", "ms");
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::trace::{RerouteReason, TracePhase};

    #[test]
    fn empty_buffer_exports_valid_json() {
        let buf = TraceBuffer::disabled();
        let s = buf.to_chrome_json();
        validate(&s).unwrap();
        assert!(s.contains("\"traceEvents\": []"), "{s}");
    }

    #[test]
    fn export_covers_every_event_shape_and_validates() {
        let buf = TraceBuffer::new(2, 64);
        buf.emit(
            0,
            TraceEvent::PhaseStart {
                phase: TracePhase::Fast,
            },
        );
        buf.emit(
            0,
            TraceEvent::Reroute {
                tuple: 7,
                reason: RerouteReason::AccuracyMiss,
            },
        );
        buf.emit(
            1,
            TraceEvent::ModelGrow {
                points: 12,
                budget: 16,
            },
        );
        buf.emit(
            1,
            TraceEvent::ModelEvict {
                points: 15,
                budget: 16,
            },
        );
        buf.emit(
            1,
            TraceEvent::CapHit {
                points: 16,
                budget: 16,
            },
        );
        buf.emit(
            1,
            TraceEvent::CertifyFail {
                pair: (3, 9),
                bound_gap: 0.125,
            },
        );
        buf.emit(
            1,
            TraceEvent::CertifyFail {
                pair: (4, 9),
                bound_gap: f64::INFINITY,
            },
        );
        buf.emit(
            0,
            TraceEvent::PhaseEnd {
                phase: TracePhase::Fast,
            },
        );
        let s = buf.to_chrome_json();
        validate(&s).unwrap();
        assert!(s.contains("\"ph\": \"B\""), "{s}");
        assert!(s.contains("\"ph\": \"E\""), "{s}");
        assert!(s.contains("\"ph\": \"i\""), "{s}");
        assert!(s.contains("\"reason\": \"accuracy_miss\""), "{s}");
        assert!(s.contains("\"name\": \"cap_hit\""), "{s}");
        assert!(
            s.contains("\"bound_gap\": null"),
            "infinite gap must export as null: {s}"
        );
        assert!(s.contains("\"bound_gap\": 0.125"), "{s}");
        assert!(s.contains("\"tid\": 1"), "{s}");
    }
}
