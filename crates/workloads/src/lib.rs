//! Workloads for the evaluation (§6.1, §6.4).
//!
//! * [`synthetic`] — UDFs generated from Gaussian mixtures with controlled
//!   bumpiness and spikiness (the paper's F1–F4 family, Fig. 4) at any
//!   dimensionality, plus uncertain-input generators (Gaussian, Gamma,
//!   exponential);
//! * [`astro`] — the astrophysics case study: flat-ΛCDM cosmology and the
//!   three UDFs `GalAge`, `ComoveVol`, `AngDist` re-implemented from their
//!   standard formulas (the paper used the IDL Astronomy Library — see
//!   DESIGN.md §3 for the substitution argument), and a synthetic SDSS-like
//!   galaxy catalog with Gaussian-uncertain redshifts;
//! * [`quadrature`] — adaptive Simpson integration used by the cosmology
//!   functions;
//! * [`registry`] — the named UDF catalog (function + input-domain
//!   metadata) shared by the UQL front-end, examples, and benches.

pub mod astro;
pub mod quadrature;
pub mod registry;
pub mod synthetic;

pub use astro::{Cosmology, GalaxyCatalog};
pub use registry::{UdfCatalog, UdfEntry};
pub use synthetic::{GaussianMixtureFn, PaperFunction};
