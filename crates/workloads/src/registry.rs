//! The UDF catalog: named, registered UDFs with input-domain metadata.
//!
//! Before this registry every consumer (examples, benches, the UQL
//! front-end) re-built the same `BlackBoxUdf` wrappers by hand and guessed
//! output ranges ad hoc. A [`UdfCatalog`] owns that once: each entry pairs
//! the black-box function with the metadata a planner needs — the input
//! domain it is meant to be evaluated on and an output-range estimate that
//! scales Γ and λ for the GP path.
//!
//! [`UdfCatalog::standard`] registers the paper's evaluation surface: the
//! four synthetic Fig. 4 functions `F1`–`F4` (§6.1-A, 1-D instantiation)
//! and the three benchmarked astrophysics UDFs `GalAge`, `ComoveVol`,
//! `AngDist` (§6.4) with their paper-reported nominal costs.

use crate::astro::{paper_eval_time, AngDist, ComoveVol, Cosmology, GalAge};
use crate::synthetic::{PaperFunction, DOMAIN};
use std::collections::BTreeMap;
use std::sync::Arc;
use udf_core::udf::{BlackBoxUdf, CostModel, UdfFunction};

/// Default survey area (steradians) for the registered `ComoveVol`.
pub const DEFAULT_AREA: f64 = 0.1;

/// One registered UDF plus the metadata a query planner needs.
#[derive(Debug, Clone)]
pub struct UdfEntry {
    /// The black-box function (cheap to clone; call accounting is shared).
    pub udf: BlackBoxUdf,
    /// Per-dimension input domain `[lo, hi]` the UDF is meant for.
    pub domain: Vec<(f64, f64)>,
    /// Output-spread estimate used to scale Γ and λ on the GP path.
    pub output_range: f64,
    /// One-line description for catalogs and REPL listings.
    pub description: String,
}

impl UdfEntry {
    /// Build an entry, probing the output range on a coarse grid over
    /// `domain` when `output_range` is `None`. The probe runs on the raw
    /// [`UdfFunction`] before wrapping, so it does not inflate the black
    /// box's call counters.
    pub fn probed(
        f: Arc<dyn UdfFunction>,
        cost: CostModel,
        domain: Vec<(f64, f64)>,
        output_range: Option<f64>,
        description: impl Into<String>,
    ) -> Self {
        assert_eq!(f.dim(), domain.len(), "domain arity must match UDF dim");
        let output_range = output_range.unwrap_or_else(|| probe_output_range(f.as_ref(), &domain));
        UdfEntry {
            udf: BlackBoxUdf::new(f, cost),
            domain,
            output_range,
            description: description.into(),
        }
    }

    /// The UDF's input dimensionality.
    pub fn dim(&self) -> usize {
        self.udf.dim()
    }

    /// The paper's default λ for this UDF: 1% of the output range (§6.1-C).
    pub fn default_lambda(&self) -> f64 {
        0.01 * self.output_range
    }
}

/// Max − min of `f` over an 8-points-per-dimension grid on `domain`,
/// floored away from zero so it is always a valid range estimate.
fn probe_output_range(f: &dyn UdfFunction, domain: &[(f64, f64)]) -> f64 {
    const PROBES: usize = 8;
    let d = domain.len();
    let total = PROBES.pow(d as u32);
    let mut x = vec![0.0; d];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for idx in 0..total {
        let mut rest = idx;
        for (xi, &(a, b)) in x.iter_mut().zip(domain) {
            let step = rest % PROBES;
            rest /= PROBES;
            *xi = a + (b - a) * step as f64 / (PROBES - 1) as f64;
        }
        let y = f.eval(&x);
        if y.is_finite() {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if lo < hi {
        hi - lo
    } else {
        1.0
    }
}

/// A name → [`UdfEntry`] registry (names are matched case-insensitively,
/// listed in sorted order).
#[derive(Debug, Clone, Default)]
pub struct UdfCatalog {
    entries: BTreeMap<String, UdfEntry>,
}

impl UdfCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        UdfCatalog::default()
    }

    /// The paper's evaluation surface: `F1`–`F4` (1-D synthetic, §6.1-A)
    /// plus `GalAge`, `ComoveVol`, `AngDist` (§6.4) with the paper's
    /// nominal per-call costs and [`DEFAULT_AREA`] for `ComoveVol`.
    pub fn standard() -> Self {
        let mut cat = UdfCatalog::new();
        for pf in PaperFunction::ALL {
            let f = pf.instantiate(1);
            let range = f.output_range();
            cat.register(UdfEntry::probed(
                Arc::new(f),
                CostModel::Free,
                vec![DOMAIN],
                Some(range),
                format!("synthetic Fig. 4 function {} (1-D)", pf.label()),
            ));
        }
        let cosmo = Cosmology::default();
        let z = (0.0, 2.0); // the catalog's redshift regime
        let astro_cost = |name: &str| CostModel::Simulated(paper_eval_time(name).expect("known"));
        cat.register(UdfEntry::probed(
            Arc::new(GalAge(cosmo)),
            astro_cost("GalAge"),
            vec![z],
            None,
            "age of the universe at redshift z (1-D, §6.4)".to_string(),
        ));
        cat.register(UdfEntry::probed(
            Arc::new(ComoveVol {
                cosmology: cosmo,
                area: DEFAULT_AREA,
            }),
            astro_cost("ComoveVol"),
            vec![z, z],
            None,
            "comoving volume between redshift shells (2-D, §6.4)".to_string(),
        ));
        cat.register(UdfEntry::probed(
            Arc::new(AngDist(cosmo)),
            astro_cost("AngDist"),
            vec![z, z],
            None,
            "angular-diameter distance between two redshifts (2-D, §6.4)".to_string(),
        ));
        cat
    }

    /// Register (or replace) an entry under its UDF's name.
    pub fn register(&mut self, entry: UdfEntry) {
        self.entries.insert(entry.udf.name().to_string(), entry);
    }

    /// Look up an entry by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&UdfEntry> {
        self.entries
            .get(name)
            .or_else(|| self.find_case_insensitive(name))
    }

    fn find_case_insensitive(&self, name: &str) -> Option<&UdfEntry> {
        self.entries
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered UDFs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &UdfEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_paper_surface() {
        let cat = UdfCatalog::standard();
        assert_eq!(cat.len(), 7);
        for name in ["F1", "F2", "F3", "F4", "GalAge", "ComoveVol", "AngDist"] {
            let e = cat.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(e.output_range > 0.0 && e.output_range.is_finite());
            assert_eq!(e.dim(), e.domain.len());
            assert!(e.default_lambda() > 0.0);
        }
        assert_eq!(cat.get("GalAge").unwrap().dim(), 1);
        assert_eq!(cat.get("ComoveVol").unwrap().dim(), 2);
        assert_eq!(cat.get("AngDist").unwrap().dim(), 2);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let cat = UdfCatalog::standard();
        assert!(cat.get("galage").is_some());
        assert!(cat.get("COMOVEVOL").is_some());
        assert!(cat.get("nope").is_none());
    }

    #[test]
    fn probed_range_is_sane() {
        // GalAge over z ∈ [0, 2]: ages run ≈ 0.99 → 0.34 in 1/H0 units.
        let cat = UdfCatalog::standard();
        let r = cat.get("GalAge").unwrap().output_range;
        assert!((0.3..1.2).contains(&r), "GalAge range {r}");
        // Probing did not touch the black box's call counter.
        assert_eq!(cat.get("GalAge").unwrap().udf.calls(), 0);
    }

    #[test]
    fn register_replaces_by_name() {
        let mut cat = UdfCatalog::new();
        assert!(cat.is_empty());
        let mk = |range| {
            UdfEntry::probed(
                Arc::new(crate::synthetic::GaussianMixtureFn::generate(
                    "G", 1, 1, 1.0, 1,
                )),
                CostModel::Free,
                vec![DOMAIN],
                Some(range),
                "test",
            )
        };
        cat.register(mk(1.0));
        cat.register(mk(2.0));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("G").unwrap().output_range, 2.0);
        assert_eq!(cat.names(), vec!["G"]);
    }
}
