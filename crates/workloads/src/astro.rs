//! The astrophysics case study (§6.4).
//!
//! The paper evaluates three UDFs from the IDL Astronomy Library on SDSS
//! data: `GalAge` (1-D), `ComoveVol` (2-D) and `AngDist` (2-D; the library's
//! `angdidis2`, the angular-diameter distance between two redshifts). We
//! port them from the standard flat-ΛCDM formulas with adaptive Simpson
//! quadrature — deliberately through numerical integration, like the IDL
//! originals, so their evaluation cost profile (slow, scaling with
//! quadrature work) matches the paper's table:
//!
//! | FunctName | Dim | paper EvalTime (ms) |
//! |-----------|-----|---------------------|
//! | AngDist   | 2   | 0.00298             |
//! | GalAge    | 1   | 0.29072             |
//! | ComoveVol | 2   | 1.82085             |
//!
//! The real SDSS catalog is replaced by a synthetic one with
//! Gaussian-uncertain redshifts (the paper itself models SDSS attributes as
//! Gaussians); see DESIGN.md §3.

use crate::quadrature::adaptive_simpson;
use rand::Rng;
use std::sync::Arc;
use udf_core::udf::{BlackBoxUdf, CostModel, UdfFunction};
use udf_prob::{InputDistribution, Normal};

/// Hubble distance unit: we express distances in units of `c / H0`
/// (≈ 4283 Mpc for h = 0.7) and ages in units of `1 / H0`
/// (≈ 13.97 Gyr for h = 0.7), avoiding unit clutter in the UDFs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cosmology {
    /// Matter density Ω_M.
    pub omega_m: f64,
    /// Dark-energy density Ω_Λ (flat: Ω_M + Ω_Λ = 1).
    pub omega_l: f64,
    /// Quadrature tolerance.
    pub tol: f64,
}

impl Default for Cosmology {
    fn default() -> Self {
        // Concordance values used by SDSS-era analyses.
        Cosmology {
            omega_m: 0.27,
            omega_l: 0.73,
            tol: 1e-8,
        }
    }
}

impl Cosmology {
    /// Dimensionless Hubble rate `E(z) = sqrt(Ω_M (1+z)³ + Ω_Λ)` (flat).
    pub fn e(&self, z: f64) -> f64 {
        (self.omega_m * (1.0 + z).powi(3) + self.omega_l).sqrt()
    }

    /// Comoving line-of-sight distance `D_C(z) = ∫₀ᶻ dz'/E(z')` in units of
    /// `c/H0`.
    pub fn comoving_distance(&self, z: f64) -> f64 {
        if z <= 0.0 {
            return 0.0;
        }
        let e = |zz: f64| 1.0 / self.e(zz);
        adaptive_simpson(&e, 0.0, z, self.tol)
    }

    /// Age of the universe at redshift `z`,
    /// `t(z) = ∫_z^∞ dz' / ((1+z') E(z'))`, in units of `1/H0`.
    ///
    /// Substituting `a = 1/(1+z')` turns the infinite range into
    /// `∫₀^{1/(1+z)} da / (a E(1/a − 1))` over a finite interval.
    pub fn age_at(&self, z: f64) -> f64 {
        let a_hi = 1.0 / (1.0 + z.max(0.0));
        let f = |a: f64| {
            if a <= 0.0 {
                return 0.0;
            }
            // a E(1/a − 1) = sqrt(Ω_M / a + Ω_Λ a²): finite as a → 0.
            1.0 / (self.omega_m / a + self.omega_l * a * a).sqrt()
        };
        adaptive_simpson(&f, 0.0, a_hi, self.tol)
    }

    /// Angular-diameter distance between two redshifts `z1 < z2` (flat
    /// universe; IDL `angdidis2`): `(D_C(z2) − D_C(z1)) / (1 + z2)` in
    /// `c/H0` units.
    pub fn angular_diameter_distance2(&self, z1: f64, z2: f64) -> f64 {
        let (z1, z2) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        (self.comoving_distance(z2) - self.comoving_distance(z1)) / (1.0 + z2)
    }

    /// Comoving volume between redshift shells over a survey area of
    /// `area` steradians: `area/3 · (D_C(z2)³ − D_C(z1)³)` in `(c/H0)³`.
    pub fn comoving_volume(&self, z1: f64, z2: f64, area: f64) -> f64 {
        let (z1, z2) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        let d1 = self.comoving_distance(z1);
        let d2 = self.comoving_distance(z2);
        area / 3.0 * (d2.powi(3) - d1.powi(3))
    }

    /// Luminosity distance `d_L(z) = (1+z) D_C(z)` (flat) in `c/H0` units
    /// (IDL `lumdist`).
    pub fn luminosity_distance(&self, z: f64) -> f64 {
        (1.0 + z.max(0.0)) * self.comoving_distance(z)
    }

    /// Angular-diameter distance to a single redshift,
    /// `d_A(z) = D_C(z) / (1+z)` (IDL `dangdis`).
    pub fn angular_diameter_distance(&self, z: f64) -> f64 {
        self.comoving_distance(z) / (1.0 + z.max(0.0))
    }

    /// Distance modulus `μ(z) = 5 log₁₀(d_L / 10 pc)`; needs the Hubble
    /// distance in megaparsecs (`c/H0` ≈ 4283 Mpc for h = 0.7) to convert
    /// the dimensionless `d_L` into physical units.
    pub fn distance_modulus(&self, z: f64, hubble_distance_mpc: f64) -> f64 {
        let dl_mpc = self.luminosity_distance(z) * hubble_distance_mpc;
        // 10 pc = 1e-5 Mpc.
        5.0 * (dl_mpc / 1e-5).log10()
    }

    /// Differential comoving volume element
    /// `dV/dz/dΩ = D_C(z)² / E(z)` in `(c/H0)³` per steradian per unit z
    /// (IDL `dcomvoldz`).
    pub fn differential_comoving_volume(&self, z: f64) -> f64 {
        let d = self.comoving_distance(z.max(0.0));
        d * d / self.e(z.max(0.0))
    }

    /// Lookback time `t_L(z) = t(0) − t(z)` in `1/H0` units.
    pub fn lookback_time(&self, z: f64) -> f64 {
        self.age_at(0.0) - self.age_at(z.max(0.0))
    }
}

/// `GalAge(z)` — age of a galaxy's light-emission epoch (1-D UDF of Q1).
#[derive(Debug, Clone)]
pub struct GalAge(pub Cosmology);

impl UdfFunction for GalAge {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.0.age_at(x[0].max(0.0))
    }
    fn name(&self) -> &str {
        "GalAge"
    }
}

/// `ComoveVol(z1, z2)` with a fixed survey area (2-D UDF of Q2).
#[derive(Debug, Clone)]
pub struct ComoveVol {
    /// Cosmology parameters.
    pub cosmology: Cosmology,
    /// Survey area in steradians (Q2's constant `AREA`).
    pub area: f64,
}

impl UdfFunction for ComoveVol {
    fn dim(&self) -> usize {
        2
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.cosmology
            .comoving_volume(x[0].max(0.0), x[1].max(0.0), self.area)
    }
    fn name(&self) -> &str {
        "ComoveVol"
    }
}

/// `AngDist(z1, z2)` — angular-diameter distance between two redshifts
/// (2-D; the paper's fastest UDF).
#[derive(Debug, Clone)]
pub struct AngDist(pub Cosmology);

impl UdfFunction for AngDist {
    fn dim(&self) -> usize {
        2
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.0
            .angular_diameter_distance2(x[0].max(0.0), x[1].max(0.0))
    }
    fn name(&self) -> &str {
        "AngDist"
    }
}

/// Paper-reported evaluation times, used as the simulated cost when the
/// harness wants the authors' testbed cost profile instead of ours.
pub fn paper_eval_time(name: &str) -> Option<std::time::Duration> {
    let micros = match name {
        "AngDist" => 2.98,
        "GalAge" => 290.72,
        "ComoveVol" => 1820.85,
        _ => return None,
    };
    Some(std::time::Duration::from_nanos((micros * 1000.0) as u64))
}

/// Wrap the three astro UDFs the paper benchmarks as black boxes with the
/// paper's nominal costs.
pub fn astro_udfs(cosmology: Cosmology, area: f64) -> Vec<BlackBoxUdf> {
    let mk = |f: Arc<dyn UdfFunction>| {
        let cost = paper_eval_time(f.name()).expect("known astro UDF");
        BlackBoxUdf::new(f, CostModel::Simulated(cost))
    };
    vec![
        mk(Arc::new(AngDist(cosmology))),
        mk(Arc::new(GalAge(cosmology))),
        mk(Arc::new(ComoveVol { cosmology, area })),
    ]
}

/// `LumDist(z)` — luminosity distance (1-D).
#[derive(Debug, Clone)]
pub struct LumDist(pub Cosmology);

impl UdfFunction for LumDist {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.0.luminosity_distance(x[0].max(0.0))
    }
    fn name(&self) -> &str {
        "LumDist"
    }
}

/// `DAngDis(z)` — angular-diameter distance to one redshift (1-D).
#[derive(Debug, Clone)]
pub struct DAngDis(pub Cosmology);

impl UdfFunction for DAngDis {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.0.angular_diameter_distance(x[0].max(0.0))
    }
    fn name(&self) -> &str {
        "DAngDis"
    }
}

/// `DistMod(z)` — distance modulus for h = 0.7 (1-D).
#[derive(Debug, Clone)]
pub struct DistMod(pub Cosmology);

/// Hubble distance `c/H0` in Mpc for h = 0.7.
pub const HUBBLE_DISTANCE_MPC: f64 = 4282.7;

impl UdfFunction for DistMod {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        // Guard z ≈ 0 where μ → −∞.
        self.0.distance_modulus(x[0].max(1e-4), HUBBLE_DISTANCE_MPC)
    }
    fn name(&self) -> &str {
        "DistMod"
    }
}

/// `DComVolDz(z)` — differential comoving volume element (1-D).
#[derive(Debug, Clone)]
pub struct DComVolDz(pub Cosmology);

impl UdfFunction for DComVolDz {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.0.differential_comoving_volume(x[0])
    }
    fn name(&self) -> &str {
        "DComVolDz"
    }
}

/// `LookbackTime(z)` — lookback time (1-D).
#[derive(Debug, Clone)]
pub struct LookbackTime(pub Cosmology);

impl UdfFunction for LookbackTime {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.0.lookback_time(x[0])
    }
    fn name(&self) -> &str {
        "LookbackTime"
    }
}

/// All eight scalar astro UDFs (the paper reports finding eight scalar
/// functions in the IDL library; the first three are the ones it
/// benchmarks). The extended five carry no paper-reported cost, so they
/// default to [`CostModel::Free`].
pub fn extended_astro_udfs(cosmology: Cosmology, area: f64) -> Vec<BlackBoxUdf> {
    let mut udfs = astro_udfs(cosmology, area);
    udfs.push(BlackBoxUdf::new(
        Arc::new(LumDist(cosmology)),
        CostModel::Free,
    ));
    udfs.push(BlackBoxUdf::new(
        Arc::new(DAngDis(cosmology)),
        CostModel::Free,
    ));
    udfs.push(BlackBoxUdf::new(
        Arc::new(DistMod(cosmology)),
        CostModel::Free,
    ));
    udfs.push(BlackBoxUdf::new(
        Arc::new(DComVolDz(cosmology)),
        CostModel::Free,
    ));
    udfs.push(BlackBoxUdf::new(
        Arc::new(LookbackTime(cosmology)),
        CostModel::Free,
    ));
    udfs
}

/// A synthetic SDSS-like galaxy catalog: each row has an object id and a
/// Gaussian-uncertain redshift (photometric-redshift style errors).
#[derive(Debug, Clone)]
pub struct GalaxyCatalog {
    rows: Vec<GalaxyRow>,
}

/// One catalog row.
#[derive(Debug, Clone)]
pub struct GalaxyRow {
    /// Object identifier.
    pub obj_id: u64,
    /// Redshift mean (photometric estimate).
    pub z_mean: f64,
    /// Redshift standard deviation (photometric error).
    pub z_sigma: f64,
}

impl GalaxyCatalog {
    /// Generate `n` galaxies with redshift means in `[0.02, 2.0]` and
    /// photometric errors σ ∈ `[0.005, 0.1]` — the regime the paper's SDSS
    /// extraction targets.
    pub fn generate(n: usize, rng: &mut dyn rand::RngCore) -> Self {
        let rows = (0..n)
            .map(|i| GalaxyRow {
                obj_id: i as u64,
                z_mean: rng.gen_range(0.02..2.0),
                z_sigma: rng.gen_range(0.005..0.1),
            })
            .collect();
        GalaxyCatalog { rows }
    }

    /// Rows.
    pub fn rows(&self) -> &[GalaxyRow] {
        &self.rows
    }

    /// Number of galaxies.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The 1-D uncertain input for `GalAge` on row `i`.
    pub fn galage_input(&self, i: usize) -> InputDistribution {
        let r = &self.rows[i];
        InputDistribution::independent(vec![Box::new(
            Normal::new(r.z_mean, r.z_sigma).expect("valid catalog row"),
        )])
        .expect("non-empty")
    }

    /// The 2-D uncertain input `(z_i, z_j)` for `AngDist` / `ComoveVol` on a
    /// pair of rows.
    pub fn pair_input(&self, i: usize, j: usize) -> InputDistribution {
        let (a, b) = (&self.rows[i], &self.rows[j]);
        InputDistribution::independent(vec![
            Box::new(Normal::new(a.z_mean, a.z_sigma).expect("valid row")),
            Box::new(Normal::new(b.z_mean, b.z_sigma).expect("valid row")),
        ])
        .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cosmo() -> Cosmology {
        Cosmology::default()
    }

    #[test]
    fn hubble_rate_properties() {
        let c = cosmo();
        assert!(
            (c.e(0.0) - 1.0).abs() < 1e-12,
            "E(0) = 1 in a flat universe"
        );
        assert!(c.e(1.0) > c.e(0.0), "E grows with z");
    }

    #[test]
    fn comoving_distance_monotone_and_zero_at_origin() {
        let c = cosmo();
        assert_eq!(c.comoving_distance(0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..=20 {
            let d = c.comoving_distance(i as f64 * 0.1);
            assert!(d > prev);
            prev = d;
        }
        // Known value: D_C(1) ≈ 0.7857 c/H0 for Ω_M = 0.27 (cross-checked
        // against a trapezoid integration at 10⁶ points).
        let d1 = c.comoving_distance(1.0);
        assert!((d1 - 0.7857).abs() < 5e-3, "D_C(1) = {d1}");
    }

    #[test]
    fn age_decreases_with_redshift() {
        let c = cosmo();
        let t0 = c.age_at(0.0);
        // Present age ≈ 0.992 / H0 for (0.27, 0.73).
        assert!((t0 - 0.992).abs() < 5e-3, "t(0) = {t0}");
        let mut prev = t0;
        for i in 1..=10 {
            let t = c.age_at(i as f64 * 0.5);
            assert!(t < prev, "age must decrease with z");
            prev = t;
        }
        // Matter-dominated early universe: t(z) → (2/3)/sqrt(Ω_M) (1+z)^{-3/2}.
        let z: f64 = 50.0;
        let expect = 2.0 / 3.0 / c.omega_m.sqrt() * (1.0 + z).powf(-1.5);
        let got = c.age_at(z);
        assert!(
            (got - expect).abs() / expect < 0.05,
            "t({z}) = {got}, matter-era ≈ {expect}"
        );
    }

    #[test]
    fn angdist_symmetric_and_zero_on_diagonal() {
        let c = cosmo();
        assert!(c.angular_diameter_distance2(0.5, 0.5).abs() < 1e-12);
        let a = c.angular_diameter_distance2(0.3, 1.2);
        let b = c.angular_diameter_distance2(1.2, 0.3);
        assert!((a - b).abs() < 1e-12, "argument order must not matter");
        assert!(a > 0.0);
    }

    #[test]
    fn comoving_volume_additive_in_shells() {
        let c = cosmo();
        let area = 0.1;
        let v02 = c.comoving_volume(0.0, 2.0, area);
        let v01 = c.comoving_volume(0.0, 1.0, area);
        let v12 = c.comoving_volume(1.0, 2.0, area);
        assert!((v02 - (v01 + v12)).abs() < 1e-9);
        assert!(v01 > 0.0 && v12 > 0.0);
    }

    #[test]
    fn udf_wrappers_wire_through() {
        let udfs = astro_udfs(cosmo(), 0.1);
        assert_eq!(udfs.len(), 3);
        assert_eq!(udfs[0].name(), "AngDist");
        assert_eq!(udfs[1].name(), "GalAge");
        assert_eq!(udfs[1].dim(), 1);
        assert_eq!(udfs[2].dim(), 2);
        let age = udfs[1].eval(&[0.5]);
        assert!(age > 0.0 && age < 1.0);
        assert_eq!(udfs[1].calls(), 1);
    }

    #[test]
    fn catalog_generation_and_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        let cat = GalaxyCatalog::generate(50, &mut rng);
        assert_eq!(cat.len(), 50);
        for r in cat.rows() {
            assert!(r.z_mean >= 0.02 && r.z_mean < 2.0);
            assert!(r.z_sigma >= 0.005 && r.z_sigma < 0.1);
        }
        let inp = cat.galage_input(3);
        assert_eq!(inp.dim(), 1);
        let pair = cat.pair_input(0, 1);
        assert_eq!(pair.dim(), 2);
        let s = pair.sample(&mut rng);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn paper_eval_times_known() {
        assert!(paper_eval_time("GalAge").is_some());
        assert!(paper_eval_time("nope").is_none());
        assert!(paper_eval_time("ComoveVol").unwrap() > paper_eval_time("AngDist").unwrap());
    }

    #[test]
    fn luminosity_angular_diameter_identity() {
        // Etherington reciprocity: d_L = (1+z)² d_A.
        let c = cosmo();
        for z in [0.1, 0.5, 1.0, 2.0] {
            let dl = c.luminosity_distance(z);
            let da = c.angular_diameter_distance(z);
            assert!(
                (dl - (1.0 + z).powi(2) * da).abs() < 1e-12,
                "z = {z}: d_L {dl} vs (1+z)² d_A {}",
                (1.0 + z).powi(2) * da
            );
        }
    }

    #[test]
    fn differential_volume_is_derivative_of_shell_volume() {
        // d/dz [V(0, z, Ω)] = Ω · D_C(z)²/E(z) — check by central difference.
        let c = cosmo();
        let area = 0.25;
        for z in [0.3, 0.8, 1.5] {
            let h = 1e-4;
            let fd = (c.comoving_volume(0.0, z + h, area) - c.comoving_volume(0.0, z - h, area))
                / (2.0 * h);
            let analytic = area * c.differential_comoving_volume(z);
            assert!(
                (fd - analytic).abs() < 1e-5 * analytic,
                "z = {z}: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn distance_modulus_known_value() {
        // For (Ω_M, Ω_Λ) = (0.27, 0.73), h = 0.7: μ(z = 0.5) ≈ 42.3 mag.
        let c = cosmo();
        let mu = c.distance_modulus(0.5, HUBBLE_DISTANCE_MPC);
        assert!((mu - 42.3).abs() < 0.2, "μ(0.5) = {mu}");
        // Monotone in z.
        assert!(c.distance_modulus(1.0, HUBBLE_DISTANCE_MPC) > mu);
    }

    #[test]
    fn lookback_plus_age_is_present_age() {
        let c = cosmo();
        for z in [0.2, 1.0, 3.0] {
            let total = c.lookback_time(z) + c.age_at(z);
            assert!((total - c.age_at(0.0)).abs() < 1e-10, "z = {z}");
        }
        assert!(c.lookback_time(0.0).abs() < 1e-12);
    }

    #[test]
    fn extended_udf_set_has_eight_functions() {
        let udfs = extended_astro_udfs(cosmo(), 0.1);
        assert_eq!(udfs.len(), 8, "the paper reports eight scalar functions");
        let names: Vec<&str> = udfs.iter().map(|u| u.name()).collect();
        assert!(names.contains(&"LumDist"));
        assert!(names.contains(&"DistMod"));
        // All evaluate to finite values on a probe redshift.
        for u in &udfs {
            let x = vec![0.5; u.dim()];
            assert!(u.eval(&x).is_finite(), "{} produced non-finite", u.name());
        }
    }
}
