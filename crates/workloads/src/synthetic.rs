//! Synthetic UDFs with controlled shape (§6.1-A, Fig. 4).
//!
//! Functions are sums of Gaussian bumps: the number of components dictates
//! the number of peaks, the component scale the bumpiness/spikiness. The
//! paper's four reference functions are the combinations of
//! {1, 5} components × {large, small} component variance on domain
//! `[0, 10]^d`; [`PaperFunction`] reproduces them for any dimension, with a
//! seeded layout so experiments are repeatable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udf_core::udf::UdfFunction;
use udf_prob::{Exponential, Gamma, InputDistribution, Normal, Univariate};

/// Domain bounds used throughout the synthetic evaluation.
pub const DOMAIN: (f64, f64) = (0.0, 10.0);

/// The four reference functions of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperFunction {
    /// One component, large variance: one flat peak.
    F1,
    /// One component, small variance: one spiky peak.
    F2,
    /// Five components, large variance: bumpy but smooth.
    F3,
    /// Five components, small variance: bumpy and spiky.
    F4,
}

impl PaperFunction {
    /// All four, in order.
    pub const ALL: [PaperFunction; 4] = [
        PaperFunction::F1,
        PaperFunction::F2,
        PaperFunction::F3,
        PaperFunction::F4,
    ];

    /// Component count / scale parameters.
    fn recipe(self) -> (usize, f64) {
        match self {
            PaperFunction::F1 => (1, 3.0),
            PaperFunction::F2 => (1, 0.6),
            PaperFunction::F3 => (5, 2.0),
            PaperFunction::F4 => (5, 0.5),
        }
    }

    /// Instantiate at dimension `d` with a deterministic layout.
    pub fn instantiate(self, d: usize) -> GaussianMixtureFn {
        let (ncomp, scale) = self.recipe();
        GaussianMixtureFn::generate(format!("{self:?}"), d, ncomp, scale, 7 + self as u64)
    }

    /// Label used in harness output.
    pub fn label(self) -> &'static str {
        match self {
            PaperFunction::F1 => "Funct1",
            PaperFunction::F2 => "Funct2",
            PaperFunction::F3 => "Funct3",
            PaperFunction::F4 => "Funct4",
        }
    }
}

/// A UDF of the form `f(x) = Σ_i a_i exp(−‖x − μ_i‖² / (2 s_i²))`.
#[derive(Debug, Clone)]
pub struct GaussianMixtureFn {
    name: String,
    dim: usize,
    components: Vec<Component>,
}

#[derive(Debug, Clone)]
struct Component {
    center: Vec<f64>,
    scale: f64,
    amplitude: f64,
}

impl GaussianMixtureFn {
    /// Generate with `ncomp` bumps of width `scale` at seeded-random centers
    /// inside [`DOMAIN`]`^d`, amplitudes in [0.5, 1.5].
    pub fn generate(
        name: impl Into<String>,
        dim: usize,
        ncomp: usize,
        scale: f64,
        seed: u64,
    ) -> Self {
        assert!(dim > 0 && ncomp > 0 && scale > 0.0);
        let mut rng = StdRng::seed_from_u64(seed ^ (dim as u64) << 32);
        let components = (0..ncomp)
            .map(|_| Component {
                center: (0..dim)
                    .map(|_| rng.gen_range(DOMAIN.0..DOMAIN.1))
                    .collect(),
                scale,
                amplitude: rng.gen_range(0.5..1.5),
            })
            .collect();
        GaussianMixtureFn {
            name: name.into(),
            dim,
            components,
        }
    }

    /// Approximate output range (max minus min ≈ peak amplitude sum) used to
    /// scale λ and Γ: evaluated on a coarse probe of the domain.
    pub fn output_range(&self) -> f64 {
        let probes = 2000;
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut x = vec![0.0; self.dim];
        for _ in 0..probes {
            for xi in &mut x {
                *xi = rng.gen_range(DOMAIN.0..DOMAIN.1);
            }
            let v = self.eval(&x);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (hi - lo).max(f64::MIN_POSITIVE)
    }
}

impl UdfFunction for GaussianMixtureFn {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        self.components
            .iter()
            .map(|c| {
                let d2: f64 = x
                    .iter()
                    .zip(&c.center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                c.amplitude * (-0.5 * d2 / (c.scale * c.scale)).exp()
            })
            .sum()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Kinds of input marginals evaluated in §6.1-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Gaussian with per-dimension σ_I (the default).
    Gaussian,
    /// Gamma(shape 2) scaled so the mean sits at the drawn center.
    Gamma,
    /// Exponential with the mean at the drawn center.
    Exponential,
}

/// Generate `n` uncertain input tuples for a `d`-dimensional UDF: means
/// drawn uniformly from the domain, spread `sigma_i` (§6.1-B default 0.5).
pub fn generate_inputs(
    kind: InputKind,
    d: usize,
    n: usize,
    sigma_i: f64,
    rng: &mut dyn rand::RngCore,
) -> Vec<InputDistribution> {
    use rand::Rng as _;
    (0..n)
        .map(|_| {
            let marginals: Vec<Box<dyn Univariate>> = (0..d)
                .map(|_| {
                    let mu = rng.gen_range(DOMAIN.0..DOMAIN.1);
                    match kind {
                        InputKind::Gaussian => {
                            Box::new(Normal::new(mu, sigma_i).expect("valid params"))
                                as Box<dyn Univariate>
                        }
                        InputKind::Gamma => {
                            // shape k = 2, scale chosen so mean = mu.
                            Box::new(Gamma::new(2.0, (mu / 2.0).max(1e-3)).expect("valid params"))
                        }
                        InputKind::Exponential => {
                            Box::new(Exponential::new(1.0 / mu.max(1e-3)).expect("valid params"))
                        }
                    }
                })
                .collect();
            InputDistribution::independent(marginals).expect("non-empty marginals")
        })
        .collect()
}

/// Deterministic domain sweep: `n` Gaussian input tuples whose means walk
/// the domain on a golden-ratio (low-discrepancy) schedule, so every batch
/// keeps visiting fresh regions — no RNG, no warm pocket.
///
/// This is the adversarial workload for GP model growth: under a tight
/// accuracy each fresh region misses the ε_GP budget and forces online
/// tuning, so without a model cap the training set grows with `n` and
/// per-tuple cost climbs as O(m²)/O(m³). The model-cap regression tests
/// and the `gp/model_cap` bench axis both drive this sweep.
pub fn sweep_inputs(d: usize, n: usize, sigma_i: f64) -> Vec<InputDistribution> {
    (0..n)
        .map(|i| {
            let marginals: Vec<Box<dyn Univariate>> = (0..d)
                .map(|j| {
                    Box::new(Normal::new(sweep_mean(i * d + j), sigma_i).expect("valid params"))
                        as Box<dyn Univariate>
                })
                .collect();
            InputDistribution::independent(marginals).expect("non-empty marginals")
        })
        .collect()
}

/// The golden-ratio mean schedule behind [`sweep_inputs`]: the `i`-th mean
/// in [`DOMAIN`]. Exposed so relational tests and benches can build
/// `Relation`s on the same sweep.
pub fn sweep_mean(i: usize) -> f64 {
    const PHI_FRAC: f64 = 0.618_033_988_749_894_9; // 1/φ
    DOMAIN.0 + (i as f64 * PHI_FRAC).fract() * (DOMAIN.1 - DOMAIN.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_inputs_is_deterministic_and_in_domain() {
        let a = sweep_inputs(1, 32, 0.3);
        let b = sweep_inputs(1, 32, 0.3);
        assert_eq!(a.len(), 32);
        let mut rng = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sample_n(&mut rng, 3), y.sample_n(&mut rng2, 3));
        }
        // The sweep keeps visiting fresh regions: consecutive means differ.
        let means: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(2);
            a.iter()
                .map(|x| {
                    let s = x.sample_n(&mut r, 256);
                    s.iter().map(|v| v[0]).sum::<f64>() / 256.0
                })
                .collect()
        };
        for w in means.windows(2) {
            assert!((w[0] - w[1]).abs() > 0.5, "sweep stalled: {w:?}");
        }
    }

    #[test]
    fn paper_family_shapes() {
        let f1 = PaperFunction::F1.instantiate(2);
        let f4 = PaperFunction::F4.instantiate(2);
        assert_eq!(f1.dim(), 2);
        // F1 has one component, F4 five.
        assert_eq!(f1.components.len(), 1);
        assert_eq!(f4.components.len(), 5);
        // F4 is spikier: smaller scale.
        assert!(f4.components[0].scale < f1.components[0].scale);
    }

    #[test]
    fn deterministic_generation() {
        let a = PaperFunction::F3.instantiate(3);
        let b = PaperFunction::F3.instantiate(3);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.eval(&x), b.eval(&x));
    }

    #[test]
    fn eval_peaks_at_centers() {
        let f = PaperFunction::F2.instantiate(1);
        let c = f.components[0].center.clone();
        let at_center = f.eval(&c);
        let off = f.eval(&[c[0] + 3.0]);
        assert!(at_center > off, "peak {at_center} vs off-peak {off}");
        assert!(at_center <= 1.5 + 1e-12);
    }

    #[test]
    fn output_range_positive_and_bounded() {
        for pf in PaperFunction::ALL {
            let f = pf.instantiate(2);
            let r = f.output_range();
            assert!(r > 0.0 && r <= 7.5, "{pf:?}: range {r}");
        }
    }

    #[test]
    fn input_generators_produce_valid_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            InputKind::Gaussian,
            InputKind::Gamma,
            InputKind::Exponential,
        ] {
            let inputs = generate_inputs(kind, 3, 5, 0.5, &mut rng);
            assert_eq!(inputs.len(), 5);
            for inp in &inputs {
                assert_eq!(inp.dim(), 3);
                let s = inp.sample(&mut rng);
                assert!(s.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn bumpier_functions_vary_more() {
        // Sample-path roughness: mean |Δf| over a fine 1-D walk should be
        // larger for F4 than F1.
        let f1 = PaperFunction::F1.instantiate(1);
        let f4 = PaperFunction::F4.instantiate(1);
        let rough = |f: &GaussianMixtureFn| -> f64 {
            let mut sum = 0.0;
            let n = 1000;
            for i in 0..n {
                let x0 = i as f64 * 10.0 / n as f64;
                let x1 = x0 + 10.0 / n as f64;
                sum += (f.eval(&[x1]) - f.eval(&[x0])).abs();
            }
            sum
        };
        assert!(rough(&f4) > rough(&f1), "F4 should be rougher than F1");
    }
}
