//! Adaptive Simpson quadrature for the cosmology integrals.

/// Integrate `f` over `[a, b]` by adaptive Simpson's rule to absolute
/// tolerance `tol`.
pub fn adaptive_simpson(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    debug_assert!(a <= b && tol > 0.0);
    if a == b {
        return 0.0;
    }
    let c = 0.5 * (a + b);
    let (fa, fb, fc) = (f(a), f(b), f(c));
    let whole = simpson(fa, fc, fb, b - a);
    recurse(f, a, b, fa, fb, fc, whole, tol, 40)
}

fn simpson(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
    h / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    f: &dyn Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fc: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let (fd, fe) = (f(d), f(e));
    let left = simpson(fa, fd, fc, c - a);
    let right = simpson(fc, fe, fb, b - c);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        recurse(f, a, c, fa, fc, fd, left, tol / 2.0, depth - 1)
            + recurse(f, c, b, fc, fb, fe, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x;
        assert!((adaptive_simpson(&f, 0.0, 2.0, 1e-12) - 8.0).abs() < 1e-10);
        let g = |x: f64| x * x * x - x;
        assert!((adaptive_simpson(&g, -1.0, 1.0, 1e-12)).abs() < 1e-10);
    }

    #[test]
    fn integrates_transcendentals() {
        let f = |x: f64| x.sin();
        assert!((adaptive_simpson(&f, 0.0, std::f64::consts::PI, 1e-10) - 2.0).abs() < 1e-8);
        let g = |x: f64| (-x).exp();
        assert!((adaptive_simpson(&g, 0.0, 20.0, 1e-10) - (1.0 - (-20.0f64).exp())).abs() < 1e-8);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(adaptive_simpson(&|x| x, 1.0, 1.0, 1e-9), 0.0);
    }

    #[test]
    fn handles_peaked_integrand() {
        // Narrow Gaussian bump: total mass ≈ σ√(2π).
        let s = 0.01;
        let f = move |x: f64| (-0.5 * (x - 0.5).powi(2) / (s * s)).exp();
        let got = adaptive_simpson(&f, 0.0, 1.0, 1e-10);
        let want = s * (2.0 * std::f64::consts::PI).sqrt();
        assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }
}
