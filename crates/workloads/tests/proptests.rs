//! Property tests for the workload substrates: cosmology invariants and
//! synthetic function structure.

use proptest::prelude::*;
use udf_core::udf::UdfFunction;
use udf_workloads::astro::Cosmology;
use udf_workloads::quadrature::adaptive_simpson;
use udf_workloads::synthetic::GaussianMixtureFn;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn comoving_distance_monotone(z1 in 0.0f64..5.0, z2 in 0.0f64..5.0) {
        let c = Cosmology::default();
        let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(c.comoving_distance(lo) <= c.comoving_distance(hi) + 1e-12);
    }

    #[test]
    fn age_monotone_decreasing(z1 in 0.0f64..10.0, z2 in 0.0f64..10.0) {
        let c = Cosmology::default();
        let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(c.age_at(hi) <= c.age_at(lo) + 1e-12);
        prop_assert!(c.age_at(hi) > 0.0);
    }

    #[test]
    fn angdist_symmetric_nonnegative(z1 in 0.0f64..3.0, z2 in 0.0f64..3.0) {
        let c = Cosmology::default();
        let a = c.angular_diameter_distance2(z1, z2);
        let b = c.angular_diameter_distance2(z2, z1);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!(a >= -1e-12);
    }

    #[test]
    fn comoving_volume_shell_additivity(
        z1 in 0.0f64..2.0, z2 in 0.0f64..2.0, z3 in 0.0f64..2.0, area in 0.01f64..1.0,
    ) {
        let c = Cosmology::default();
        let mut zs = [z1, z2, z3];
        zs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v02 = c.comoving_volume(zs[0], zs[2], area);
        let v01 = c.comoving_volume(zs[0], zs[1], area);
        let v12 = c.comoving_volume(zs[1], zs[2], area);
        prop_assert!((v02 - (v01 + v12)).abs() < 1e-8 * (1.0 + v02.abs()));
    }

    #[test]
    fn volume_scales_linearly_with_area(
        z in 0.1f64..2.0, area in 0.01f64..0.5, k in 1.5f64..4.0,
    ) {
        let c = Cosmology::default();
        let v1 = c.comoving_volume(0.0, z, area);
        let vk = c.comoving_volume(0.0, z, area * k);
        prop_assert!((vk - k * v1).abs() < 1e-9 * (1.0 + vk.abs()));
    }

    #[test]
    fn quadrature_linear_in_integrand(a in -3.0f64..0.0, b in 0.0f64..3.0, c in 0.5f64..4.0) {
        let f = |x: f64| (x * 1.3).sin() + 0.2 * x;
        let base = adaptive_simpson(&f, a, b, 1e-10);
        let scaled = adaptive_simpson(&|x| c * f(x), a, b, 1e-10);
        prop_assert!((scaled - c * base).abs() < 1e-7 * (1.0 + scaled.abs()));
    }

    #[test]
    fn quadrature_interval_additivity(a in -2.0f64..0.0, m in 0.0f64..1.0, b in 1.0f64..3.0) {
        let f = |x: f64| (-x * x).exp();
        let whole = adaptive_simpson(&f, a, b, 1e-11);
        let parts = adaptive_simpson(&f, a, m, 1e-11) + adaptive_simpson(&f, m, b, 1e-11);
        prop_assert!((whole - parts).abs() < 1e-8);
    }

    #[test]
    fn gmm_function_bounded_and_positive(
        dim in 1usize..4, ncomp in 1usize..6, scale in 0.3f64..3.0, seed in 0u64..100,
        x in prop::collection::vec(-2.0f64..12.0, 3),
    ) {
        let f = GaussianMixtureFn::generate("p", dim, ncomp, scale, seed);
        let v = f.eval(&x[..dim]);
        prop_assert!(v >= 0.0, "Gaussian bumps are non-negative");
        // Amplitudes are < 1.5 each.
        prop_assert!(v <= 1.5 * ncomp as f64 + 1e-12);
    }

    #[test]
    fn gmm_decays_far_from_domain(dim in 1usize..3, seed in 0u64..50) {
        let f = GaussianMixtureFn::generate("p", dim, 3, 1.0, seed);
        let far = vec![1e4; dim];
        prop_assert!(f.eval(&far) < 1e-10);
    }
}
