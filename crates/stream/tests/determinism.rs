//! The engine's determinism contract: a fixed `(seed, batch_size)` yields
//! byte-identical emitted distributions for worker counts 1, 2, and 8 —
//! GP fast path, GP slow path (model mutation), MC, and online filtering
//! all included.

use std::sync::Arc;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::udf::BlackBoxUdf;
use udf_stream::prelude::*;
use udf_workloads::synthetic::PaperFunction;

fn acc() -> AccuracyRequirement {
    AccuracyRequirement::new(0.25, 0.05, 0.0, Metric::Ks).unwrap()
}

/// Build the same 4-subscription session at a given worker count and run it
/// over the same 384-tuple stream; return every query's digest.
fn run_with_workers(workers: usize) -> Vec<u64> {
    run_with_workers_metrics(workers, None)
}

/// Same, optionally with a metrics registry attached (`Some(true)` =
/// recording, `Some(false)` = registered but switched off).
fn run_with_workers_metrics(workers: usize, metrics: Option<bool>) -> Vec<u64> {
    let f1 = PaperFunction::F1.instantiate(1);
    let f3 = PaperFunction::F3.instantiate(1);
    let udf1 = BlackBoxUdf::new(Arc::new(f1.clone()), udf_core::udf::CostModel::Free);
    let udf3 = BlackBoxUdf::new(Arc::new(f3.clone()), udf_core::udf::CostModel::Free);

    let mut session = Session::new(
        EngineConfig::new()
            .workers(workers)
            .batch_size(64)
            .seed(0xD5EED),
    );
    if let Some(enabled) = metrics {
        let reg = udf_obs::MetricsRegistry::new();
        reg.set_enabled(enabled);
        session.set_metrics(&reg);
    }
    let ids = vec![
        session
            .subscribe(
                QuerySpec::new("gp", udf1.clone(), acc(), StreamStrategy::Gp)
                    .output_range(f1.output_range()),
            )
            .unwrap(),
        session
            .subscribe(QuerySpec::new(
                "mc",
                udf1.clone(),
                acc(),
                StreamStrategy::Mc,
            ))
            .unwrap(),
        session
            .subscribe(
                QuerySpec::new("gp-sel", udf3.clone(), acc(), StreamStrategy::Gp)
                    .output_range(f3.output_range())
                    .predicate(
                        Predicate::new(0.5 * f3.output_range(), 2.0 * f3.output_range(), 0.5)
                            .unwrap(),
                    ),
            )
            .unwrap(),
        session
            .subscribe(
                QuerySpec::new("mc-sel", udf3, acc(), StreamStrategy::Mc)
                    .predicate(Predicate::new(0.4, 2.0, 0.5).unwrap()),
            )
            .unwrap(),
    ];
    session
        .run(SyntheticSource::gaussian(1, 0.5, 99).with_limit(384), None)
        .unwrap();

    // Sanity: the workload must exercise both paths and the filter.
    let gp = session.stats(ids[0]).unwrap();
    assert!(gp.slow_path > 0, "stream too easy: no slow-path tuples");
    assert!(gp.fast_path > 0, "stream too hard: no fast-path tuples");
    let sel = session.stats(ids[2]).unwrap();
    assert!(sel.filtered > 0 && sel.kept > 0, "predicate not selective");

    ids.into_iter()
        .map(|id| session.digest(id).unwrap())
        .collect()
}

#[test]
fn digests_identical_for_workers_1_2_8() {
    let d1 = run_with_workers(1);
    let d2 = run_with_workers(2);
    let d8 = run_with_workers(8);
    assert_eq!(d1, d2, "1 vs 2 workers");
    assert_eq!(d1, d8, "1 vs 8 workers");
}

/// The observability layer must be invisible in the outputs: digests with
/// a recording registry, a switched-off registry, and no registry at all
/// are byte-identical at every worker count.
#[test]
fn metrics_do_not_perturb_digests() {
    for workers in [1usize, 2, 8] {
        let bare = run_with_workers_metrics(workers, None);
        let off = run_with_workers_metrics(workers, Some(false));
        let on = run_with_workers_metrics(workers, Some(true));
        assert_eq!(bare, off, "workers={workers}: disabled registry");
        assert_eq!(bare, on, "workers={workers}: recording registry");
    }
}

#[test]
fn different_seed_changes_outputs() {
    let base = run_with_workers(1);
    let f1 = PaperFunction::F1.instantiate(1);
    let udf1 = BlackBoxUdf::new(Arc::new(f1.clone()), udf_core::udf::CostModel::Free);
    let mut session = Session::new(EngineConfig::new().batch_size(64).seed(123));
    let q = session
        .subscribe(
            QuerySpec::new("gp", udf1, acc(), StreamStrategy::Gp).output_range(f1.output_range()),
        )
        .unwrap();
    session
        .run(SyntheticSource::gaussian(1, 0.5, 99).with_limit(384), None)
        .unwrap();
    assert_ne!(
        session.digest(q).unwrap(),
        base[0],
        "different engine seed must change the emitted distributions"
    );
}
