//! Regression: `max_model_points` is enforced *inside* Algorithm 5, not
//! just at the batch-routing layer.
//!
//! The engine's accept hook rules each tuple against the model as it
//! stands when the verdict is made — but a burst of reroutes already
//! queued in one micro-batch used to be able to overshoot the cap: the
//! hook only stopped *routing* once the model was full, while every
//! rerouted tuple could still add up to `max_points_per_input` training
//! points inside `Olgapro::process`. With the cap in the core config the
//! slow path stops growing the model itself, so the invariant
//! `model().len() <= cap` holds after (and during) every batch.

use std::sync::Arc;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::udf::{BlackBoxUdf, CostModel};
use udf_stream::prelude::*;
use udf_workloads::synthetic::{sweep_inputs, PaperFunction};

#[test]
fn mid_batch_reroute_burst_cannot_overshoot_the_cap() {
    let cap = 8usize;
    let f2 = PaperFunction::F2.instantiate(1); // one spiky peak
    let udf = BlackBoxUdf::new(Arc::new(f2.clone()), CostModel::Free);
    let acc = AccuracyRequirement::new(0.15, 0.05, 0.0, Metric::Ks).unwrap();

    let mut session = Session::new(EngineConfig::new().workers(2).batch_size(32).seed(7));
    let q = session
        .subscribe(
            QuerySpec::new("f2-capped", udf, acc, StreamStrategy::Gp)
                .output_range(f2.output_range())
                .max_model_points(cap),
        )
        .unwrap();

    // Drive one 32-tuple micro-batch per run over a domain sweep (every
    // batch visits fresh regions, so reroutes come in bursts) and pin the
    // invariant after each batch.
    let mut inputs = sweep_inputs(1, 192, 0.4);
    for step in 0..6 {
        let chunk: Vec<_> = inputs.drain(..32).collect();
        session.run(VecSource::new(chunk), None).unwrap();
        let points = session
            .model_points(q)
            .unwrap()
            .expect("GP subscription has a model");
        assert!(
            points <= cap,
            "batch {step}: model grew to {points} > cap {cap}"
        );
    }

    let stats = session.stats(q).unwrap();
    assert_eq!(stats.kept, 192, "the cap must not drop tuples");
    assert!(
        stats.slow_path > 0,
        "workload too easy: the slow path was never exercised"
    );
    assert!(
        stats.cap_hits > 0,
        "degraded-accuracy acceptance must be observable: {stats:?}"
    );
    // Once full (stop-growing), the model stops paying UDF calls entirely:
    // total calls stay bounded by the cap plus the first tuple's tuning
    // allowance, independent of stream length.
    assert!(
        stats.udf_calls <= (cap + 10) as u64,
        "training cost not bounded: {} calls",
        stats.udf_calls
    );
}
