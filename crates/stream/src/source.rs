//! Stream sources: producers of uncertain input tuples.
//!
//! A [`Source`] models the arrival side of a continuous query: an unbounded
//! (or bounded) sequence of uncertain tuples, pulled in micro-batches by the
//! engine's ingest thread. Sources own their RNG state, so a source built
//! with a fixed seed produces the same tuple sequence on every run — the
//! first half of the engine's determinism contract.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_prob::InputDistribution;
use udf_workloads::astro::GalaxyCatalog;
use udf_workloads::synthetic::{generate_inputs, InputKind};

/// A producer of uncertain tuples, pulled in micro-batches.
pub trait Source {
    /// Dimensionality of every tuple this source yields.
    fn dim(&self) -> usize;

    /// Append up to `max` tuples to `out`; returns how many were appended.
    /// Returning `0` signals exhaustion and terminates the run.
    fn next_batch(&mut self, max: usize, out: &mut Vec<InputDistribution>) -> usize;
}

/// The §6.1-B synthetic workload as an unbounded stream: tuples with means
/// drawn uniformly from the function domain and the configured marginal
/// kind/spread.
#[derive(Debug)]
pub struct SyntheticSource {
    kind: InputKind,
    dim: usize,
    sigma: f64,
    rng: StdRng,
    produced: u64,
    limit: Option<u64>,
}

impl SyntheticSource {
    /// Gaussian marginals with spread `sigma` (the paper's default input
    /// model), seeded for reproducibility.
    pub fn gaussian(dim: usize, sigma: f64, seed: u64) -> Self {
        SyntheticSource::new(InputKind::Gaussian, dim, sigma, seed)
    }

    /// Any marginal kind from the synthetic workload family.
    pub fn new(kind: InputKind, dim: usize, sigma: f64, seed: u64) -> Self {
        SyntheticSource {
            kind,
            dim,
            sigma,
            rng: StdRng::seed_from_u64(seed),
            produced: 0,
            limit: None,
        }
    }

    /// Make the stream finite: exhaust after `n` tuples.
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Tuples produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl Source for SyntheticSource {
    fn dim(&self) -> usize {
        self.dim
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<InputDistribution>) -> usize {
        let want = match self.limit {
            Some(limit) => (limit.saturating_sub(self.produced) as usize).min(max),
            None => max,
        };
        if want == 0 {
            return 0;
        }
        out.extend(generate_inputs(
            self.kind,
            self.dim,
            want,
            self.sigma,
            &mut self.rng,
        ));
        self.produced += want as u64;
        want
    }
}

/// Which uncertain attribute an [`AstroSource`] streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AstroMode {
    /// One redshift per tuple (the `GalAge` input shape).
    Single,
    /// A redshift pair per tuple (the `ComoveVol` / `AngDist` input shape).
    Pairs,
}

/// The astrophysics pipeline as a stream: uncertain redshifts (or redshift
/// pairs) drawn from a synthetic SDSS-like galaxy catalog, cycled so the
/// stream is unbounded.
#[derive(Debug)]
pub struct AstroSource {
    catalog: GalaxyCatalog,
    mode: AstroMode,
    cursor: usize,
    produced: u64,
    limit: Option<u64>,
}

impl AstroSource {
    /// Stream single-redshift tuples (inputs for `GalAge`-style UDFs).
    pub fn galage(catalog: GalaxyCatalog) -> Self {
        AstroSource {
            catalog,
            mode: AstroMode::Single,
            cursor: 0,
            produced: 0,
            limit: None,
        }
    }

    /// Stream redshift-pair tuples (inputs for `ComoveVol`/`AngDist`).
    pub fn pairs(catalog: GalaxyCatalog) -> Self {
        AstroSource {
            catalog,
            mode: AstroMode::Pairs,
            cursor: 0,
            produced: 0,
            limit: None,
        }
    }

    /// Make the stream finite: exhaust after `n` tuples.
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }
}

impl Source for AstroSource {
    fn dim(&self) -> usize {
        match self.mode {
            AstroMode::Single => 1,
            AstroMode::Pairs => 2,
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<InputDistribution>) -> usize {
        let n_rows = self.catalog.len();
        if n_rows == 0 {
            return 0;
        }
        let want = match self.limit {
            Some(limit) => (limit.saturating_sub(self.produced) as usize).min(max),
            None => max,
        };
        for _ in 0..want {
            let i = self.cursor % n_rows;
            out.push(match self.mode {
                AstroMode::Single => self.catalog.galage_input(i),
                AstroMode::Pairs => self.catalog.pair_input(i, (i + 1) % n_rows),
            });
            self.cursor += 1;
        }
        self.produced += want as u64;
        want
    }
}

/// Boxed sources forward, so callers holding heterogeneous sources (e.g. a
/// query front-end with a registry of named stream factories) can drive
/// [`Session::run`](crate::session::Session::run) without knowing the
/// concrete type.
impl Source for Box<dyn Source + Send> {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<InputDistribution>) -> usize {
        (**self).next_batch(max, out)
    }
}

/// A finite in-memory source — handy for tests and replay. Tuples are
/// moved out as they are consumed.
#[derive(Debug)]
pub struct VecSource {
    dim: usize,
    tuples: std::collections::VecDeque<InputDistribution>,
}

impl VecSource {
    /// Wrap an explicit tuple list (must be non-empty and equi-dimensional).
    pub fn new(tuples: Vec<InputDistribution>) -> Self {
        assert!(!tuples.is_empty(), "VecSource needs at least one tuple");
        let dim = tuples[0].dim();
        assert!(
            tuples.iter().all(|t| t.dim() == dim),
            "VecSource tuples must share a dimensionality"
        );
        VecSource {
            dim,
            tuples: tuples.into(),
        }
    }
}

impl Source for VecSource {
    fn dim(&self) -> usize {
        self.dim
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<InputDistribution>) -> usize {
        let take = max.min(self.tuples.len());
        out.extend(self.tuples.drain(..take));
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_bounded() {
        let mut a = SyntheticSource::gaussian(2, 0.5, 42).with_limit(10);
        let mut b = SyntheticSource::gaussian(2, 0.5, 42).with_limit(10);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        assert_eq!(a.next_batch(7, &mut va), 7);
        assert_eq!(a.next_batch(7, &mut va), 3);
        assert_eq!(a.next_batch(7, &mut va), 0);
        while b.next_batch(4, &mut vb) > 0 {}
        assert_eq!(va.len(), 10);
        assert_eq!(vb.len(), 10);
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.mean(), y.mean(), "same seed must give same tuples");
        }
    }

    #[test]
    fn astro_source_cycles() {
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = GalaxyCatalog::generate(8, &mut rng);
        let mut src = AstroSource::galage(catalog);
        assert_eq!(src.dim(), 1);
        let mut out = Vec::new();
        assert_eq!(
            src.next_batch(20, &mut out),
            20,
            "cycling source never dries up"
        );

        let mut rng = StdRng::seed_from_u64(5);
        let catalog = GalaxyCatalog::generate(8, &mut rng);
        let mut pairs = AstroSource::pairs(catalog).with_limit(5);
        let mut out = Vec::new();
        assert_eq!(pairs.next_batch(20, &mut out), 5);
        assert_eq!(out[0].dim(), 2);
    }

    #[test]
    fn vec_source_drains() {
        let tuples = vec![
            InputDistribution::diagonal_gaussian(&[(1.0, 0.1)]).unwrap(),
            InputDistribution::diagonal_gaussian(&[(2.0, 0.1)]).unwrap(),
        ];
        let mut src = VecSource::new(tuples);
        let mut out = Vec::new();
        assert_eq!(src.next_batch(10, &mut out), 2);
        assert_eq!(src.next_batch(10, &mut out), 0);
    }
}
