//! The per-query and engine-level statistics registry.

use std::fmt;
use std::time::Duration;

/// Counters for one subscription, updated after every micro-batch.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Subscription name (for reports).
    pub query: String,
    /// Tuples examined.
    pub tuples_in: u64,
    /// Tuples emitted (survived any predicate).
    pub kept: u64,
    /// Tuples dropped by online filtering.
    pub filtered: u64,
    /// Tuples fully served by the parallel read-only fast path.
    pub fast_path: u64,
    /// Tuples that needed the sequential (model-mutating) slow path.
    pub slow_path: u64,
    /// UDF invocations attributed to this subscription.
    pub udf_calls: u64,
    /// Tuples emitted at a degraded (achieved) error bound because the
    /// GP model cap blocked further online tuning — nonzero only for
    /// capped GP subscriptions ([`QuerySpec::max_model_points`]).
    ///
    /// [`QuerySpec::max_model_points`]: crate::session::QuerySpec::max_model_points
    pub cap_hits: u64,
    /// Micro-batches processed.
    pub batches: u64,
    /// Wall-clock time this subscription spent evaluating.
    pub busy: Duration,
}

impl StreamStats {
    /// Fraction of examined tuples that survived filtering (1.0 with no
    /// predicate). `None` before any tuple arrived.
    pub fn selectivity(&self) -> Option<f64> {
        (self.tuples_in > 0).then(|| self.kept as f64 / self.tuples_in as f64)
    }

    /// Mean evaluation latency per examined tuple.
    pub fn mean_latency(&self) -> Option<Duration> {
        (self.tuples_in > 0)
            .then(|| Duration::from_secs_f64(self.busy.as_secs_f64() / self.tuples_in as f64))
    }

    /// Tuples per second over this subscription's busy time.
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.busy.as_secs_f64();
        (secs > 0.0).then(|| self.tuples_in as f64 / secs)
    }

    /// Fraction of tuples served without touching the model.
    pub fn fast_path_fraction(&self) -> Option<f64> {
        let routed = self.fast_path + self.slow_path;
        (routed > 0).then(|| self.fast_path as f64 / routed as f64)
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let line = udf_obs::fmt::KvLine::new()
            .label(&self.query, 16)
            .field_pad("in", self.tuples_in, 8)
            .field_pad("kept", self.kept, 8)
            .field_pad("filtered", self.filtered, 7)
            .field_pad("fast", self.fast_path, 8)
            .field_pad("slow", self.slow_path, 5)
            .field_pad("calls", self.udf_calls, 9)
            .field_pad("cap_hits", self.cap_hits, 5)
            .raw(&format!(
                "{:>9.0} tup/s  {:>8.1} µs/tup",
                self.throughput().unwrap_or(0.0),
                self.mean_latency().unwrap_or(Duration::ZERO).as_secs_f64() * 1e6,
            ));
        f.write_str(&line.finish())
    }
}

/// Engine-level counters for one [`run`](crate::session::Session::run).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Tuples ingested from the source this run.
    pub tuples: u64,
    /// Micro-batches dispatched this run.
    pub batches: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Worker threads in use.
    pub workers: usize,
    /// Subscriptions served.
    pub queries: usize,
}

impl EngineStats {
    /// End-to-end tuple throughput: `tuples × queries / elapsed` counts one
    /// unit of work per (tuple, subscription) pair.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            (self.tuples * self.queries as u64) as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tuples × {} queries in {:.3}s ({} batches, {} workers): {:.0} tuple-evals/s",
            self.tuples,
            self.queries,
            self.elapsed.as_secs_f64(),
            self.batches,
            self.workers,
            self.throughput(),
        )
    }
}

/// A compact record of one emitted tuple, kept in a bounded ring buffer for
/// inspection (dashboards, examples, tests).
#[derive(Debug, Clone, Copy)]
pub struct KeptSummary {
    /// Global index of the source tuple.
    pub tuple: u64,
    /// Median of the output distribution.
    pub median: f64,
    /// Attached total error bound.
    pub error_bound: f64,
    /// Tuple-existence probability (1.0 without a predicate).
    pub tep: f64,
}

/// FNV-1a accumulator hashing emitted distributions byte-for-byte; equal
/// digests across configurations witness the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
}

impl Digest {
    /// Fold one 64-bit word into the digest.
    pub fn push_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Fold a float's exact bit pattern into the digest.
    pub fn push_f64(&mut self, value: f64) {
        self.push_u64(value.to_bits());
    }

    /// Fold every sample of an ECDF into the digest.
    pub fn push_ecdf(&mut self, ecdf: &udf_prob::Ecdf) {
        self.push_u64(ecdf.len() as u64);
        for &v in ecdf.values() {
            self.push_f64(v);
        }
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::default();
        a.push_f64(1.0);
        a.push_f64(2.0);
        let mut b = Digest::default();
        b.push_f64(2.0);
        b.push_f64(1.0);
        assert_ne!(a.value(), b.value());
        let mut c = Digest::default();
        c.push_f64(1.0);
        c.push_f64(2.0);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn stats_ratios() {
        let stats = StreamStats {
            query: "q".into(),
            tuples_in: 10,
            kept: 4,
            filtered: 6,
            fast_path: 8,
            slow_path: 2,
            udf_calls: 100,
            cap_hits: 0,
            batches: 1,
            busy: Duration::from_millis(5),
        };
        assert_eq!(stats.selectivity(), Some(0.4));
        assert_eq!(stats.fast_path_fraction(), Some(0.8));
        assert!(stats.throughput().unwrap() > 0.0);
        let empty = StreamStats::default();
        assert_eq!(empty.selectivity(), None);
        assert_eq!(empty.mean_latency(), None);
    }
}
