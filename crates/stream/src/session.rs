//! The user-facing continuous-query API.
//!
//! A [`Session`] owns one [`crate::engine::StreamEngine`] and
//! exposes the subscribe/run/inspect lifecycle:
//!
//! ```text
//! let mut session = Session::new(EngineConfig::new().workers(4));
//! let q = session.subscribe(QuerySpec::new(...))?;   // many times
//! session.run(source, Some(100_000))?;                // repeatable
//! println!("{}", session.stats(q)?);
//! ```

use crate::engine::{EngineConfig, StreamEngine, StreamStrategy, SubscribeParams};
use crate::source::Source;
use crate::stats::{EngineStats, KeptSummary, StreamStats};
use crate::Result;
use udf_core::config::AccuracyRequirement;
use udf_core::filtering::Predicate;
use udf_core::udf::BlackBoxUdf;

/// Handle to one registered subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub(crate) usize);

/// A continuous query: one UDF, an accuracy requirement, an evaluation
/// strategy, and optionally a selection predicate.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub(crate) name: String,
    pub(crate) udf: BlackBoxUdf,
    pub(crate) accuracy: AccuracyRequirement,
    pub(crate) strategy: StreamStrategy,
    pub(crate) output_range: f64,
    pub(crate) predicate: Option<Predicate>,
    pub(crate) retain: usize,
    pub(crate) record_decisions: bool,
    pub(crate) max_model_points: usize,
}

impl QuerySpec {
    /// A projection-style continuous query (`SELECT udf(x) FROM stream`).
    pub fn new(
        name: impl Into<String>,
        udf: BlackBoxUdf,
        accuracy: AccuracyRequirement,
        strategy: StreamStrategy,
    ) -> Self {
        QuerySpec {
            name: name.into(),
            udf,
            accuracy,
            strategy,
            output_range: 1.0,
            predicate: None,
            retain: 8,
            record_decisions: false,
            max_model_points: 0,
        }
    }

    /// Caller's estimate of the UDF output spread — scales Γ and λ for the
    /// GP path (ignored by MC). Defaults to 1.0.
    pub fn output_range(mut self, range: f64) -> Self {
        self.output_range = range;
        self
    }

    /// Turn the query into a selection
    /// (`... WHERE udf(x) ∈ [lo, hi] WITH Pr ≥ θ`): tuples whose
    /// tuple-existence probability upper bound falls below θ are dropped by
    /// the online filter.
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// How many recent emitted tuples to keep for inspection (default 8).
    pub fn retain(mut self, n: usize) -> Self {
        self.retain = n;
        self
    }

    /// Record every keep/filter decision (for agreement tests and audits).
    pub fn record_decisions(mut self) -> Self {
        self.record_decisions = true;
        self
    }

    /// Cap the GP model at `n` training points.
    ///
    /// **`0` is a sentinel meaning *unbounded*, and it is the default.**
    /// An unbounded model keeps absorbing points on hard tuples: per-tuple
    /// inference is O(m²) and retraining O(m³) in the model size m, so a
    /// spiky UDF under a tight accuracy silently degrades a long stream
    /// into a quadratic/cubic wall. Set a cap for any long-running GP
    /// subscription; over-budget tuples are then emitted fast-path at
    /// their *achieved* error bound (which stays attached to every output)
    /// and counted in [`StreamStats::cap_hits`].
    ///
    /// Nonzero caps smaller than the GP bootstrap size are rejected by
    /// [`Session::subscribe`] — such a model could never finish
    /// bootstrapping and would thrash. Ignored by the MC strategy.
    pub fn max_model_points(mut self, n: usize) -> Self {
        self.max_model_points = n;
        self
    }

    /// Reject invalid builder values with a typed error. Runs at
    /// [`Session::subscribe`] for every strategy — previously a
    /// non-finite/non-positive [`output_range`](QuerySpec::output_range)
    /// was only caught on the GP path (via `OlgaproConfig`), letting MC
    /// subscriptions carry poisoned configuration silently.
    fn validate(&self) -> crate::Result<()> {
        if !(self.output_range > 0.0 && self.output_range.is_finite()) {
            return Err(udf_core::CoreError::InvalidConfig {
                what: "output_range",
                value: self.output_range,
            }
            .into());
        }
        Ok(())
    }
}

/// A long-lived, multi-query streaming session.
pub struct Session {
    engine: StreamEngine,
}

impl Session {
    /// Create a session with the given engine configuration.
    pub fn new(config: EngineConfig) -> Self {
        Session {
            engine: StreamEngine::new(config),
        }
    }

    /// Wire observability into the session: scheduler, engine, and every
    /// GP subscription (current and future) register their handles in
    /// `reg`. Metrics are purely observational — run digests are
    /// byte-identical whether or not a registry is attached.
    pub fn set_metrics(&mut self, reg: &udf_obs::MetricsRegistry) {
        self.engine.set_metrics(reg);
    }

    /// Builder-style variant of [`set_metrics`](Session::set_metrics).
    #[must_use]
    pub fn with_metrics(mut self, reg: &udf_obs::MetricsRegistry) -> Self {
        self.set_metrics(reg);
        self
    }

    /// Wire structured tracing into the session: the scheduler's reroute
    /// and phase events plus every GP subscription's model-lifecycle
    /// events (current and future) share `tracer`'s per-lane rings.
    /// Tracing is purely observational — run digests are byte-identical
    /// whether or not a buffer is attached.
    pub fn set_tracer(&mut self, tracer: udf_obs::TraceBuffer) {
        self.engine.set_tracer(tracer);
    }

    /// Builder-style variant of [`set_tracer`](Session::set_tracer).
    #[must_use]
    pub fn with_tracer(mut self, tracer: udf_obs::TraceBuffer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Enable the periodic stream health monitor (see
    /// [`HealthMonitor`](crate::health::HealthMonitor)): every
    /// `monitor.sample_every()` micro-batches the engine folds cumulative
    /// tuple totals (plus scheduler counter deltas when metrics are wired)
    /// into the monitor's bounded time-series ring.
    pub fn enable_health(&mut self, monitor: crate::health::HealthMonitor) {
        self.engine.enable_health(monitor);
    }

    /// Builder-style variant of [`enable_health`](Session::enable_health).
    #[must_use]
    pub fn with_health(mut self, monitor: crate::health::HealthMonitor) -> Self {
        self.enable_health(monitor);
        self
    }

    /// The health monitor's trend window, when enabled.
    pub fn health(&self) -> Option<&crate::health::HealthMonitor> {
        self.engine.health()
    }

    /// The engine configuration in force.
    pub fn config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// Register a continuous query. Subscriptions persist (with their warm
    /// model state) across [`run`](Session::run) calls. Invalid builder
    /// values (e.g. a non-finite output range) are rejected here with a
    /// typed error rather than at first evaluation.
    pub fn subscribe(&mut self, spec: QuerySpec) -> Result<QueryId> {
        spec.validate()?;
        let QuerySpec {
            name,
            udf,
            accuracy,
            strategy,
            output_range,
            predicate,
            retain,
            record_decisions,
            max_model_points,
        } = spec;
        self.engine
            .subscribe(SubscribeParams {
                name,
                udf,
                accuracy,
                strategy,
                output_range,
                predicate,
                retain,
                record_decisions,
                max_model_points,
            })
            .map(QueryId)
    }

    /// Drive every subscription over `source` until exhaustion, or until
    /// `limit` tuples have been ingested (whichever comes first). Returns
    /// engine-level counters for this run.
    pub fn run<S: Source + Send>(&mut self, source: S, limit: Option<u64>) -> Result<EngineStats> {
        self.engine.run(source, limit)
    }

    /// Per-query statistics.
    pub fn stats(&self, id: QueryId) -> Result<&StreamStats> {
        self.engine.query(id.0).map(|q| &q.stats)
    }

    /// Statistics for every subscription, in registration order.
    pub fn all_stats(&self) -> Vec<&StreamStats> {
        self.engine.queries().iter().map(|q| &q.stats).collect()
    }

    /// Determinism witness: a hash over every distribution this query has
    /// emitted (and every filter decision), in stream order.
    pub fn digest(&self, id: QueryId) -> Result<u64> {
        self.engine.query(id.0).map(|q| q.digest.value())
    }

    /// The query's most recent emitted tuples (bounded by
    /// [`QuerySpec::retain`]).
    pub fn recent(&self, id: QueryId) -> Result<Vec<KeptSummary>> {
        self.engine
            .query(id.0)
            .map(|q| q.recent.iter().copied().collect())
    }

    /// Keep/filter decisions `(global tuple index, kept)`, when the query
    /// was registered with [`QuerySpec::record_decisions`].
    pub fn decisions(&self, id: QueryId) -> Result<Option<&[(u64, bool)]>> {
        self.engine.query(id.0).map(|q| q.decisions.as_deref())
    }

    /// Current GP model size (training points) of a subscription, `None`
    /// for MC subscriptions. With [`QuerySpec::max_model_points`] set this
    /// never exceeds the cap — including mid-batch, when a burst of
    /// slow-path reroutes crosses it (the cap is enforced inside
    /// Algorithm 5 itself, not just at the batch-routing layer).
    pub fn model_points(&self, id: QueryId) -> Result<Option<usize>> {
        self.engine.query(id.0).map(|q| q.model_points())
    }

    /// Counters for the most recent [`run`](Session::run).
    pub fn last_run(&self) -> EngineStats {
        self.engine.last_run()
    }

    /// Total tuples ingested over the session's lifetime.
    pub fn tuples_seen(&self) -> u64 {
        self.engine.tuples_seen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SyntheticSource, VecSource};
    use udf_core::config::Metric;
    use udf_prob::InputDistribution;

    fn acc() -> AccuracyRequirement {
        AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap()
    }

    fn sin_udf() -> BlackBoxUdf {
        BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin())
    }

    #[test]
    fn model_cap_bounds_training_cost() {
        // Same workload with and without a model cap: the capped query
        // must stop paying UDF calls once its model is full, while both
        // keep emitting every tuple.
        let run = |cap: usize| {
            let mut session = Session::new(EngineConfig::new().batch_size(32).seed(13));
            let mut spec =
                QuerySpec::new("gp", sin_udf(), acc(), StreamStrategy::Gp).output_range(2.0);
            if cap > 0 {
                spec = spec.max_model_points(cap);
            }
            let q = session.subscribe(spec).unwrap();
            session
                .run(SyntheticSource::gaussian(1, 0.6, 21).with_limit(256), None)
                .unwrap();
            let s = session.stats(q).unwrap().clone();
            s
        };
        let uncapped = run(0);
        let capped = run(12);
        assert_eq!(capped.kept, 256, "cap must not drop tuples");
        assert!(
            capped.udf_calls <= uncapped.udf_calls,
            "capped {} vs uncapped {}",
            capped.udf_calls,
            uncapped.udf_calls
        );
        assert!(
            capped.udf_calls <= 12 + 10,
            "model cap not enforced: {} calls",
            capped.udf_calls
        );
        assert!(
            capped.slow_path < uncapped.slow_path,
            "capped slow-path {} should be below uncapped {}",
            capped.slow_path,
            uncapped.slow_path
        );
        assert!(
            capped.cap_hits > 0,
            "degraded-accuracy acceptance must be counted, not silent"
        );
        assert_eq!(uncapped.cap_hits, 0);
    }

    #[test]
    fn subscribe_run_inspect_lifecycle() {
        let mut session = Session::new(EngineConfig::new().workers(2).batch_size(32).seed(3));
        let gp = session
            .subscribe(QuerySpec::new("gp", sin_udf(), acc(), StreamStrategy::Gp).output_range(2.0))
            .unwrap();
        let mc = session
            .subscribe(QuerySpec::new("mc", sin_udf(), acc(), StreamStrategy::Mc))
            .unwrap();

        let run = session
            .run(SyntheticSource::gaussian(1, 0.4, 9).with_limit(96), None)
            .unwrap();
        assert_eq!(run.tuples, 96);
        assert_eq!(run.batches, 3);
        assert_eq!(run.queries, 2);

        for id in [gp, mc] {
            let s = session.stats(id).unwrap();
            assert_eq!(s.tuples_in, 96);
            assert_eq!(s.kept, 96);
            assert_eq!(s.filtered, 0);
            assert_eq!(s.selectivity(), Some(1.0));
        }
        // GP reuses its model: far fewer calls than MC's m-per-tuple.
        let gp_calls = session.stats(gp).unwrap().udf_calls;
        let mc_calls = session.stats(mc).unwrap().udf_calls;
        assert!(
            gp_calls * 10 < mc_calls,
            "GP {gp_calls} calls vs MC {mc_calls}"
        );
        assert_eq!(session.recent(gp).unwrap().len(), 8);
        assert_eq!(session.tuples_seen(), 96);
    }

    #[test]
    fn state_persists_across_runs() {
        let mut session = Session::new(EngineConfig::new().batch_size(16).seed(5));
        let q = session
            .subscribe(
                QuerySpec::new("warm", sin_udf(), acc(), StreamStrategy::Gp).output_range(2.0),
            )
            .unwrap();
        session
            .run(SyntheticSource::gaussian(1, 0.4, 1).with_limit(64), None)
            .unwrap();
        let calls_cold = session.stats(q).unwrap().udf_calls;
        session
            .run(SyntheticSource::gaussian(1, 0.4, 2).with_limit(64), None)
            .unwrap();
        let calls_total = session.stats(q).unwrap().udf_calls;
        assert_eq!(session.stats(q).unwrap().tuples_in, 128);
        // The second run rides the warm model: it must add (much) less than
        // the first run's training cost.
        assert!(
            calls_total - calls_cold <= calls_cold,
            "cold {calls_cold}, second run added {}",
            calls_total - calls_cold
        );
    }

    #[test]
    fn predicate_filters_and_records_decisions() {
        let mut session = Session::new(EngineConfig::new().workers(2).batch_size(16).seed(7));
        // id(x) over two clusters: N(0, 0.1) and N(5, 0.1); predicate keeps
        // values near 5.
        let tuples: Vec<InputDistribution> = (0..32)
            .map(|i| {
                let mu = if i % 2 == 0 { 0.0 } else { 5.0 };
                InputDistribution::diagonal_gaussian(&[(mu, 0.1)]).unwrap()
            })
            .collect();
        let pred = Predicate::new(4.0, 6.0, 0.5).unwrap();
        let q = session
            .subscribe(
                QuerySpec::new(
                    "sel",
                    BlackBoxUdf::from_fn("id", 1, |x| x[0]),
                    acc(),
                    StreamStrategy::Mc,
                )
                .predicate(pred)
                .record_decisions(),
            )
            .unwrap();
        session.run(VecSource::new(tuples), None).unwrap();
        let s = session.stats(q).unwrap();
        assert_eq!(s.kept, 16, "only the N(5, ·) cluster passes");
        assert_eq!(s.filtered, 16);
        let decisions = session.decisions(q).unwrap().unwrap();
        for &(gidx, kept) in decisions {
            assert_eq!(kept, !gidx.is_multiple_of(2), "tuple {gidx}");
        }
    }

    #[test]
    fn panicking_udf_surfaces_as_worker_panicked() {
        let mut session = Session::new(EngineConfig::new().workers(2).batch_size(8).seed(1));
        let bomb = BlackBoxUdf::from_fn("bomb", 1, |_x| panic!("udf exploded"));
        session
            .subscribe(QuerySpec::new("boom", bomb, acc(), StreamStrategy::Mc))
            .unwrap();
        let err = session
            .run(SyntheticSource::gaussian(1, 0.4, 1).with_limit(16), None)
            .unwrap_err();
        assert!(
            matches!(err, crate::StreamError::WorkerPanicked),
            "expected WorkerPanicked, got {err}"
        );
    }

    #[test]
    fn subscribe_rejects_invalid_output_range() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            // MC subscriptions must be validated too, not just GP ones.
            for strategy in [StreamStrategy::Mc, StreamStrategy::Gp] {
                let mut session = Session::new(EngineConfig::new());
                let err = session
                    .subscribe(QuerySpec::new("bad", sin_udf(), acc(), strategy).output_range(bad))
                    .unwrap_err();
                assert!(
                    matches!(
                        &err,
                        crate::StreamError::Core(udf_core::CoreError::InvalidConfig {
                            what: "output_range",
                            ..
                        })
                    ),
                    "range {bad} / {strategy:?}: got {err}"
                );
            }
        }
    }

    #[test]
    fn subscribe_rejects_cap_below_bootstrap() {
        for bad in [1usize, 2, 4] {
            let mut session = Session::new(EngineConfig::new());
            let err = session
                .subscribe(
                    QuerySpec::new("bad", sin_udf(), acc(), StreamStrategy::Gp)
                        .output_range(2.0)
                        .max_model_points(bad),
                )
                .unwrap_err();
            assert!(
                matches!(
                    &err,
                    crate::StreamError::Core(udf_core::CoreError::InvalidConfig {
                        what: "max_model_points",
                        ..
                    })
                ),
                "cap {bad}: got {err}"
            );
        }
        // 0 (the uncapped sentinel) and bootstrap-sized caps are accepted;
        // MC ignores the knob entirely.
        let mut session = Session::new(EngineConfig::new());
        assert!(session
            .subscribe(
                QuerySpec::new("ok", sin_udf(), acc(), StreamStrategy::Gp)
                    .output_range(2.0)
                    .max_model_points(5),
            )
            .is_ok());
        assert!(session
            .subscribe(
                QuerySpec::new("mc", sin_udf(), acc(), StreamStrategy::Mc).max_model_points(1),
            )
            .is_ok());
    }

    #[test]
    fn errors_are_reported() {
        let mut session = Session::new(EngineConfig::new());
        let err = session
            .run(SyntheticSource::gaussian(1, 0.4, 1).with_limit(4), None)
            .unwrap_err();
        assert!(matches!(err, crate::StreamError::NoSubscriptions));

        session
            .subscribe(QuerySpec::new(
                "two-dim",
                BlackBoxUdf::from_fn("sum", 2, |x| x[0] + x[1]),
                acc(),
                StreamStrategy::Mc,
            ))
            .unwrap();
        let err = session
            .run(SyntheticSource::gaussian(1, 0.4, 1).with_limit(4), None)
            .unwrap_err();
        assert!(matches!(err, crate::StreamError::DimensionMismatch { .. }));

        assert!(session.stats(QueryId(99)).is_err());
    }

    #[test]
    fn auto_strategy_resolves_by_cost() {
        use std::time::Duration;
        use udf_core::udf::CostModel;
        let mut session = Session::new(EngineConfig::new().batch_size(8).seed(2));
        // Free UDF → MC; 2 ms UDF → GP (§6.3 rules).
        let fast = session
            .subscribe(QuerySpec::new(
                "fast",
                sin_udf(),
                acc(),
                StreamStrategy::Auto,
            ))
            .unwrap();
        let slow = session
            .subscribe(
                QuerySpec::new(
                    "slow",
                    sin_udf().with_cost(CostModel::Simulated(Duration::from_millis(2))),
                    acc(),
                    StreamStrategy::Auto,
                )
                .output_range(2.0),
            )
            .unwrap();
        session
            .run(SyntheticSource::gaussian(1, 0.4, 4).with_limit(16), None)
            .unwrap();
        // MC spends m calls per tuple; GP's warm model spends almost none.
        let fast_calls = session.stats(fast).unwrap().udf_calls;
        let slow_calls = session.stats(slow).unwrap().udf_calls;
        assert!(
            fast_calls > slow_calls,
            "MC {fast_calls} vs GP {slow_calls}"
        );
        assert!(session.stats(slow).unwrap().slow_path > 0);
    }
}
