//! # udf-stream — a continuous-query engine over uncertain-tuple streams
//!
//! The paper (Tran, Diao, Sutton & Liu, VLDB 2013) targets *online* UDF
//! evaluation: tuples arrive on an unbounded stream and every tuple must be
//! answered with a distribution meeting the user's `(ε, δ)` requirement.
//! The rest of this workspace provides the per-tuple machinery (Monte Carlo
//! in `udf_core::mc`, OLGAPRO in `udf_core::olgapro`, batch parallelism in
//! `udf_core::parallel`, early filtering in `udf_core::filtering`); this
//! crate turns it into a long-running, multi-query engine:
//!
//! * [`source::Source`] — unbounded/finite producers of uncertain
//!   tuples, with adapters for the synthetic §6.1 workload generators and
//!   the astrophysics catalog;
//! * [`session::Session`] — register many concurrent
//!   `(query, UDF)` subscriptions, then drive them all over one stream;
//! * a micro-batching scheduler ([`engine`]) that pipelines ingest against
//!   evaluation through a bounded channel (backpressure) and runs each
//!   batch on the persistent worker pool of
//!   [`udf_core::sched::BatchScheduler`] — the same two-phase
//!   fast-path/slow-path core used by `udf_core::parallel` and the
//!   `udf_query` batch executor;
//! * per-query online filtering: subscriptions with a selection
//!   [`Predicate`](udf_core::filtering::Predicate) drop tuples from the
//!   envelope/Hoeffding upper bounds before paying for full evaluation;
//! * [`stats::StreamStats`] — a per-query registry of
//!   throughput, fast/slow-path counts, filter selectivity, and latency.
//!
//! ## Determinism
//!
//! The engine inherits the contract documented in `udf_core::sched`: the
//! RNG for each tuple is derived from `(engine seed, query id, global tuple
//! index)`, slow-path (model-mutating) work runs sequentially in tuple
//! order, and batch boundaries are fixed by the configuration — so a fixed
//! seed yields byte-identical output distributions regardless of the worker
//! count. [`Session::digest`](session::Session::digest) exposes a hash of
//! every emitted distribution as the cheap witness of that guarantee.
//!
//! ## Quickstart
//!
//! ```
//! use udf_stream::prelude::*;
//! use udf_core::config::{AccuracyRequirement, Metric};
//! use udf_core::udf::BlackBoxUdf;
//!
//! let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
//! let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
//!
//! let mut session = Session::new(EngineConfig::new().workers(2).batch_size(64).seed(7));
//! let q = session
//!     .subscribe(QuerySpec::new("sin-stream", udf, acc, StreamStrategy::Gp).output_range(2.0))
//!     .unwrap();
//!
//! let source = SyntheticSource::gaussian(1, 0.4, 11).with_limit(256);
//! session.run(source, None).unwrap();
//!
//! let stats = session.stats(q).unwrap();
//! assert_eq!(stats.tuples_in, 256);
//! assert_eq!(stats.kept, 256); // no predicate: everything is emitted
//! ```

pub mod engine;
pub mod health;
pub mod session;
pub mod source;
pub mod stats;

pub use engine::{EngineConfig, StreamStrategy};
pub use health::{HealthMonitor, HealthSample, HealthTrend};
pub use session::{QueryId, QuerySpec, Session};
pub use source::{AstroSource, Source, SyntheticSource, VecSource};
pub use stats::{EngineStats, KeptSummary, StreamStats};

use std::fmt;

/// Errors raised by the streaming engine.
#[derive(Debug)]
pub enum StreamError {
    /// Evaluation-framework failure inside a subscription.
    Core(udf_core::CoreError),
    /// A subscription's UDF dimensionality disagrees with the source.
    DimensionMismatch {
        /// Subscription name.
        query: String,
        /// The UDF's input dimensionality.
        udf_dim: usize,
        /// The source's tuple dimensionality.
        source_dim: usize,
    },
    /// The referenced query id does not exist in this session.
    UnknownQuery(usize),
    /// `run` was called with no subscriptions registered.
    NoSubscriptions,
    /// A worker thread died (a UDF panicked mid-batch).
    WorkerPanicked,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Core(e) => write!(f, "evaluation error: {e}"),
            StreamError::DimensionMismatch {
                query,
                udf_dim,
                source_dim,
            } => write!(
                f,
                "query {query:?} expects {udf_dim}-dimensional tuples but the source yields {source_dim}-dimensional ones"
            ),
            StreamError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            StreamError::NoSubscriptions => write!(f, "no subscriptions registered"),
            StreamError::WorkerPanicked => write!(f, "a worker thread panicked"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<udf_core::CoreError> for StreamError {
    fn from(e: udf_core::CoreError) -> Self {
        match e {
            // A panic contained by the scheduler pool (a UDF that panicked
            // mid-batch) keeps its dedicated stream-level variant.
            udf_core::CoreError::WorkerPanicked { .. } => StreamError::WorkerPanicked,
            e => StreamError::Core(e),
        }
    }
}

/// Result alias for streaming operations.
pub type Result<T> = std::result::Result<T, StreamError>;

/// The items most streaming applications need.
pub mod prelude {
    pub use crate::engine::{EngineConfig, StreamStrategy};
    pub use crate::session::{QueryId, QuerySpec, Session};
    pub use crate::source::{AstroSource, Source, SyntheticSource, VecSource};
    pub use crate::stats::{EngineStats, StreamStats};
}
