//! The micro-batching scheduler.
//!
//! One [`StreamEngine`] drives N subscriptions over one tuple stream. The
//! run loop is a two-stage pipeline:
//!
//! 1. an **ingest thread** pulls micro-batches from the [`Source`] and
//!    pushes them into a bounded channel — when evaluation falls behind the
//!    channel fills and the producer blocks (backpressure);
//! 2. the **scheduler** pops a batch and runs every subscription over it,
//!    sharding the batch across `workers` threads for the read-only phase
//!    and folding results back sequentially in tuple order.
//!
//! Per-query evaluation delegates to the shared two-phase execution core,
//! [`udf_core::sched::BatchScheduler`]: GP inference against the frozen
//! model (and MC sampling, which never mutates anything) runs in parallel
//! on the engine's persistent worker pool; tuples whose error bound misses
//! the GP budget fall back to the sequential, model-mutating path of
//! Algorithm 5 through the scheduler's reroute verdict. Online filtering is
//! the engine's accept hook, ruled *before* the slow path, so a
//! subscription with a selective predicate drops most tuples at fast-path
//! cost (§5.5 / Remark 2.1).
//!
//! ## Determinism
//!
//! The RNG for tuple `g` of query `q` is seeded with
//! [`mix_seed`]`(engine_seed, q, g)`, where `g` is the tuple's global index
//! in the stream — never the worker id or the batch offset. Slow-path work
//! is applied in tuple order on the scheduler thread. Worker count
//! therefore changes only *where* fast-path work runs, not *what* it
//! computes, and a fixed `(seed, batch_size)` yields byte-identical emitted
//! distributions for any worker count.

use crate::health::HealthMonitor;
use crate::source::Source;
use crate::stats::{Digest, EngineStats, KeptSummary, StreamStats};
use crate::{Result, StreamError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::Instant;
use udf_core::config::{AccuracyRequirement, ModelBudget, OlgaproConfig};
use udf_core::filtering::{gp_filtered, mc_eval_tuple, FilterDecision, Predicate};
use udf_core::hybrid::{rule_based_choice, HybridChoice};
use udf_core::olgapro::{InferScratch, Olgapro, OlgaproMetrics};
use udf_core::output::GpOutput;
use udf_core::sched::{mix_seed, BatchOps, BatchScheduler, SchedMetrics, Verdict};
use udf_core::udf::BlackBoxUdf;
use udf_obs::{Histogram, MetricsRegistry, TraceBuffer};
use udf_prob::{Ecdf, InputDistribution};

/// The engine's own observability handles (the layers below wire their
/// own: the scheduler's `sched.*`, each GP model's `olgapro.*`).
struct EngineMetrics {
    /// Per-(query, micro-batch) evaluation latency.
    batch_ns: Histogram,
    /// Backpressure stalls: time the ingest thread spent blocked pushing
    /// a batch into the bounded channel.
    ingest_wait_ns: Histogram,
}

impl EngineMetrics {
    fn disabled() -> Self {
        EngineMetrics {
            batch_ns: Histogram::disabled(),
            ingest_wait_ns: Histogram::disabled(),
        }
    }

    fn register(reg: &MetricsRegistry) -> Self {
        EngineMetrics {
            batch_ns: reg.histogram("stream.batch_ns"),
            ingest_wait_ns: reg.histogram("stream.ingest_wait_ns"),
        }
    }
}

/// How a subscription evaluates its UDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStrategy {
    /// Direct Monte Carlo sampling (Algorithm 1) — embarrassingly parallel,
    /// always fast-path.
    Mc,
    /// OLGAPRO (Algorithm 5) with a warm persistent model — parallel
    /// read-only inference plus a sequential tuning path.
    Gp,
    /// Pick MC or GP from the UDF's dimensionality and nominal cost using
    /// the paper's §6.3 rules ([`rule_based_choice`]). Unlike the measuring
    /// [`udf_core::hybrid::HybridEvaluator`], the rule-based pick does not
    /// depend on wall-clock timing, so it preserves the engine's
    /// determinism contract.
    Auto,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads for the fast path (≥ 1).
    pub workers: usize,
    /// Tuples per micro-batch (≥ 1). Part of the determinism contract:
    /// runs with different batch sizes may tune GP models at different
    /// points and legitimately diverge.
    pub batch_size: usize,
    /// Bounded-channel capacity, in batches, between ingest and the
    /// scheduler. When full, the source-side thread blocks (backpressure).
    pub queue_depth: usize,
    /// Master seed; every per-tuple RNG derives from it.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            batch_size: 256,
            queue_depth: 4,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// Default configuration: 1 worker, 256-tuple batches, queue depth 4.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the micro-batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the ingest-queue depth (in batches).
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The evaluator state owned by one subscription.
enum Evaluator {
    /// MC path: stateless per-tuple sampling (the UDF handle lives on the
    /// query record).
    Mc,
    /// GP path: the warm OLGAPRO instance plus its ε_GP fast-path budget.
    /// Boxed: the model state dwarfs the MC variant.
    Gp(Box<Olgapro>, f64),
}

/// Internal per-subscription record.
pub(crate) struct QueryState {
    pub(crate) name: String,
    udf: BlackBoxUdf,
    accuracy: AccuracyRequirement,
    predicate: Option<Predicate>,
    eval: Evaluator,
    pub(crate) stats: StreamStats,
    pub(crate) digest: Digest,
    pub(crate) recent: VecDeque<KeptSummary>,
    retain: usize,
    pub(crate) decisions: Option<Vec<(u64, bool)>>,
}

impl QueryState {
    /// Current GP training-set size (`None` for MC subscriptions) —
    /// observability for the model-cap contract.
    pub(crate) fn model_points(&self) -> Option<usize> {
        match &self.eval {
            Evaluator::Mc => None,
            Evaluator::Gp(olga, _) => Some(olga.model().len()),
        }
    }
}

/// Parameters for registering a subscription with [`StreamEngine`].
pub(crate) struct SubscribeParams {
    pub name: String,
    pub udf: BlackBoxUdf,
    pub accuracy: AccuracyRequirement,
    pub strategy: StreamStrategy,
    pub output_range: f64,
    pub predicate: Option<Predicate>,
    pub retain: usize,
    pub record_decisions: bool,
    pub max_model_points: usize,
}

/// The multi-query continuous-query engine. Most callers use the
/// [`Session`](crate::session::Session) facade instead.
pub struct StreamEngine {
    config: EngineConfig,
    queries: Vec<QueryState>,
    /// The shared two-phase execution core. Its worker pool persists for
    /// the engine's lifetime and is reused for every micro-batch of every
    /// subscription — no per-batch thread spawning on the hot path.
    sched: BatchScheduler,
    tuples_seen: u64,
    last_run: EngineStats,
    metrics: EngineMetrics,
    /// Set when metrics are wired; later subscriptions register here too.
    registry: Option<MetricsRegistry>,
    /// Set when tracing is wired; later subscriptions share it too.
    tracer: TraceBuffer,
    /// Set when health sampling is enabled ([`enable_health`](Self::enable_health)).
    health: Option<HealthMonitor>,
}

impl StreamEngine {
    /// Create an engine with the given configuration.
    pub(crate) fn new(config: EngineConfig) -> Self {
        StreamEngine {
            sched: BatchScheduler::new(config.workers),
            config,
            queries: Vec::new(),
            tuples_seen: 0,
            last_run: EngineStats::default(),
            metrics: EngineMetrics::disabled(),
            registry: None,
            tracer: TraceBuffer::disabled(),
            health: None,
        }
    }

    /// Wire observability: the engine's batch/backpressure timers, the
    /// scheduler's `sched.*` handles, and every (current and future)
    /// GP subscription's `olgapro.*` handles register in `reg`. Purely
    /// observational — digests are byte-identical wired or not.
    pub(crate) fn set_metrics(&mut self, reg: &MetricsRegistry) {
        self.sched.set_metrics(SchedMetrics::register(reg));
        for q in &mut self.queries {
            if let Evaluator::Gp(olga, _) = &mut q.eval {
                olga.set_metrics(OlgaproMetrics::register(reg));
            }
        }
        self.metrics = EngineMetrics::register(reg);
        if let Some(h) = &mut self.health {
            h.set_registry(reg);
        }
        self.registry = Some(reg.clone());
    }

    /// Wire structured tracing: the scheduler's reroute/phase events and
    /// every (current and future) GP subscription's model-lifecycle events
    /// share `tracer`'s rings. Purely observational — digests are
    /// byte-identical wired or not (pinned by the determinism tests).
    pub(crate) fn set_tracer(&mut self, tracer: TraceBuffer) {
        self.sched.set_tracer(tracer.clone());
        for q in &mut self.queries {
            if let Evaluator::Gp(olga, _) = &mut q.eval {
                olga.set_tracer(tracer.clone());
            }
        }
        self.tracer = tracer;
    }

    /// Enable periodic health sampling (see [`HealthMonitor`]). When a
    /// metrics registry is already wired, samples carry its counter
    /// deltas; wiring metrics later upgrades the monitor in place.
    pub(crate) fn enable_health(&mut self, mut monitor: HealthMonitor) {
        if let Some(reg) = &self.registry {
            monitor.set_registry(reg);
        }
        self.health = Some(monitor);
    }

    /// The health monitor, when enabled.
    pub(crate) fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub(crate) fn query(&self, id: usize) -> Result<&QueryState> {
        self.queries.get(id).ok_or(StreamError::UnknownQuery(id))
    }

    pub(crate) fn queries(&self) -> &[QueryState] {
        &self.queries
    }

    pub(crate) fn last_run(&self) -> EngineStats {
        self.last_run
    }

    /// Total tuples ingested over the engine's lifetime.
    pub(crate) fn tuples_seen(&self) -> u64 {
        self.tuples_seen
    }

    /// Register a subscription; returns its index.
    pub(crate) fn subscribe(&mut self, params: SubscribeParams) -> Result<usize> {
        let strategy = match params.strategy {
            StreamStrategy::Auto => {
                match rule_based_choice(params.udf.dim(), params.udf.cost_model().per_call()) {
                    HybridChoice::Mc => StreamStrategy::Mc,
                    HybridChoice::Gp | HybridChoice::Calibrating => StreamStrategy::Gp,
                }
            }
            s => s,
        };
        let eval = match strategy {
            StreamStrategy::Mc => Evaluator::Mc,
            StreamStrategy::Gp | StreamStrategy::Auto => {
                // The model-size budget lives in the core config, so the
                // slow path (Algorithm 5) enforces it itself — a burst of
                // mid-batch reroutes can no longer overshoot the cap. The
                // validated constructor also rejects caps below the
                // bootstrap size instead of letting them thrash.
                let cfg = OlgaproConfig::new(params.accuracy, params.output_range)?
                    .with_model_cap(params.max_model_points, ModelBudget::StopGrowing)?;
                let budget = cfg.split().eps_gp;
                let mut olga = Olgapro::new(params.udf.clone(), cfg);
                if let Some(reg) = &self.registry {
                    olga.set_metrics(OlgaproMetrics::register(reg));
                }
                olga.set_tracer(self.tracer.clone());
                Evaluator::Gp(Box::new(olga), budget)
            }
        };
        let stats = StreamStats {
            query: params.name.clone(),
            ..StreamStats::default()
        };
        self.queries.push(QueryState {
            name: params.name,
            udf: params.udf,
            accuracy: params.accuracy,
            predicate: params.predicate,
            eval,
            stats,
            digest: Digest::default(),
            recent: VecDeque::with_capacity(params.retain),
            retain: params.retain,
            decisions: params.record_decisions.then(Vec::new),
        });
        Ok(self.queries.len() - 1)
    }

    /// Drive every subscription over `source` until it is exhausted or
    /// `limit` tuples have been ingested. May be called repeatedly; model
    /// state, stats, and the global tuple index persist across runs.
    pub(crate) fn run<S: Source + Send>(
        &mut self,
        mut source: S,
        limit: Option<u64>,
    ) -> Result<EngineStats> {
        if self.queries.is_empty() {
            return Err(StreamError::NoSubscriptions);
        }
        let source_dim = source.dim();
        for q in &self.queries {
            if q.udf.dim() != source_dim {
                return Err(StreamError::DimensionMismatch {
                    query: q.name.clone(),
                    udf_dim: q.udf.dim(),
                    source_dim,
                });
            }
        }

        let batch_size = self.config.batch_size;
        let (tx, rx) = mpsc::sync_channel::<Vec<InputDistribution>>(self.config.queue_depth);
        let ingest_wait = self.metrics.ingest_wait_ns.clone();
        let t0 = Instant::now();
        let mut tuples = 0u64;
        let mut batches = 0u64;

        let run_result: Result<()> = std::thread::scope(|scope| {
            // Ingest thread: source → bounded channel. Blocks when the
            // scheduler lags `queue_depth` batches behind (backpressure);
            // that stall time is what `stream.ingest_wait_ns` measures.
            let producer = scope.spawn(move || {
                let mut remaining = limit;
                loop {
                    let want = match remaining {
                        Some(r) => batch_size.min(r as usize),
                        None => batch_size,
                    };
                    if want == 0 {
                        break;
                    }
                    let mut buf = Vec::with_capacity(want);
                    let n = source.next_batch(want, &mut buf);
                    if n == 0 {
                        break;
                    }
                    if let Some(r) = &mut remaining {
                        *r -= n as u64;
                    }
                    let t_send = ingest_wait.enabled().then(Instant::now);
                    let sent = tx.send(buf).is_ok();
                    if let Some(ts) = t_send {
                        ingest_wait.record_duration(ts.elapsed());
                    }
                    if !sent {
                        break; // scheduler bailed; stop producing
                    }
                }
            });

            let mut res = Ok(());
            for batch in &rx {
                tuples += batch.len() as u64;
                batches += 1;
                if let Err(e) = self.process_batch(&batch) {
                    res = Err(e);
                    break;
                }
            }
            drop(rx); // on error: unblock a producer stuck on send()
            if producer.join().is_err() {
                return Err(StreamError::WorkerPanicked);
            }
            res
        });
        run_result?;

        self.last_run = EngineStats {
            tuples,
            batches,
            elapsed: t0.elapsed(),
            workers: self.config.workers,
            queries: self.queries.len(),
        };
        Ok(self.last_run)
    }

    /// Run every subscription over one micro-batch.
    fn process_batch(&mut self, batch: &[InputDistribution]) -> Result<()> {
        let base = self.tuples_seen;
        self.tuples_seen += batch.len() as u64;
        let seed = self.config.seed;
        let sched = &self.sched;
        let batch_ns = &self.metrics.batch_ns;
        for (qid, q) in self.queries.iter_mut().enumerate() {
            let t0 = Instant::now();
            match &q.eval {
                Evaluator::Mc => mc_batch(q, batch, base, sched, seed, qid as u64)?,
                Evaluator::Gp(..) => gp_batch(q, batch, base, sched, seed, qid as u64)?,
            }
            q.stats.batches += 1;
            let dt = t0.elapsed();
            q.stats.busy += dt;
            batch_ns.record_duration(dt);
        }
        if let Some(h) = &mut self.health {
            let mut totals = (0u64, 0u64, 0u64);
            for q in &self.queries {
                totals.0 += q.stats.tuples_in;
                totals.1 += q.stats.kept;
                totals.2 += q.stats.slow_path;
            }
            h.on_batch(totals);
        }
        Ok(())
    }
}

/// Fold one kept tuple into a query's registries.
fn record_kept(q: &mut QueryState, gidx: u64, ecdf: &Ecdf, error_bound: f64, tep: f64) {
    q.stats.kept += 1;
    q.digest.push_u64(gidx);
    q.digest.push_u64(1);
    q.digest.push_f64(tep);
    q.digest.push_ecdf(ecdf);
    if q.retain > 0 {
        if q.recent.len() == q.retain {
            q.recent.pop_front();
        }
        q.recent.push_back(KeptSummary {
            tuple: gidx,
            median: ecdf.quantile(0.5),
            error_bound,
            tep,
        });
    }
    if let Some(d) = &mut q.decisions {
        d.push((gidx, true));
    }
}

/// Fold one filtered tuple into a query's registries.
fn record_filtered(q: &mut QueryState, gidx: u64, rho_upper: f64) {
    q.stats.filtered += 1;
    q.digest.push_u64(gidx);
    q.digest.push_u64(0);
    q.digest.push_f64(rho_upper);
    if let Some(d) = &mut q.decisions {
        d.push((gidx, false));
    }
}

/// MC batch evaluation: every tuple is independent, so the whole batch is
/// one parallel map on the scheduler pool. Each tuple forks the UDF's call
/// counter so per-tuple call counts stay exact under concurrency.
fn mc_batch(
    q: &mut QueryState,
    batch: &[InputDistribution],
    base: u64,
    sched: &BatchScheduler,
    seed: u64,
    qid: u64,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let accuracy = q.accuracy;
    let predicate = q.predicate;
    let udf = &q.udf;
    let results: Vec<udf_core::Result<FilterDecision<udf_core::output::OutputDistribution>>> =
        sched.try_map(batch.len(), |i| {
            let gidx = base + i as u64;
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, qid, gidx));
            mc_eval_tuple(udf, &batch[i], &accuracy, predicate.as_ref(), &mut rng)
        })?;

    for (i, res) in results.into_iter().enumerate() {
        let gidx = base + i as u64;
        q.stats.tuples_in += 1;
        q.stats.fast_path += 1;
        match res? {
            FilterDecision::Kept { output, tep } => {
                q.stats.udf_calls += output.udf_calls;
                record_kept(q, gidx, &output.ecdf, output.error_bound, tep);
            }
            FilterDecision::Filtered {
                rho_upper,
                udf_calls,
            } => {
                q.stats.udf_calls += udf_calls;
                record_filtered(q, gidx, rho_upper);
            }
        }
    }
    Ok(())
}

/// [`BatchOps`] adapter for one subscription's GP micro-batch: fast path =
/// read-only inference, accept hook = online filter (§5.5) + ε_GP budget +
/// model-size cap, slow path = the full model-mutating Algorithm 5. The
/// `record_kept` / `record_filtered` bookkeeping runs inside the hooks, in
/// tuple order, so digests reflect stream order exactly.
struct GpBatchOps<'a> {
    q: &'a mut QueryState,
    batch: &'a [InputDistribution],
    base: u64,
    seed: u64,
    qid: u64,
}

impl GpBatchOps<'_> {
    fn olga(&self) -> &Olgapro {
        let Evaluator::Gp(olga, _) = &self.q.eval else {
            unreachable!("GP batch on a non-GP query")
        };
        olga
    }
}

impl BatchOps for GpBatchOps<'_> {
    fn tuple_seed(&self, idx: usize) -> u64 {
        mix_seed(self.seed, self.qid, self.base + idx as u64)
    }

    fn needs_bootstrap(&self) -> bool {
        self.olga().model().is_empty()
    }

    fn fast(
        &self,
        idx: usize,
        rng: &mut StdRng,
        scratch: &mut InferScratch,
    ) -> udf_core::Result<GpOutput> {
        self.olga().infer_only_with(&self.batch[idx], rng, scratch)
    }

    fn accept(&self, _idx: usize, out: &GpOutput) -> Verdict {
        // Online filtering on the envelope upper bound (§5.5): the bound
        // only widens on an under-trained model, so dropping here is sound
        // and costs zero UDF calls.
        if let Some(pred) = self.q.predicate {
            let (_, _, rho_u) = out.tep_bounds(pred.lo, pred.hi);
            if rho_u < pred.theta {
                return Verdict::Filter { rho_upper: rho_u };
            }
        }
        let Evaluator::Gp(olga, budget) = &self.q.eval else {
            unreachable!("GP batch on a non-GP query")
        };
        // Model-size budget (delegated to the core config): once the warm
        // model is full under stop-growing, emit at the achieved bound —
        // the slow path could not improve it, and this keeps per-tuple
        // inference cost bounded on long streams.
        if out.eps_gp <= *budget || olga.model_full() {
            Verdict::Accept
        } else {
            Verdict::Reroute
        }
    }

    fn emit_fast(&mut self, idx: usize, out: GpOutput) -> udf_core::Result<()> {
        let gidx = self.base + idx as u64;
        self.q.stats.tuples_in += 1;
        self.q.stats.fast_path += 1;
        if let Evaluator::Gp(olga, budget) = &mut self.q.eval {
            if out.eps_gp > *budget {
                // Only reachable through the model-full acceptance above:
                // count the degraded emission in both stat registries.
                olga.note_cap_hit();
                self.q.stats.cap_hits += 1;
            }
        }
        let tep = self
            .q
            .predicate
            .map(|p| out.tep_bounds(p.lo, p.hi).1)
            .unwrap_or(1.0);
        record_kept(self.q, gidx, &out.y_hat, out.error_bound(), tep);
        Ok(())
    }

    fn emit_filtered(&mut self, idx: usize, rho_upper: f64) -> udf_core::Result<()> {
        let gidx = self.base + idx as u64;
        self.q.stats.tuples_in += 1;
        self.q.stats.fast_path += 1;
        record_filtered(self.q, gidx, rho_upper);
        Ok(())
    }

    /// The full Algorithm 5 (with filtering when a predicate is attached),
    /// mutating the model. The scheduler calls this in tuple order with a
    /// freshly derived RNG, which is what keeps the engine deterministic.
    fn slow(&mut self, idx: usize, rng: &mut StdRng) -> udf_core::Result<()> {
        let gidx = self.base + idx as u64;
        let input = &self.batch[idx];
        let predicate = self.q.predicate;
        let Evaluator::Gp(olga, _) = &mut self.q.eval else {
            unreachable!("GP batch on a non-GP query")
        };
        let cap_hits_before = olga.stats().cap_hits;
        self.q.stats.tuples_in += 1;
        self.q.stats.slow_path += 1;
        match predicate {
            Some(pred) => match gp_filtered(olga, input, &pred, rng)? {
                FilterDecision::Kept { output, tep } => {
                    self.q.stats.udf_calls += output.udf_calls;
                    record_kept(self.q, gidx, &output.y_hat, output.error_bound(), tep);
                }
                FilterDecision::Filtered {
                    rho_upper,
                    udf_calls,
                } => {
                    self.q.stats.udf_calls += udf_calls;
                    record_filtered(self.q, gidx, rho_upper);
                }
            },
            None => {
                let out = olga.process(input, rng)?;
                self.q.stats.udf_calls += out.udf_calls;
                record_kept(self.q, gidx, &out.y_hat, out.error_bound(), 1.0);
            }
        }
        // A reroute that crossed the cap mid-tuple is a degraded
        // acceptance too (Algorithm 5 counted it in the core stats).
        let Evaluator::Gp(olga, _) = &self.q.eval else {
            unreachable!("GP batch on a non-GP query")
        };
        self.q.stats.cap_hits += olga.stats().cap_hits - cap_hits_before;
        Ok(())
    }
}

/// GP batch evaluation: one [`BatchScheduler::run_two_phase`] pass —
/// parallel read-only inference against the frozen model, then a sequential
/// fold (in tuple order) that filters, accepts within the ε_GP budget, and
/// reroutes the rest through the full model-mutating Algorithm 5.
fn gp_batch(
    q: &mut QueryState,
    batch: &[InputDistribution],
    base: u64,
    sched: &BatchScheduler,
    seed: u64,
    qid: u64,
) -> Result<()> {
    let mut ops = GpBatchOps {
        q,
        batch,
        base,
        seed,
        qid,
    };
    sched.run_two_phase(&mut ops, batch.len())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_owns_a_pool_sized_to_its_config() {
        let engine = StreamEngine::new(EngineConfig::new().workers(3));
        assert_eq!(engine.sched.workers(), 3);
        // The per-tuple seed mixer is the shared one from udf_core::sched.
        assert_eq!(mix_seed(1, 2, 3), mix_seed(1, 2, 3));
        assert_ne!(mix_seed(1, 2, 3), mix_seed(1, 2, 4));
    }

    #[test]
    fn config_builders_clamp() {
        let cfg = EngineConfig::new().workers(0).batch_size(0).queue_depth(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.batch_size, 1);
        assert_eq!(cfg.queue_depth, 1);
    }
}
