//! The stream health monitor: a bounded time-series of periodic samples
//! for throughput / reroute-rate trend detection.
//!
//! Every [`sample_every`](HealthMonitor::sample_every) micro-batches the
//! engine folds one [`HealthSample`] into a fixed-capacity ring
//! (drop-oldest): cumulative [`StreamStats`](crate::stats::StreamStats)
//! totals across all subscriptions, plus the window's
//! [`Snapshot::delta`](udf_obs::Snapshot::delta) of the scheduler's
//! reroute counter when a metrics registry is wired. Trends compare the
//! window's two halves, so a stream whose model stopped converging (rising
//! reroute rate) or whose throughput is decaying shows up without any
//! external scrape loop.
//!
//! Since the registry-wide monitor landed, this type is a thin adapter
//! over [`udf_obs::TsStore`]: the four cumulative counters live as one
//! store series each (`tuples_in` / `kept` / `slow_path` / `reroutes`,
//! pushed together at one timestamp), and [`samples`](
//! HealthMonitor::samples) re-zips them. What stays stream-specific is
//! the micro-batch cadence and the [`HealthTrend`] rate algebra over
//! *cumulative* totals — the generic store trends over per-window rate
//! points instead.
//!
//! Purely observational, like every other layer in the obs stack: emitted
//! distributions and digests are byte-identical with the monitor on or
//! off.

use std::time::Instant;
use udf_obs::{MetricsRegistry, Snapshot, TsStore};

/// One periodic reading. Tuple counters are *cumulative* engine-lifetime
/// totals (summed across subscriptions); rates come from differencing
/// neighbouring samples.
#[derive(Debug, Clone, Copy)]
pub struct HealthSample {
    /// Nanoseconds since the monitor's epoch (engine creation).
    pub t_ns: u64,
    /// Cumulative tuples examined, summed across subscriptions.
    pub tuples_in: u64,
    /// Cumulative tuples emitted.
    pub kept: u64,
    /// Cumulative slow-path (model-mutating) tuples.
    pub slow_path: u64,
    /// `sched.verdict.reroute` increments inside this sample's window
    /// (from [`Snapshot::delta`]; 0 when no registry is wired).
    pub reroutes: u64,
}

/// Windowed trend statistics over the ring's current contents.
#[derive(Debug, Clone, Copy)]
pub struct HealthTrend {
    /// Tuples/second across the whole window.
    pub throughput: f64,
    /// Slow-path fraction across the whole window.
    pub reroute_rate: f64,
    /// Later-half throughput over earlier-half throughput (1.0 = steady,
    /// < 1 = decaying). `None` until both halves have a nonzero span.
    pub throughput_ratio: Option<f64>,
    /// Later-half reroute rate minus earlier-half reroute rate (> 0 = the
    /// model is falling behind). `None` until both halves saw tuples.
    pub reroute_rate_delta: Option<f64>,
}

/// The store-backed ring plus the sampling cadence. Owned by the engine;
/// sampled from `process_batch`.
pub struct HealthMonitor {
    epoch: Instant,
    every: u64,
    batches: u64,
    /// One series per cumulative counter, pushed in lockstep — see the
    /// module docs.
    store: TsStore,
    /// Snapshot at the previous sample (for counter deltas).
    last_snap: Snapshot,
    registry: Option<MetricsRegistry>,
}

/// Default sampling cadence, in micro-batches.
pub const DEFAULT_SAMPLE_EVERY: u64 = 4;

/// Default ring capacity, in samples.
pub const DEFAULT_CAPACITY: usize = 128;

/// The store series one [`HealthSample`] spreads across.
const SERIES: [&str; 4] = ["tuples_in", "kept", "slow_path", "reroutes"];

impl HealthMonitor {
    /// A monitor sampling every `every` micro-batches into a ring of
    /// `capacity` samples (both clamped to ≥ 1).
    pub fn new(every: u64, capacity: usize) -> Self {
        HealthMonitor {
            epoch: Instant::now(),
            every: every.max(1),
            batches: 0,
            store: TsStore::new(capacity),
            last_snap: Snapshot::default(),
            registry: None,
        }
    }

    /// Wire the registry whose counter deltas annotate each sample.
    pub(crate) fn set_registry(&mut self, reg: &MetricsRegistry) {
        self.registry = Some(reg.clone());
        self.last_snap = reg.snapshot();
    }

    /// The sampling cadence in micro-batches.
    pub fn sample_every(&self) -> u64 {
        self.every
    }

    /// The ring's bounded capacity.
    pub fn capacity(&self) -> usize {
        self.store.capacity()
    }

    /// The backing time-series store (one series per cumulative counter).
    pub fn store(&self) -> &TsStore {
        &self.store
    }

    /// The ring's current contents, oldest first, re-zipped from the
    /// store's four lockstep series.
    pub fn samples(&self) -> impl Iterator<Item = HealthSample> + '_ {
        let series = |name: &'static str| {
            self.store
                .get(name)
                .into_iter()
                .flat_map(udf_obs::TsRing::iter)
        };
        series("tuples_in")
            .zip(series("kept"))
            .zip(series("slow_path"))
            .zip(series("reroutes"))
            .map(|(((t, k), s), r)| HealthSample {
                t_ns: t.t_ns,
                tuples_in: t.value as u64,
                kept: k.value as u64,
                slow_path: s.value as u64,
                reroutes: r.value as u64,
            })
    }

    /// Append one sample to all four series at one timestamp.
    fn push_sample(&mut self, s: HealthSample) {
        for (name, v) in SERIES
            .iter()
            .zip([s.tuples_in, s.kept, s.slow_path, s.reroutes])
        {
            self.store.push(name, s.t_ns, v as f64);
        }
    }

    /// Called once per engine micro-batch; folds a sample every
    /// [`sample_every`](Self::sample_every) calls.
    pub(crate) fn on_batch(&mut self, totals: (u64, u64, u64)) {
        self.batches += 1;
        if !self.batches.is_multiple_of(self.every) {
            return;
        }
        let (tuples_in, kept, slow_path) = totals;
        let reroutes = match &self.registry {
            Some(reg) => {
                let snap = reg.snapshot();
                let d = snap.delta(&self.last_snap);
                self.last_snap = snap;
                d.counters
                    .get("sched.verdict.reroute")
                    .copied()
                    .unwrap_or(0)
            }
            None => 0,
        };
        self.push_sample(HealthSample {
            t_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            tuples_in,
            kept,
            slow_path,
            reroutes,
        });
    }

    /// Trend over the ring's current window: whole-window throughput and
    /// reroute rate, plus half-over-half drift. `None` with fewer than two
    /// samples (no window to difference).
    pub fn trend(&self) -> Option<HealthTrend> {
        let samples: Vec<HealthSample> = self.samples().collect();
        let n = samples.len();
        if n < 2 {
            return None;
        }
        let first = &samples[0];
        let last = &samples[n - 1];
        let span = rate_window(first, last);
        let throughput = span.map(|(tput, _)| tput).unwrap_or(0.0);
        let reroute_rate = span.map(|(_, rr)| rr).unwrap_or(0.0);
        let (mut throughput_ratio, mut reroute_rate_delta) = (None, None);
        if n >= 3 {
            let mid = &samples[n / 2];
            let earlier = rate_window(first, mid);
            let later = rate_window(mid, last);
            if let (Some((te, re)), Some((tl, rl))) = (earlier, later) {
                if te > 0.0 {
                    throughput_ratio = Some(tl / te);
                }
                reroute_rate_delta = Some(rl - re);
            }
        }
        Some(HealthTrend {
            throughput,
            reroute_rate,
            throughput_ratio,
            reroute_rate_delta,
        })
    }

    /// One-line report (for the REPL and debugging).
    pub fn render(&self) -> String {
        let Some(t) = self.trend() else {
            return format!(
                "health: {} sample(s), trend needs 2+ (cadence {} batch(es))",
                self.samples().count(),
                self.every
            );
        };
        let mut line = udf_obs::fmt::KvLine::new()
            .raw("health:")
            .field("samples", self.samples().count())
            .raw(&format!("throughput={:.0}tup/s", t.throughput))
            .raw(&format!("reroute_rate={:.4}", t.reroute_rate));
        if let Some(r) = t.throughput_ratio {
            line = line.raw(&format!("throughput_ratio={r:.2}"));
        }
        if let Some(d) = t.reroute_rate_delta {
            line = line.raw(&format!("reroute_drift={d:+.4}"));
        }
        line.finish()
    }
}

///`(tuples/s, slow-path fraction)` between two cumulative samples; `None`
/// when the pair spans no time or no tuples.
fn rate_window(a: &HealthSample, b: &HealthSample) -> Option<(f64, f64)> {
    let dt = b.t_ns.saturating_sub(a.t_ns) as f64 / 1e9;
    let tuples = b.tuples_in.saturating_sub(a.tuples_in);
    if dt <= 0.0 || tuples == 0 {
        return None;
    }
    let slow = b.slow_path.saturating_sub(a.slow_path);
    Some((tuples as f64 / dt, slow as f64 / tuples as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(mon: &mut HealthMonitor, t_ns: u64, tuples: u64, slow: u64) {
        // Drive the ring directly with synthetic timestamps: on_batch's
        // Instant-based clock is untestable at nanosecond precision.
        mon.push_sample(HealthSample {
            t_ns,
            tuples_in: tuples,
            kept: tuples,
            slow_path: slow,
            reroutes: slow,
        });
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let mut mon = HealthMonitor::new(1, 4);
        for i in 0..10u64 {
            push(&mut mon, i * 1_000, i * 100, i);
        }
        let kept: Vec<u64> = mon.samples().map(|s| s.tuples_in).collect();
        assert_eq!(kept, vec![600, 700, 800, 900], "newest 4 survive");
    }

    #[test]
    fn empty_ring_has_no_trend_and_says_so() {
        let mon = HealthMonitor::new(1, 8);
        assert_eq!(mon.samples().count(), 0);
        assert!(mon.trend().is_none(), "no samples, no trend");
        let line = mon.render();
        assert!(line.contains("0 sample(s)"), "{line}");
        assert!(line.contains("trend needs 2+"), "{line}");
    }

    #[test]
    fn single_sample_has_no_trend() {
        let mut mon = HealthMonitor::new(1, 8);
        push(&mut mon, 1_000, 500, 5);
        assert_eq!(mon.samples().count(), 1);
        assert!(mon.trend().is_none(), "one sample is no window");
        assert!(mon.render().contains("1 sample(s)"));
    }

    #[test]
    fn trend_needs_two_samples() {
        let mut mon = HealthMonitor::new(1, 8);
        assert!(mon.trend().is_none());
        push(&mut mon, 0, 0, 0);
        assert!(mon.trend().is_none());
        push(&mut mon, 1_000_000_000, 1000, 100);
        let t = mon.trend().unwrap();
        assert!((t.throughput - 1000.0).abs() < 1e-6);
        assert!((t.reroute_rate - 0.1).abs() < 1e-12);
        // Two samples: one window, no halves to compare.
        assert!(t.throughput_ratio.is_none());
        assert!(t.reroute_rate_delta.is_none());
    }

    #[test]
    fn half_window_contracts_stay_none_until_both_halves_rate() {
        let mut mon = HealthMonitor::new(1, 8);
        // Three samples but the earlier half moved no tuples: its
        // rate_window is None, so both half-over-half fields stay None
        // while the whole-window figures are still reported.
        push(&mut mon, 0, 0, 0);
        push(&mut mon, 1_000_000_000, 0, 0);
        push(&mut mon, 2_000_000_000, 1000, 10);
        let t = mon.trend().unwrap();
        assert!(t.throughput > 0.0);
        assert!(t.throughput_ratio.is_none(), "idle earlier half: no ratio");
        assert!(
            t.reroute_rate_delta.is_none(),
            "idle earlier half: no drift"
        );
    }

    #[test]
    fn half_window_comparison_spots_decay() {
        let mut mon = HealthMonitor::new(1, 8);
        // Earlier half: 1000 tup/s, no reroutes. Later half: 500 tup/s,
        // every 10th tuple rerouting.
        push(&mut mon, 0, 0, 0);
        push(&mut mon, 1_000_000_000, 1000, 0);
        push(&mut mon, 2_000_000_000, 2000, 0);
        push(&mut mon, 3_000_000_000, 2500, 50);
        push(&mut mon, 4_000_000_000, 3000, 100);
        let t = mon.trend().unwrap();
        let ratio = t.throughput_ratio.unwrap();
        assert!(ratio < 0.6, "decay visible: ratio {ratio}");
        let drift = t.reroute_rate_delta.unwrap();
        assert!(drift > 0.05, "reroute drift visible: {drift}");
        assert!(mon.render().contains("throughput_ratio="));
    }

    #[test]
    fn wrap_at_capacity_trends_over_newest_window_only() {
        let mut mon = HealthMonitor::new(1, 4);
        // A long steady prefix that must age out entirely…
        for i in 0..20u64 {
            push(&mut mon, i * 1_000_000_000, i * 1000, 0);
        }
        // …then a collapsing tail that fills the whole ring.
        let t0 = 20_000_000_000;
        push(&mut mon, t0, 20_000, 0);
        push(&mut mon, t0 + 1_000_000_000, 21_000, 0);
        push(&mut mon, t0 + 2_000_000_000, 21_100, 50);
        push(&mut mon, t0 + 3_000_000_000, 21_200, 100);
        assert_eq!(mon.samples().count(), 4, "ring wrapped at capacity");
        let t = mon.trend().unwrap();
        let ratio = t.throughput_ratio.unwrap();
        assert!(
            ratio < 0.2,
            "trend reflects only the retained window: {ratio}"
        );
        assert!(t.reroute_rate_delta.unwrap() > 0.0);
    }

    #[test]
    fn samples_rezip_the_store_series() {
        let mut mon = HealthMonitor::new(1, 8);
        push(&mut mon, 7, 100, 3);
        let s = mon.samples().next().unwrap();
        assert_eq!(
            (s.t_ns, s.tuples_in, s.kept, s.slow_path, s.reroutes),
            (7, 100, 100, 3, 3)
        );
        // The adapter exposes its backing store: four lockstep series.
        assert_eq!(mon.store().series_count(), 4);
        assert_eq!(mon.store().get("tuples_in").unwrap().len(), 1);
    }

    #[test]
    fn cadence_skips_batches() {
        let mut mon = HealthMonitor::new(4, 8);
        for _ in 0..7 {
            mon.on_batch((100, 100, 0));
        }
        assert_eq!(mon.samples().count(), 1, "only batch 4 sampled");
        mon.on_batch((200, 200, 0));
        assert_eq!(mon.samples().count(), 2, "batch 8 sampled");
    }

    #[test]
    fn clamps_degenerate_config() {
        let mon = HealthMonitor::new(0, 0);
        assert_eq!(mon.sample_every(), 1);
        assert_eq!(mon.capacity(), 1);
    }
}
