//! Property-based tests for the linear-algebra substrate.
//!
//! Strategy: generate a random matrix `B` with bounded entries, form the
//! guaranteed-SPD matrix `A = B Bᵀ + c·I`, and check algebraic invariants of
//! the Cholesky machinery on it.

use proptest::prelude::*;
use udf_linalg::{dot, Cholesky, Matrix};

fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data).unwrap();
        let bt = b.transpose();
        let mut a = b.matmul(&bt).unwrap();
        a.add_diagonal(0.5).unwrap();
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs(a in (1usize..7).prop_flat_map(spd_matrix)) {
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn solve_inverts(
        a in (2usize..7).prop_flat_map(spd_matrix),
        seed in 0u64..1000,
    ) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((seed as f64) * 0.37 + i as f64).sin()).collect();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, vi) in b.iter().zip(&back) {
            prop_assert!((bi - vi).abs() < 1e-7);
        }
    }

    #[test]
    fn log_det_positive_diagonal_dominant(a in (1usize..6).prop_flat_map(spd_matrix)) {
        let c = Cholesky::factor(&a).unwrap();
        prop_assert!(c.log_det().is_finite());
    }

    #[test]
    fn append_equals_refactor(
        a in (3usize..7).prop_flat_map(spd_matrix),
    ) {
        // Split A into its leading principal (n-1)x(n-1) block plus last row/col.
        let n = a.rows();
        let lead = Matrix::from_symmetric_fn(n - 1, |i, j| a[(i, j)]);
        let k: Vec<f64> = (0..n - 1).map(|i| a[(i, n - 1)]).collect();
        let mut inc = Cholesky::factor(&lead).unwrap();
        inc.append(&k, a[(n - 1, n - 1)]).unwrap();
        let full = Cholesky::factor(&a).unwrap();
        for i in 0..n {
            for j in 0..=i {
                prop_assert!((inc.lower()[(i, j)] - full.lower()[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn matmul_transpose_identity(
        data in prop::collection::vec(-3.0f64..3.0, 12)
    ) {
        // (A B)ᵀ = Bᵀ Aᵀ
        let a = Matrix::from_vec(3, 4, data.clone()).unwrap();
        let b = Matrix::from_vec(4, 3, data).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dot_cauchy_schwarz(
        x in prop::collection::vec(-5.0f64..5.0, 1..20),
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 0.5 + 1.0).collect();
        let lhs = dot(&x, &y).abs();
        let rhs = dot(&x, &x).sqrt() * dot(&y, &y).sqrt();
        prop_assert!(lhs <= rhs + 1e-9);
    }
}
