//! Stress and numerical-stability tests for the Cholesky machinery under
//! the usage patterns OLGAPRO generates: long chains of incremental appends
//! and covariance matrices near the edge of positive definiteness.

use udf_linalg::{Cholesky, Matrix};

/// SE-kernel covariance over a 1-D grid with spacing `h`.
fn se_cov(n: usize, h: f64, lengthscale: f64, jitter: f64) -> Matrix {
    let mut m = Matrix::from_symmetric_fn(n, |i, j| {
        let d = (i as f64 - j as f64) * h;
        (-0.5 * d * d / (lengthscale * lengthscale)).exp()
    });
    m.add_diagonal(jitter).unwrap();
    m
}

#[test]
fn long_append_chain_stays_accurate() {
    // 150 sequential appends must match a one-shot factorization.
    let n = 150;
    let full = se_cov(n, 0.35, 1.0, 1e-8);
    let lead = Matrix::from_symmetric_fn(2, |i, j| full[(i, j)]);
    let mut inc = Cholesky::factor(&lead).unwrap();
    for k in 2..n {
        let col: Vec<f64> = (0..k).map(|i| full[(i, k)]).collect();
        inc.append(&col, full[(k, k)]).unwrap();
    }
    let reference = Cholesky::factor(&full).unwrap();
    // Compare solves rather than raw factors (factors can differ in the
    // last digits while the solve agrees).
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
    let x1 = inc.solve(&b).unwrap();
    let x2 = reference.solve(&b).unwrap();
    for (a, c) in x1.iter().zip(&x2) {
        assert!((a - c).abs() < 1e-6 * (1.0 + c.abs()), "{a} vs {c}");
    }
}

#[test]
fn near_singular_grid_requires_escalated_jitter() {
    // Spacing far below the lengthscale: plain factorization fails, the
    // jitter ladder rescues it.
    let tight = se_cov(40, 1e-6, 1.0, 0.0);
    assert!(Cholesky::factor(&tight).is_err());
    let (chol, used) = Cholesky::factor_with_jitter(&tight, 1e-10, 12).unwrap();
    assert!(used > 0.0);
    assert_eq!(chol.dim(), 40);
    // The solve is still usable: residual smaller than the jitter scale.
    let b = vec![1.0; 40];
    let x = chol.solve(&b).unwrap();
    assert!(x.iter().all(|v| v.is_finite()));
}

#[test]
fn log_det_matches_eigen_structure() {
    // For K = Q Λ Qᵀ with known structure (identity + rank-1), use the
    // matrix determinant lemma: det(I + c·vvᵀ) = 1 + c‖v‖².
    let n = 25;
    let c = 0.5;
    let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.3).cos()).collect();
    let vnorm2: f64 = v.iter().map(|x| x * x).sum();
    let mut k = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            k[(i, j)] += c * v[i] * v[j];
        }
    }
    let chol = Cholesky::factor(&k).unwrap();
    let expect = (1.0 + c * vnorm2).ln();
    assert!(
        (chol.log_det() - expect).abs() < 1e-9,
        "log det {} vs {expect}",
        chol.log_det()
    );
}

#[test]
fn solve_residuals_small_for_moderate_conditioning() {
    for (h, tol) in [(1.0, 1e-9), (0.5, 1e-8), (0.25, 1e-6)] {
        let n = 80;
        let k = se_cov(n, h, 1.0, 1e-8);
        let chol = Cholesky::factor(&k).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 1.1).sin()).collect();
        let x = chol.solve(&b).unwrap();
        let back = k.matvec(&x).unwrap();
        let res: f64 = b
            .iter()
            .zip(&back)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(res < tol, "h = {h}: residual {res}");
    }
}

#[test]
fn inverse_of_appended_matches_direct() {
    let n = 30;
    let full = se_cov(n, 0.8, 1.0, 1e-6);
    let lead = Matrix::from_symmetric_fn(n - 1, |i, j| full[(i, j)]);
    let mut inc = Cholesky::factor(&lead).unwrap();
    let col: Vec<f64> = (0..n - 1).map(|i| full[(i, n - 1)]).collect();
    inc.append(&col, full[(n - 1, n - 1)]).unwrap();
    let inv_inc = inc.inverse().unwrap();
    let inv_ref = Cholesky::factor(&full).unwrap().inverse().unwrap();
    for i in 0..n {
        for j in 0..n {
            assert!(
                (inv_inc[(i, j)] - inv_ref[(i, j)]).abs() < 1e-7,
                "({i},{j})"
            );
        }
    }
}
