//! Dense linear algebra substrate for the GP emulator.
//!
//! The paper's GP techniques (§3.3, §5.2 of Tran et al., VLDB 2013) need a
//! small, predictable set of operations on symmetric positive-definite
//! matrices: Cholesky factorization, triangular solves, log-determinants, and
//! an *incremental* factor update used by online tuning when a training point
//! is appended. This crate implements exactly that set from scratch — no
//! external linear-algebra dependency — with `f64` storage in row-major order.
//!
//! Numerical conventions:
//! * All factorizations work on the lower-triangular factor `L` with
//!   `A = L Lᵀ`.
//! * Fallible operations return [`LinalgError`] instead of panicking; panics
//!   are reserved for violated internal invariants (e.g. an out-of-bounds
//!   index, which indicates a bug in the caller).

mod cholesky;
mod error;
pub mod lanes;
mod matrix;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use vector::{axpy, dot, norm2, norm_inf, scale, sub};

/// Result alias for linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
