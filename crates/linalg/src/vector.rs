//! Free functions on `&[f64]` slices.
//!
//! The GP hot loops (posterior mean = `k·α`, variance = `v·v`) are dot
//! products over contiguous slices; keeping them as free functions lets the
//! compiler vectorize without any wrapper-type overhead.

/// Dot product `a · b`.
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm `‖a‖₂`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm `‖a‖∞` (0 for the empty slice).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_scale_sub() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
        assert_eq!(sub(&y, &[0.5, 0.5]), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
