//! Error types for the linear-algebra layer.

use std::fmt;

/// Errors raised by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// A matrix that must be square is not (`rows`, `cols`).
    NotSquare { rows: usize, cols: usize },
    /// Dimensions of two operands do not agree.
    DimensionMismatch {
        expected: usize,
        found: usize,
        context: &'static str,
    },
    /// Cholesky factorization hit a non-positive pivot: the matrix is not
    /// (numerically) positive definite. Carries the offending pivot index.
    NotPositiveDefinite { pivot: usize },
    /// An operation required a non-empty matrix or vector.
    Empty(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::DimensionMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Empty(what) => write!(f, "operation requires non-empty {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}
