//! Cholesky factorization with incremental updates.
//!
//! The GP posterior (Eq. 2 of the paper) requires solving with the training
//! covariance `K(X*, X*)`. We keep its lower Cholesky factor `L` and support:
//!
//! * `solve` — `A x = b` via forward + back substitution, O(n²);
//! * `log_det` — `2 Σ log L_ii`, used by the marginal likelihood (§3.4);
//! * `inverse` — explicit `A⁻¹` for the likelihood gradient/Hessian;
//! * [`Cholesky::append`] — the O(n²) block update used by online tuning
//!   (§5.2): when training point n+1 arrives, the new factor row is
//!   `w = L⁻¹ k`, `d = sqrt(k** − w·w)`, avoiding an O(n³) refactorization.

use crate::{dot, LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Clone, Debug)]
pub struct Cholesky {
    /// Lower factor stored as a full square matrix (upper part zero).
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix `A = L Lᵀ`.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive — for GP covariance matrices this signals that more
    /// jitter is needed.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factor `A + jitter·I`, escalating jitter by 10x up to `max_tries`
    /// times if the factorization fails. Returns the factor and the jitter
    /// that succeeded.
    ///
    /// This is the standard defensive pattern for GP covariance matrices
    /// whose eigenvalues underflow when training points nearly coincide.
    pub fn factor_with_jitter(a: &Matrix, jitter: f64, max_tries: u32) -> Result<(Self, f64)> {
        let mut j = jitter;
        let mut last = LinalgError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries.max(1) {
            let mut aj = a.clone();
            if j > 0.0 {
                aj.add_diagonal(j)?;
            }
            match Cholesky::factor(&aj) {
                Ok(c) => return Ok((c, j)),
                Err(e) => {
                    last = e;
                    j = if j == 0.0 { 1e-10 } else { j * 10.0 };
                }
            }
        }
        Err(last)
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower factor.
    #[inline]
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
                context: "Cholesky::solve_lower",
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        Ok(y)
    }

    /// Solve `Lᵀ x = y` (back substitution).
    #[allow(clippy::needless_range_loop)] // indexing two arrays in lockstep
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: y.len(),
                context: "Cholesky::solve_upper",
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Number of right-hand-side columns processed per panel by the
    /// multi-RHS solves. Sized so the active `n x RHS_BLOCK` panel of the
    /// solution stays cache-resident; per-column results do not depend on
    /// this value.
    const RHS_BLOCK: usize = 64;

    /// Multi-RHS forward substitution: solve `L Y = B` in place, where `rhs`
    /// holds an `n x cols` row-major panel (row `i` = the `i`-th entry of
    /// every right-hand side).
    ///
    /// Column-blocked: columns are processed in panels of `RHS_BLOCK`
    /// (64) columns, and within a panel the update is a 4-wide
    /// unrolled [`crate::lanes::axpy_sub`] *across columns*. Each column `c`
    /// therefore performs exactly the scalar [`Cholesky::solve_lower`]
    /// sequence — `sum = b[i]`, then `sum -= L[i][k] * y[k]` for `k`
    /// ascending, then a true division by `L[i][i]` — so the result is
    /// bit-identical to calling `solve_lower` once per column.
    ///
    /// Returns an error if `rhs.len() != dim() * cols`.
    pub fn solve_lower_in_place(&self, rhs: &mut [f64], cols: usize) -> Result<()> {
        let n = self.dim();
        if rhs.len() != n * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: n * cols,
                found: rhs.len(),
                context: "Cholesky::solve_lower_in_place",
            });
        }
        if cols == 0 {
            return Ok(());
        }
        for j0 in (0..cols).step_by(Self::RHS_BLOCK) {
            let jw = Self::RHS_BLOCK.min(cols - j0);
            for i in 0..n {
                let lrow = self.l.row(i);
                let (solved, rest) = rhs.split_at_mut(i * cols);
                let cur = &mut rest[j0..j0 + jw];
                for (k, &lik) in lrow[..i].iter().enumerate() {
                    let yk = &solved[k * cols + j0..k * cols + j0 + jw];
                    crate::lanes::axpy_sub(lik, yk, cur);
                }
                crate::lanes::div_scale(cur, lrow[i]);
            }
        }
        Ok(())
    }

    /// Multi-RHS back substitution: solve `Lᵀ X = Y` in place on an
    /// `n x cols` row-major panel. Same blocking and bit-identity contract
    /// as [`Cholesky::solve_lower_in_place`], mirroring the scalar
    /// [`Cholesky::solve_upper`] (`k` ascending from `i+1`).
    ///
    /// Returns an error if `rhs.len() != dim() * cols`.
    pub fn solve_upper_in_place(&self, rhs: &mut [f64], cols: usize) -> Result<()> {
        let n = self.dim();
        if rhs.len() != n * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: n * cols,
                found: rhs.len(),
                context: "Cholesky::solve_upper_in_place",
            });
        }
        if cols == 0 {
            return Ok(());
        }
        for j0 in (0..cols).step_by(Self::RHS_BLOCK) {
            let jw = Self::RHS_BLOCK.min(cols - j0);
            for i in (0..n).rev() {
                let (head, solved) = rhs.split_at_mut((i + 1) * cols);
                let cur = &mut head[i * cols + j0..i * cols + j0 + jw];
                for k in i + 1..n {
                    let lki = self.l[(k, i)];
                    let base = (k - i - 1) * cols + j0;
                    crate::lanes::axpy_sub(lki, &solved[base..base + jw], cur);
                }
                crate::lanes::div_scale(cur, self.l[(i, i)]);
            }
        }
        Ok(())
    }

    /// Solve `L Y = B` for all columns of `B` at once.
    ///
    /// Returns an error if `b.rows() != dim()`.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.rows(),
                context: "Cholesky::solve_lower_matrix",
            });
        }
        let cols = b.cols();
        let mut out = b.clone();
        self.solve_lower_in_place(out.as_mut_slice(), cols)?;
        Ok(out)
    }

    /// Solve `Lᵀ X = Y` for all columns of `Y` at once.
    ///
    /// Returns an error if `y.rows() != dim()`.
    pub fn solve_upper_matrix(&self, y: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if y.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: y.rows(),
                context: "Cholesky::solve_upper_matrix",
            });
        }
        let cols = y.cols();
        let mut out = y.clone();
        self.solve_upper_in_place(out.as_mut_slice(), cols)?;
        Ok(out)
    }

    /// Solve `A X = B` where `A = L Lᵀ`, all columns at once (forward then
    /// back substitution on the whole panel; per-column results are
    /// bit-identical to the former column-at-a-time implementation).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.rows(),
                context: "Cholesky::solve_matrix",
            });
        }
        let cols = b.cols();
        let mut out = b.clone();
        self.solve_lower_in_place(out.as_mut_slice(), cols)?;
        self.solve_upper_in_place(out.as_mut_slice(), cols)?;
        Ok(out)
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (O(n³)); used only by the likelihood
    /// gradient/Hessian in retraining, never in the inference hot path.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Append one row/column to the factored matrix: given the factor of
    /// `A (n x n)`, produce the factor of
    /// `[[A, k], [kᵀ, kss]]` in O(n²).
    ///
    /// `k` is the covariance between the new point and the existing points,
    /// `kss` the new point's self-covariance (including jitter).
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when the Schur complement
    /// `kss − wᵀw` is not strictly positive.
    pub fn append(&mut self, k: &[f64], kss: f64) -> Result<()> {
        let n = self.dim();
        if k.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: k.len(),
                context: "Cholesky::append",
            });
        }
        let w = self.solve_lower(k)?;
        let schur = kss - dot(&w, &w);
        if schur <= 0.0 || !schur.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n });
        }
        let d = schur.sqrt();
        // Grow the factor: copy into an (n+1)x(n+1) matrix.
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (src, dst) = (self.l.row(i), l.row_mut(i));
            dst[..=i].copy_from_slice(&src[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&w);
        l[(n, n)] = d;
        self.l = l;
        Ok(())
    }

    /// Reconstruct `A = L Lᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("square factors always multiply")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B with distinct entries: guaranteed SPD.
        Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_and_reconstruct() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = c.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, vi) in b.iter().zip(&back) {
            assert!((bi - vi).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_2x2() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalue -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semidefinite() {
        // Rank-1 PSD matrix: plain factorization fails, jitter succeeds.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let (c, j) = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(j > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn append_matches_full_factorization() {
        let a4 = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0, 0.5],
            vec![2.0, 5.0, 2.0, 1.0],
            vec![1.0, 2.0, 4.0, 1.5],
            vec![0.5, 1.0, 1.5, 3.0],
        ])
        .unwrap();
        // Factor the leading 3x3, then append the last row/col.
        let mut c = Cholesky::factor(&spd3()).unwrap();
        c.append(&[0.5, 1.0, 1.5], 3.0).unwrap();
        let full = Cholesky::factor(&a4).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                assert!(
                    (c.lower()[(i, j)] - full.lower()[(i, j)]).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn append_rejects_inconsistent() {
        let mut c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.append(&[1.0], 1.0).is_err()); // wrong length
        assert!(c.append(&[10.0, 10.0, 10.0], 0.1).is_err()); // breaks PD
    }

    #[test]
    fn multi_rhs_solves_bit_identical_to_scalar() {
        // n and cols chosen to exercise partial column panels (cols > 64)
        // and partial 4-lane remainders.
        let n = 23;
        let cols = 150;
        let a = Matrix::from_symmetric_fn(n, |i, j| {
            let d = (i as f64 - j as f64).abs();
            (-d * d / 50.0).exp() + if i == j { 0.1 } else { 0.0 }
        });
        let c = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_vec(
            n,
            cols,
            (0..n * cols)
                .map(|i| ((i as f64) * 0.417).sin() * 2.5)
                .collect(),
        )
        .unwrap();

        let ylo = c.solve_lower_matrix(&b).unwrap();
        let yup = c.solve_upper_matrix(&b).unwrap();
        let full = c.solve_matrix(&b).unwrap();
        let mut col = vec![0.0; n];
        for j in 0..cols {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let lo = c.solve_lower(&col).unwrap();
            let up = c.solve_upper(&col).unwrap();
            let sv = c.solve(&col).unwrap();
            for i in 0..n {
                assert_eq!(ylo[(i, j)].to_bits(), lo[i].to_bits(), "lower ({i},{j})");
                assert_eq!(yup[(i, j)].to_bits(), up[i].to_bits(), "upper ({i},{j})");
                assert_eq!(full[(i, j)].to_bits(), sv[i].to_bits(), "solve ({i},{j})");
            }
        }
    }

    #[test]
    fn multi_rhs_dimension_checked() {
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.solve_lower_matrix(&Matrix::zeros(2, 4)).is_err());
        assert!(c.solve_upper_matrix(&Matrix::zeros(4, 2)).is_err());
        let mut buf = vec![0.0; 5];
        assert!(c.solve_lower_in_place(&mut buf, 2).is_err());
        // Zero-column panels are a no-op.
        let mut empty: Vec<f64> = vec![];
        c.solve_lower_in_place(&mut empty, 0).unwrap();
        c.solve_upper_in_place(&mut empty, 0).unwrap();
    }

    #[test]
    fn solve_matrix_identity_gives_inverse_columns() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&x).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-10);
            }
        }
    }
}
