//! Cholesky factorization with incremental updates.
//!
//! The GP posterior (Eq. 2 of the paper) requires solving with the training
//! covariance `K(X*, X*)`. We keep its lower Cholesky factor `L` and support:
//!
//! * `solve` — `A x = b` via forward + back substitution, O(n²);
//! * `log_det` — `2 Σ log L_ii`, used by the marginal likelihood (§3.4);
//! * `inverse` — explicit `A⁻¹` for the likelihood gradient/Hessian;
//! * [`Cholesky::append`] — the O(n²) block update used by online tuning
//!   (§5.2): when training point n+1 arrives, the new factor row is
//!   `w = L⁻¹ k`, `d = sqrt(k** − w·w)`, avoiding an O(n³) refactorization.

use crate::{dot, LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Clone, Debug)]
pub struct Cholesky {
    /// Lower factor stored as a full square matrix (upper part zero).
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix `A = L Lᵀ`.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive — for GP covariance matrices this signals that more
    /// jitter is needed.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factor `A + jitter·I`, escalating jitter by 10x up to `max_tries`
    /// times if the factorization fails. Returns the factor and the jitter
    /// that succeeded.
    ///
    /// This is the standard defensive pattern for GP covariance matrices
    /// whose eigenvalues underflow when training points nearly coincide.
    pub fn factor_with_jitter(a: &Matrix, jitter: f64, max_tries: u32) -> Result<(Self, f64)> {
        let mut j = jitter;
        let mut last = LinalgError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries.max(1) {
            let mut aj = a.clone();
            if j > 0.0 {
                aj.add_diagonal(j)?;
            }
            match Cholesky::factor(&aj) {
                Ok(c) => return Ok((c, j)),
                Err(e) => {
                    last = e;
                    j = if j == 0.0 { 1e-10 } else { j * 10.0 };
                }
            }
        }
        Err(last)
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower factor.
    #[inline]
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
                context: "Cholesky::solve_lower",
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        Ok(y)
    }

    /// Solve `Lᵀ x = y` (back substitution).
    #[allow(clippy::needless_range_loop)] // indexing two arrays in lockstep
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: y.len(),
                context: "Cholesky::solve_upper",
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Solve `A X = B` column-wise.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.rows(),
                context: "Cholesky::solve_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (O(n³)); used only by the likelihood
    /// gradient/Hessian in retraining, never in the inference hot path.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Append one row/column to the factored matrix: given the factor of
    /// `A (n x n)`, produce the factor of
    /// `[[A, k], [kᵀ, kss]]` in O(n²).
    ///
    /// `k` is the covariance between the new point and the existing points,
    /// `kss` the new point's self-covariance (including jitter).
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when the Schur complement
    /// `kss − wᵀw` is not strictly positive.
    pub fn append(&mut self, k: &[f64], kss: f64) -> Result<()> {
        let n = self.dim();
        if k.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: k.len(),
                context: "Cholesky::append",
            });
        }
        let w = self.solve_lower(k)?;
        let schur = kss - dot(&w, &w);
        if schur <= 0.0 || !schur.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n });
        }
        let d = schur.sqrt();
        // Grow the factor: copy into an (n+1)x(n+1) matrix.
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            let (src, dst) = (self.l.row(i), l.row_mut(i));
            dst[..=i].copy_from_slice(&src[..=i]);
        }
        l.row_mut(n)[..n].copy_from_slice(&w);
        l[(n, n)] = d;
        self.l = l;
        Ok(())
    }

    /// Reconstruct `A = L Lᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("square factors always multiply")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B with distinct entries: guaranteed SPD.
        Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_and_reconstruct() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0];
        let x = c.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, vi) in b.iter().zip(&back) {
            assert!((bi - vi).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_2x2() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalue -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semidefinite() {
        // Rank-1 PSD matrix: plain factorization fails, jitter succeeds.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let (c, j) = Cholesky::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(j > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn append_matches_full_factorization() {
        let a4 = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0, 0.5],
            vec![2.0, 5.0, 2.0, 1.0],
            vec![1.0, 2.0, 4.0, 1.5],
            vec![0.5, 1.0, 1.5, 3.0],
        ])
        .unwrap();
        // Factor the leading 3x3, then append the last row/col.
        let mut c = Cholesky::factor(&spd3()).unwrap();
        c.append(&[0.5, 1.0, 1.5], 3.0).unwrap();
        let full = Cholesky::factor(&a4).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                assert!(
                    (c.lower()[(i, j)] - full.lower()[(i, j)]).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn append_rejects_inconsistent() {
        let mut c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.append(&[1.0], 1.0).is_err()); // wrong length
        assert!(c.append(&[10.0, 10.0, 10.0], 0.1).is_err()); // breaks PD
    }

    #[test]
    fn solve_matrix_identity_gives_inverse_columns() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&x).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-10);
            }
        }
    }
}
