//! Manually-unrolled f64x4-style lanes for the blocked fast path.
//!
//! Every kernel here operates *across* independent columns/samples: each
//! output element depends on exactly one lane, so 4-wide unrolling changes
//! instruction scheduling but never the order of any floating-point
//! reduction. That is the invariant the blocked GP fast path relies on —
//! per-column results are bit-identical to the scalar path, which is what
//! lets the digest-pinning tests stay byte-stable with blocking enabled.
//!
//! (Contrast with a horizontal SIMD dot product, which would re-associate
//! the sum and perturb low-order bits; we deliberately never do that.)

/// `y[j] += alpha * x[j]` for each lane `j`.
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "lanes::axpy: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yy, xx) in (&mut yc).zip(&mut xc) {
        yy[0] += alpha * xx[0];
        yy[1] += alpha * xx[1];
        yy[2] += alpha * xx[2];
        yy[3] += alpha * xx[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y[j] -= alpha * x[j]` for each lane `j` (the forward/back-substitution
/// update, kept as an explicit subtraction so each lane performs exactly the
/// scalar path's `sum -= l * y` operation).
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[inline]
pub fn axpy_sub(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "lanes::axpy_sub: length mismatch");
    let mut yc = y.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (yy, xx) in (&mut yc).zip(&mut xc) {
        yy[0] -= alpha * xx[0];
        yy[1] -= alpha * xx[1];
        yy[2] -= alpha * xx[2];
        yy[3] -= alpha * xx[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi -= alpha * xi;
    }
}

/// `y[j] /= d` for each lane `j` (a true division per lane, *not* a
/// reciprocal-multiply, matching the scalar path's `sum / diag`).
#[inline]
pub fn div_scale(y: &mut [f64], d: f64) {
    let mut yc = y.chunks_exact_mut(4);
    for yy in &mut yc {
        yy[0] /= d;
        yy[1] /= d;
        yy[2] /= d;
        yy[3] /= d;
    }
    for yi in yc.into_remainder() {
        *yi /= d;
    }
}

/// `acc[j] += x[j] * x[j]` for each lane `j` (per-column squared-norm
/// accumulation used by the batched predictive variance).
///
/// # Panics
/// Panics if the slices have different lengths (caller bug).
#[inline]
pub fn sq_accum(x: &[f64], acc: &mut [f64]) {
    assert_eq!(x.len(), acc.len(), "lanes::sq_accum: length mismatch");
    let mut ac = acc.chunks_exact_mut(4);
    let mut xc = x.chunks_exact(4);
    for (aa, xx) in (&mut ac).zip(&mut xc) {
        aa[0] += xx[0] * xx[0];
        aa[1] += xx[1] * xx[1];
        aa[2] += xx[2] * xx[2];
        aa[3] += xx[3] * xx[3];
    }
    for (ai, xi) in ac.into_remainder().iter_mut().zip(xc.remainder()) {
        *ai += xi * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_bitwise() {
        let x: Vec<f64> = (0..11).map(|i| (i as f64).sin() * 1e3).collect();
        let mut y: Vec<f64> = (0..11).map(|i| (i as f64).cos() / 7.0).collect();
        let mut want = y.clone();
        let a = 0.123456789;
        for (wi, xi) in want.iter_mut().zip(&x) {
            *wi += a * xi;
        }
        axpy(a, &x, &mut y);
        for (yi, wi) in y.iter().zip(&want) {
            assert_eq!(yi.to_bits(), wi.to_bits());
        }
    }

    #[test]
    fn axpy_sub_matches_scalar_bitwise() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64 + 0.5).ln()).collect();
        let mut y: Vec<f64> = (0..13).map(|i| (i as f64) * 0.37 - 1.0).collect();
        let mut want = y.clone();
        let a = -3.25e-2;
        for (wi, xi) in want.iter_mut().zip(&x) {
            *wi -= a * xi;
        }
        axpy_sub(a, &x, &mut y);
        for (yi, wi) in y.iter().zip(&want) {
            assert_eq!(yi.to_bits(), wi.to_bits());
        }
    }

    #[test]
    fn div_scale_matches_scalar_bitwise() {
        let mut y: Vec<f64> = (0..9).map(|i| (i as f64).exp()).collect();
        let mut want = y.clone();
        let d = 0.7891;
        for wi in &mut want {
            *wi /= d;
        }
        div_scale(&mut y, d);
        for (yi, wi) in y.iter().zip(&want) {
            assert_eq!(yi.to_bits(), wi.to_bits());
        }
    }

    #[test]
    fn sq_accum_matches_scalar_bitwise() {
        let x: Vec<f64> = (0..10).map(|i| (i as f64) * 0.3 - 1.2).collect();
        let mut acc = vec![0.5; 10];
        let mut want = acc.clone();
        for (wi, xi) in want.iter_mut().zip(&x) {
            *wi += xi * xi;
        }
        sq_accum(&x, &mut acc);
        for (ai, wi) in acc.iter().zip(&want) {
            assert_eq!(ai.to_bits(), wi.to_bits());
        }
    }

    #[test]
    fn empty_and_short_slices() {
        let mut y: Vec<f64> = vec![];
        axpy(2.0, &[], &mut y);
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(1.0, &[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0, 4.0]);
        div_scale(&mut y, 2.0);
        assert_eq!(y, vec![1.0, 1.5, 2.0]);
    }
}
