//! Row-major dense matrix.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows x cols` matrix of `f64`, stored row-major.
///
/// This is deliberately minimal: it supports exactly the operations the GP
/// stack needs (construction, element access, matrix/vector products,
/// transpose, symmetrization helpers). Heavier algorithms (factorizations)
/// live in [`crate::Cholesky`].
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: rows * cols,
                found: data.len(),
                context: "Matrix::from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested rows (each inner slice is one row).
    ///
    /// Returns an error if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: cols,
                    found: r.len(),
                    context: "Matrix::from_rows",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Build an `n x n` matrix from a symmetric generator `g(i, j)`,
    /// evaluating `g` only for `j <= i` and mirroring.
    pub fn from_symmetric_fn(n: usize, mut g: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = g(i, j);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major storage.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix-vector product `A x`.
    ///
    /// Returns an error on dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                context: "Matrix::matvec",
            });
        }
        Ok((0..self.rows).map(|i| crate::dot(self.row(i), x)).collect())
    }

    /// Matrix product `A B`, cache-blocked.
    ///
    /// Blocking strategy: the `k` (depth) dimension is tiled so a panel of
    /// `other`'s rows stays resident in cache while a tile of `self`'s rows
    /// streams over it; within a tile the kernel is the ikj order with a
    /// 4-wide unrolled axpy across the output row. Because blocking only
    /// reorders *which element* is updated next — never the `k`-ascending
    /// order in which any single `out[i][j]` accumulates its products — the
    /// result is bit-identical to the naive triple loop.
    ///
    /// Returns an error on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: other.rows,
                context: "Matrix::matmul",
            });
        }
        // Tile sizes: KC rows of `other` (a panel of KC * cols doubles) per
        // sweep, MC rows of `self` per tile. Sized for ~L2 residency without
        // tuning per machine; correctness does not depend on these values.
        const KC: usize = 128;
        const MC: usize = 32;
        let mut out = Matrix::zeros(self.rows, other.cols);
        for k0 in (0..self.cols).step_by(KC) {
            let k1 = (k0 + KC).min(self.cols);
            for i0 in (0..self.rows).step_by(MC) {
                let i1 = (i0 + MC).min(self.rows);
                for i in i0..i1 {
                    let arow = self.row(i);
                    for (k, &aik) in arow.iter().enumerate().take(k1).skip(k0) {
                        if aik == 0.0 {
                            continue;
                        }
                        crate::lanes::axpy(aik, other.row(k), out.row_mut(i));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Add `v` to every diagonal element (jitter / noise term).
    ///
    /// Returns an error if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
        Ok(())
    }

    /// Trace (sum of diagonal elements).
    ///
    /// Returns an error if the matrix is not square.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute asymmetry `max |A_ij - A_ji|` (0 for non-square).
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return 0.0;
        }
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..i {
                m = m.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        m
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert!(!m.is_square());
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn identity_matvec() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_dimension_checked() {
        let m = Matrix::zeros(2, 3);
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn blocked_matmul_bit_identical_to_naive() {
        // Sizes chosen to exercise partial tiles in both blocked dimensions.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (7, 5, 3),
            (33, 130, 67),
            (64, 256, 9),
        ] {
            let a = Matrix::from_vec(
                m,
                k,
                (0..m * k)
                    .map(|i| ((i as f64) * 0.731).sin() * 3.0)
                    .collect(),
            )
            .unwrap();
            let b = Matrix::from_vec(
                k,
                n,
                (0..k * n)
                    .map(|i| ((i as f64) * 1.137).cos() / 1.7)
                    .collect(),
            )
            .unwrap();
            // Reference: the pre-blocking ikj loop (k ascending per element).
            let mut want = Matrix::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    let aik = a[(i, kk)];
                    if aik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        want[(i, j)] += aik * b[(kk, j)];
                    }
                }
            }
            let got = a.matmul(&b).unwrap();
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(g.to_bits(), w.to_bits(), "matmul {m}x{k}x{n} drifted");
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetric_generator_is_symmetric() {
        let m = Matrix::from_symmetric_fn(4, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.asymmetry(), 0.0);
    }

    #[test]
    fn diagonal_and_trace() {
        let mut m = Matrix::identity(3);
        m.add_diagonal(0.5).unwrap();
        assert_eq!(m.trace().unwrap(), 4.5);
        let rect = Matrix::zeros(2, 3);
        assert!(rect.trace().is_err());
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
