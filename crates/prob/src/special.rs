//! Special functions implemented from standard algorithms.
//!
//! * `erf`/`erfc`: via the regularized incomplete gamma function,
//!   `erf(x) = P(1/2, x²)` / `erfc(x) = Q(1/2, x²)` — near machine precision
//!   on both tails (series for small arguments, Lentz continued fraction for
//!   large ones).
//! * `norm_ppf` (Φ⁻¹): Acklam's algorithm with one Halley refinement step —
//!   absolute error below 1e-12 over (0, 1).
//! * `ln_gamma`: Lanczos approximation (g = 7, n = 9).
//! * `gamma_p`/`gamma_q`: regularized incomplete gamma via series / continued
//!   fraction (Numerical Recipes `gammp`/`gammq`), also used by the Gamma CDF.

use std::f64::consts::{PI, SQRT_2};

/// Error function `erf(x)`, accurate to ~1e-15.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)` computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        gamma_q(0.5, x * x)
    }
}

/// Standard normal pdf `φ(z)`.
#[inline]
pub fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * PI).sqrt()
}

/// Standard normal CDF `Φ(z)`.
#[inline]
pub fn norm_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / SQRT_2)
}

/// Standard normal upper tail `Φ̄(z) = 1 - Φ(z)`, accurate for large `z`.
#[inline]
pub fn norm_sf(z: f64) -> f64 {
    0.5 * erfc(z / SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm + one Halley step).
///
/// Returns ±∞ at p = 0 / 1 and NaN outside [0, 1].
pub fn norm_ppf(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-accuracy CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)` via the series expansion
/// (accurate branch for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` via the Lentz continued
/// fraction (accurate branch for `x >= a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / 1e-300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes §6.2). Returns NaN for invalid arguments.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if a <= 0.0 || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`, computed on
/// the accurate branch for each regime (no cancellation on the upper tail).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if a <= 0.0 || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Hermite polynomial (probabilists') `He_n(z)`, needed by the expected
/// Euler characteristic densities of Gaussian fields (§4.2, Eq. 5).
pub fn hermite(n: usize, z: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => z,
        _ => {
            let (mut hm, mut h) = (1.0, z);
            for k in 1..n {
                let next = z * h - k as f64 * hm;
                hm = h;
                h = next;
            }
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.5, -1.0, -0.3, 0.0, 0.7, 1.9, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn norm_cdf_symmetry_and_known() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((norm_cdf(1.959963985) - 0.975).abs() < 1e-6);
        for &z in &[-3.0, -1.0, 0.5, 2.2] {
            assert!((norm_cdf(z) + norm_cdf(-z) - 1.0).abs() < 1e-12);
            assert!((norm_sf(z) - (1.0 - norm_cdf(z))).abs() < 1e-9);
        }
    }

    #[test]
    fn ppf_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let z = norm_ppf(p);
            assert!((norm_cdf(z) - p).abs() < 1e-8, "p = {p}");
        }
        assert!(norm_ppf(0.0).is_infinite());
        assert!(norm_ppf(1.5).is_nan());
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_properties() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
        // Monotone in x.
        assert!(gamma_p(2.5, 1.0) < gamma_p(2.5, 2.0));
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!(gamma_p(-1.0, 1.0).is_nan());
    }

    #[test]
    fn hermite_recurrence() {
        // He_2(z) = z^2 - 1, He_3(z) = z^3 - 3z.
        for &z in &[-1.5, 0.0, 0.8, 2.0] {
            assert!((hermite(2, z) - (z * z - 1.0)).abs() < 1e-12);
            assert!((hermite(3, z) - (z * z * z - 3.0 * z)).abs() < 1e-12);
        }
    }
}
