//! Sample-size and confidence-interval machinery for Monte Carlo evaluation.
//!
//! * [`mc_samples_ks`] — the DKW-based count `m = ln(2/δ) / (2ε²)` from
//!   §2.2-A: with `m` samples the empirical CDF is an (ε, δ)-approximation in
//!   KS distance and a (2ε, δ)-approximation in discrepancy.
//! * [`mc_samples_discrepancy`] — the count needed for an (ε, δ) guarantee
//!   directly in the *discrepancy* metric (substitute ε/2 above).
//! * [`hoeffding_halfwidth`] — Remark 2.1's confidence half-width `ε̃` for
//!   the tuple-existence probability after `m̃` samples. (The paper prints
//!   `ln 2/(1−δ)`; the standard Hoeffding bound, and the form consistent with
//!   the rest of §2, is `ln(2/δ)` — we implement the latter and note the
//!   erratum here.)
//! * [`split_accuracy`] — Theorem 4.1's composition: split a user budget
//!   (ε, δ) into MC and GP shares with `ε = ε_MC + ε_GP` and
//!   `1 − δ = (1 − δ_MC)(1 − δ_GP)`.

/// Number of MC samples for an (ε, δ) KS-approximation (DKW inequality).
///
/// # Panics
/// Panics if `eps` or `delta` lie outside (0, 1) (caller bug — these come
/// from validated configs).
pub fn mc_samples_ks(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// Number of MC samples for an (ε, δ)-approximation in the *discrepancy*
/// metric, via `D ≤ 2·KS`.
pub fn mc_samples_discrepancy(eps: f64, delta: f64) -> usize {
    mc_samples_ks(eps / 2.0, delta)
}

/// Hoeffding confidence half-width for a Bernoulli mean after `m` samples at
/// confidence `1 − δ` (Remark 2.1): `ε̃ = sqrt(ln(2/δ) / (2m))`.
///
/// # Panics
/// Panics if `m == 0` or `delta` lies outside (0, 1).
pub fn hoeffding_halfwidth(m: usize, delta: f64) -> f64 {
    assert!(m > 0, "need at least one sample");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * m as f64)).sqrt()
}

/// DKW simultaneous confidence band around an empirical CDF: with
/// probability `1 − δ` the true CDF lies within `± ε(m, δ)` of the
/// empirical one everywhere. Returns the half-width.
///
/// This is the inferential counterpart of [`mc_samples_ks`]: Algorithm 1's
/// output can be decorated with this band to show the user error bars.
///
/// ```
/// use udf_prob::bounds::{dkw_halfwidth, mc_samples_ks};
/// let m = mc_samples_ks(0.05, 0.05);
/// assert!(dkw_halfwidth(m, 0.05) <= 0.05);
/// ```
pub fn dkw_halfwidth(m: usize, delta: f64) -> f64 {
    assert!(m > 0, "need at least one sample");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * m as f64)).sqrt()
}

/// Allocation of a total accuracy budget between MC sampling and GP modeling
/// (Theorem 4.1). `mc_fraction` is the share of ε given to sampling; the
/// paper's Profile 3 recommends 0.7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySplit {
    /// Sampling error budget ε_MC.
    pub eps_mc: f64,
    /// GP modeling error budget ε_GP.
    pub eps_gp: f64,
    /// Sampling confidence budget δ_MC.
    pub delta_mc: f64,
    /// GP confidence budget δ_GP.
    pub delta_gp: f64,
}

/// Split `(eps, delta)` with `eps = eps_mc + eps_gp` and
/// `(1−δ) = (1−δ_MC)(1−δ_GP)`, giving each source an equal δ share.
///
/// # Panics
/// Panics on parameters outside (0, 1) (caller bug).
pub fn split_accuracy(eps: f64, delta: f64, mc_fraction: f64) -> AccuracySplit {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(
        mc_fraction > 0.0 && mc_fraction < 1.0,
        "mc_fraction must be in (0,1)"
    );
    let d_each = 1.0 - (1.0 - delta).sqrt();
    AccuracySplit {
        eps_mc: eps * mc_fraction,
        eps_gp: eps * (1.0 - mc_fraction),
        delta_mc: d_each,
        delta_gp: d_each,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_sample_count() {
        // §2.2: ε = 0.02 (discrepancy), δ = 0.05 → m > 18000.
        let m = mc_samples_discrepancy(0.02, 0.05);
        assert!(m > 18_000, "m = {m}");
        assert!(m < 19_000, "m = {m}");
    }

    #[test]
    fn ks_count_shrinks_with_looser_eps() {
        assert!(mc_samples_ks(0.1, 0.05) < mc_samples_ks(0.05, 0.05));
        assert!(mc_samples_ks(0.1, 0.1) < mc_samples_ks(0.1, 0.01));
    }

    #[test]
    fn hoeffding_width_shrinks_with_m() {
        let w1 = hoeffding_halfwidth(100, 0.05);
        let w2 = hoeffding_halfwidth(10_000, 0.05);
        assert!(w2 < w1);
        assert!((w2 - w1 / 10.0).abs() < 1e-12, "1/sqrt(m) scaling");
    }

    #[test]
    fn split_composes() {
        let s = split_accuracy(0.1, 0.05, 0.7);
        assert!((s.eps_mc + s.eps_gp - 0.1).abs() < 1e-15);
        let combined = 1.0 - (1.0 - s.delta_mc) * (1.0 - s.delta_gp);
        assert!((combined - 0.05).abs() < 1e-12);
        assert!((s.eps_mc - 0.07).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        mc_samples_ks(0.0, 0.05);
    }

    #[test]
    fn dkw_band_inverts_sample_count() {
        // By construction: the DKW half-width at the DKW sample count for
        // (ε, δ) is at most ε.
        for &(eps, delta) in &[(0.02, 0.05), (0.1, 0.01), (0.2, 0.2)] {
            let m = mc_samples_ks(eps, delta);
            assert!(dkw_halfwidth(m, delta) <= eps + 1e-12);
            // And one fewer sample would not suffice.
            if m > 1 {
                assert!(dkw_halfwidth(m - 1, delta) > eps - 1e-4);
            }
        }
    }

    #[test]
    fn dkw_band_covers_true_cdf_empirically() {
        // Draw uniform samples; the true CDF F(x) = x must stay inside the
        // band in almost all repetitions.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let delta = 0.1;
        let m = 500;
        let trials = 200;
        let mut violations = 0;
        for _ in 0..trials {
            let samples: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0f64..1.0)).collect();
            let e = crate::Ecdf::new(samples).unwrap();
            let band = dkw_halfwidth(m, delta);
            let worst = (1..=100)
                .map(|i| {
                    let x = i as f64 / 100.0;
                    (e.cdf(x) - x).abs()
                })
                .fold(0.0f64, f64::max);
            if worst > band {
                violations += 1;
            }
        }
        assert!(
            (violations as f64) < trials as f64 * delta * 1.5 + 3.0,
            "{violations}/{trials} band violations at δ = {delta}"
        );
    }
}
