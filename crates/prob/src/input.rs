//! Multivariate uncertain inputs.
//!
//! A tuple with uncertain attributes carries a random vector `X` (§1, problem
//! statement). The paper's default is independent Gaussian attributes but
//! notes that "supporting correlated input is not harder — we just need to
//! sample from the joint distributions" (§6.1-B); both cases are supported.

use crate::dist::{sample_standard_normal, Univariate};
use crate::{ProbError, Result};
use udf_linalg::{Cholesky, Matrix};

/// The joint distribution of a tuple's uncertain attribute vector.
#[derive(Debug)]
pub enum InputDistribution {
    /// Independent marginals, one per dimension.
    Independent(Vec<Box<dyn Univariate>>),
    /// Correlated Gaussian `N(mean, Σ)` with pre-factored covariance.
    Gaussian {
        /// Mean vector.
        mean: Vec<f64>,
        /// Lower Cholesky factor of the covariance.
        chol: Cholesky,
    },
}

impl InputDistribution {
    /// Build an independent product distribution.
    pub fn independent(marginals: Vec<Box<dyn Univariate>>) -> Result<Self> {
        if marginals.is_empty() {
            return Err(ProbError::Empty("marginals"));
        }
        Ok(InputDistribution::Independent(marginals))
    }

    /// Build a correlated Gaussian from a mean and full covariance matrix.
    pub fn gaussian(mean: Vec<f64>, cov: &Matrix) -> Result<Self> {
        if cov.rows() != mean.len() || cov.cols() != mean.len() {
            return Err(ProbError::DimensionMismatch {
                expected: mean.len(),
                found: cov.rows(),
            });
        }
        let chol = Cholesky::factor(cov).map_err(|_| ProbError::InvalidParameter {
            what: "covariance (not SPD)",
            value: f64::NAN,
        })?;
        Ok(InputDistribution::Gaussian { mean, chol })
    }

    /// Convenience: independent Gaussian with per-dimension `(mu, sigma)`.
    pub fn diagonal_gaussian(params: &[(f64, f64)]) -> Result<Self> {
        let marginals = params
            .iter()
            .map(|&(mu, sigma)| {
                crate::Normal::new(mu, sigma).map(|n| Box::new(n) as Box<dyn Univariate>)
            })
            .collect::<Result<Vec<_>>>()?;
        InputDistribution::independent(marginals)
    }

    /// Dimensionality of the random vector.
    pub fn dim(&self) -> usize {
        match self {
            InputDistribution::Independent(m) => m.len(),
            InputDistribution::Gaussian { mean, .. } => mean.len(),
        }
    }

    /// Mean vector.
    pub fn mean(&self) -> Vec<f64> {
        match self {
            InputDistribution::Independent(m) => m.iter().map(|d| d.mean()).collect(),
            InputDistribution::Gaussian { mean, .. } => mean.clone(),
        }
    }

    /// Draw one sample of `X` into a fresh vector.
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draw one sample of `X` into `out` (length must equal `dim()`).
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()` (caller bug).
    pub fn sample_into(&self, rng: &mut dyn rand::RngCore, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim(), "sample_into: wrong output length");
        match self {
            InputDistribution::Independent(marginals) => {
                for (o, d) in out.iter_mut().zip(marginals) {
                    *o = d.sample(rng);
                }
            }
            InputDistribution::Gaussian { mean, chol } => {
                let n = mean.len();
                let z: Vec<f64> = (0..n).map(|_| sample_standard_normal(rng)).collect();
                // x = mean + L z
                let l = chol.lower();
                for i in 0..n {
                    let mut v = mean[i];
                    let row = l.row(i);
                    for (k, zk) in z.iter().enumerate().take(i + 1) {
                        v += row[k] * zk;
                    }
                    out[i] = v;
                }
            }
        }
    }

    /// Draw `m` samples as row vectors.
    pub fn sample_n(&self, rng: &mut dyn rand::RngCore, m: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        self.sample_n_into(rng, m, &mut out);
        out
    }

    /// Allocation-reusing variant of [`InputDistribution::sample_n`]:
    /// resizes `out` to `m` rows and fills them in place, reusing both the
    /// outer vector and each row's capacity. Draws the same RNG stream as
    /// `sample_n`, so the produced samples are identical for a given RNG
    /// state.
    pub fn sample_n_into(&self, rng: &mut dyn rand::RngCore, m: usize, out: &mut Vec<Vec<f64>>) {
        let dim = self.dim();
        out.resize_with(m, Vec::new);
        for row in out.iter_mut() {
            row.resize(dim, 0.0);
            self.sample_into(rng, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn independent_sampling_matches_marginals() {
        let d = InputDistribution::independent(vec![
            Box::new(Normal::new(1.0, 0.5).unwrap()),
            Box::new(Exponential::new(2.0).unwrap()),
        ])
        .unwrap();
        assert_eq!(d.dim(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = d.sample_n(&mut rng, 30_000);
        let m0 = samples.iter().map(|s| s[0]).sum::<f64>() / samples.len() as f64;
        let m1 = samples.iter().map(|s| s[1]).sum::<f64>() / samples.len() as f64;
        assert!((m0 - 1.0).abs() < 0.02);
        assert!((m1 - 0.5).abs() < 0.02);
        assert_eq!(d.mean(), vec![1.0, 0.5]);
    }

    #[test]
    fn correlated_gaussian_covariance() {
        let cov = Matrix::from_rows(&[vec![1.0, 0.8], vec![0.8, 1.0]]).unwrap();
        let d = InputDistribution::gaussian(vec![0.0, 0.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = d.sample_n(&mut rng, 50_000);
        let n = samples.len() as f64;
        let mx = samples.iter().map(|s| s[0]).sum::<f64>() / n;
        let my = samples.iter().map(|s| s[1]).sum::<f64>() / n;
        let cxy = samples
            .iter()
            .map(|s| (s[0] - mx) * (s[1] - my))
            .sum::<f64>()
            / (n - 1.0);
        assert!((cxy - 0.8).abs() < 0.03, "sample covariance {cxy}");
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(InputDistribution::independent(vec![]).is_err());
        let non_spd = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(InputDistribution::gaussian(vec![0.0, 0.0], &non_spd).is_err());
        let wrong_dim = Matrix::identity(3);
        assert!(InputDistribution::gaussian(vec![0.0, 0.0], &wrong_dim).is_err());
    }

    #[test]
    fn diagonal_gaussian_helper() {
        let d = InputDistribution::diagonal_gaussian(&[(5.0, 0.5), (2.0, 0.1)]).unwrap();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.mean(), vec![5.0, 2.0]);
        assert!(InputDistribution::diagonal_gaussian(&[(0.0, -1.0)]).is_err());
    }
}
