//! Empirical cumulative distribution functions.
//!
//! Algorithm 1 (and Algorithm 2 for the GP path) both return
//! `Pr(Y' ≤ y) = (1/m) Σ 1[y_i, ∞)(y)` — an [`Ecdf`] built from output
//! samples. Queries are O(log m) binary searches over the sorted sample
//! array.

use crate::{ProbError, Result};

/// Empirical CDF over a sorted sample of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    /// Sorted, finite sample values.
    values: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (sorted internally). Non-finite samples are
    /// rejected — they would poison every quantile query downstream.
    pub fn new(mut samples: Vec<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(ProbError::Empty("ECDF samples"));
        }
        if samples.iter().any(|v| !v.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "ECDF sample (non-finite)",
                value: f64::NAN,
            });
        }
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Ecdf { values: samples })
    }

    /// Number of samples `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no samples (unreachable by construction; kept for
    /// API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sorted sample values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `F(y) = Pr(Y' ≤ y)`.
    pub fn cdf(&self, y: f64) -> f64 {
        self.count_le(y) as f64 / self.values.len() as f64
    }

    /// Number of samples ≤ `y` (rank).
    pub fn count_le(&self, y: f64) -> usize {
        // partition_point: first index where v > y.
        self.values.partition_point(|&v| v <= y)
    }

    /// `Pr(Y' ∈ [a, b])` for a closed interval.
    pub fn interval_prob(&self, a: f64, b: f64) -> f64 {
        if b < a {
            return 0.0;
        }
        let hi = self.count_le(b);
        let lo = self.values.partition_point(|&v| v < a);
        (hi - lo) as f64 / self.values.len() as f64
    }

    /// Empirical quantile (inverse CDF): smallest sample `y` with
    /// `F(y) ≥ p`. `p` is clamped to (0, 1].
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let m = self.values.len();
        let k = ((p * m as f64).ceil() as usize).clamp(1, m);
        self.values[k - 1]
    }

    /// Smallest sample value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest sample value.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("non-empty by construction")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample variance (unbiased; 0 for a single sample).
    pub fn variance(&self) -> f64 {
        let m = self.values.len();
        if m < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (m - 1) as f64
    }

    /// A kernel-free histogram-style pdf estimate over `bins` equal-width
    /// bins spanning the sample range; returns `(bin_center, density)` pairs.
    /// Used to render Fig 6(a)-style output pdfs.
    pub fn density_histogram(&self, bins: usize) -> Vec<(f64, f64)> {
        let bins = bins.max(1);
        let (lo, hi) = (self.min(), self.max());
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &v in &self.values {
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let m = self.values.len() as f64;
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c as f64 / (m * width)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: &[f64]) -> Ecdf {
        Ecdf::new(v.to_vec()).unwrap()
    }

    #[test]
    fn cdf_step_function() {
        let d = e(&[3.0, 1.0, 2.0]);
        assert_eq!(d.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(1.0) - 1.0 / 3.0).abs() < 1e-15);
        assert!((d.cdf(2.5) - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(d.cdf(3.0), 1.0);
        assert_eq!(d.cdf(99.0), 1.0);
    }

    #[test]
    fn interval_probability_closed() {
        let d = e(&[1.0, 2.0, 3.0, 4.0]);
        assert!((d.interval_prob(2.0, 3.0) - 0.5).abs() < 1e-15);
        assert!((d.interval_prob(1.5, 1.9) - 0.0).abs() < 1e-15);
        assert!((d.interval_prob(0.0, 10.0) - 1.0).abs() < 1e-15);
        assert_eq!(d.interval_prob(3.0, 2.0), 0.0);
        // Closed interval includes endpoints.
        assert!((d.interval_prob(2.0, 2.0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn quantiles() {
        let d = e(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.quantile(0.25), 10.0);
        assert_eq!(d.quantile(0.26), 20.0);
        assert_eq!(d.quantile(1.0), 40.0);
        assert_eq!(d.quantile(0.0), 10.0); // clamped
        assert_eq!(d.min(), 10.0);
        assert_eq!(d.max(), 40.0);
    }

    #[test]
    fn moments() {
        let d = e(&[1.0, 2.0, 3.0]);
        assert!((d.mean() - 2.0).abs() < 1e-15);
        assert!((d.variance() - 1.0).abs() < 1e-15);
        assert_eq!(e(&[5.0]).variance(), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Ecdf::new(vec![]).is_err());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
        assert!(Ecdf::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn histogram_integrates_to_one() {
        let d = e(&(0..100).map(|i| i as f64 / 10.0).collect::<Vec<_>>());
        let hist = d.density_histogram(20);
        let width = (d.max() - d.min()) / 20.0;
        let total: f64 = hist.iter().map(|(_, p)| p * width).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
