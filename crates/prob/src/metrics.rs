//! Distance metrics between random variables (§2.1, Definitions 1–3).
//!
//! All three metrics are suprema of differences of interval probabilities and
//! are computed exactly on empirical CDFs by sweeping the merged support:
//!
//! * **KS** (Def. 2): `sup_y |F(y) − G(y)|` — one-sided intervals;
//! * **discrepancy** (Def. 1): `sup_{a≤b} |P_F[a,b] − P_G[a,b]|` — two-sided;
//! * **λ-discrepancy** (Def. 3): restricted to `b − a ≥ λ`.
//!
//! Writing `g(y) = F(y) − G(y)`, an interval difference is
//! `P_F[a,b] − P_G[a,b] = g(b) − g(a⁻)`, so the discrepancy sweep reduces to
//! extremizing `g` at step points (right values and left limits) subject to
//! the interval-length constraint. The λ-constrained sweep treats the
//! boundary case `a = b − λ` inclusively for both the left-limit and
//! right-value candidates, which can only *over*-estimate the supremum by an
//! infinitesimal-interval relaxation — the conservative direction for error
//! bounds.

use crate::ecdf::Ecdf;

/// Exact Kolmogorov–Smirnov distance between two empirical CDFs.
pub fn ks(f: &Ecdf, g: &Ecdf) -> f64 {
    let mut best = 0.0f64;
    // Evaluate at every step point of either ECDF, both the right value and
    // the left limit (the sup of a difference of step functions is attained
    // at a step of one of them).
    for v in f.values().iter().chain(g.values()) {
        let d_right = (f.cdf(*v) - g.cdf(*v)).abs();
        let left = prev_float(*v);
        let d_left = (f.cdf(left) - g.cdf(left)).abs();
        best = best.max(d_right).max(d_left);
    }
    best
}

/// One-sample KS distance between an empirical CDF and an analytic CDF.
pub fn ks_to_cdf(e: &Ecdf, cdf: impl Fn(f64) -> f64) -> f64 {
    let m = e.len() as f64;
    let mut best = 0.0f64;
    for (i, &x) in e.values().iter().enumerate() {
        let fx = cdf(x);
        best = best
            .max(((i + 1) as f64 / m - fx).abs())
            .max((fx - i as f64 / m).abs());
    }
    best
}

/// Exact discrepancy measure `D(F, G)` (Definition 1).
pub fn discrepancy(f: &Ecdf, g: &Ecdf) -> f64 {
    lambda_discrepancy(f, g, 0.0)
}

/// λ-discrepancy `D_λ(F, G)` (Definition 3); `lambda = 0` recovers
/// the plain discrepancy.
pub fn lambda_discrepancy(f: &Ecdf, g: &Ecdf, lambda: f64) -> f64 {
    debug_assert!(lambda >= 0.0);
    // Merged, sorted, deduplicated support.
    let mut v: Vec<f64> = f.values().iter().chain(g.values()).copied().collect();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("ECDF values are finite"));
    v.dedup();

    // g_at[i] = g(v_i), g_left[i] = g(v_i⁻).
    let g_at: Vec<f64> = v.iter().map(|&y| f.cdf(y) - g.cdf(y)).collect();
    let g_left: Vec<f64> = v
        .iter()
        .map(|&y| {
            let l = prev_float(y);
            f.cdf(l) - g.cdf(l)
        })
        .collect();

    // Two-pointer sweep: for each right endpoint b = v[j], admit left-end
    // candidates a with a ≤ b − λ. The left-limit value g(a⁻) ranges over
    // {0} ∪ {g_left[i] : v_i ≤ b−λ} ∪ {g_at[i] : v_i ≤ b−λ} (the g_at case
    // is "a slightly above v_i").
    let mut lo = 0.0f64; // prefix min of admissible left values (0 = a below support)
    let mut hi = 0.0f64; // prefix max
    let mut i = 0usize;
    let mut best = 0.0f64;
    for (j, &b) in v.iter().enumerate() {
        while i < v.len() && v[i] <= b - lambda {
            lo = lo.min(g_left[i]).min(g_at[i]);
            hi = hi.max(g_left[i]).max(g_at[i]);
            i += 1;
        }
        best = best.max(g_at[j] - lo).max(hi - g_at[j]);
        // b beyond the top of the support: interval [a, ∞) has g(b) = 0.
        if j + 1 == v.len() {
            // Admit every candidate for the unbounded right end.
            let (mut lo2, mut hi2) = (lo, hi);
            while i < v.len() {
                lo2 = lo2.min(g_left[i]).min(g_at[i]);
                hi2 = hi2.max(g_left[i]).max(g_at[i]);
                i += 1;
            }
            best = best.max(-lo2).max(hi2);
        }
    }
    best
}

/// Largest `f64` strictly below `x` (step-function left limits).
fn prev_float(x: f64) -> f64 {
    // f64::next_down is stable since 1.86; implement for wider toolchains.
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x > 0.0 {
        bits - 1
    } else if x < 0.0 {
        bits + 1
    } else {
        // x == ±0.0 → smallest negative subnormal
        (-f64::MIN_POSITIVE * 0.0_f64.max(f64::MIN_POSITIVE)).to_bits() | (1u64 << 63) | 1
    };
    f64::from_bits(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::norm_cdf;

    fn e(v: &[f64]) -> Ecdf {
        Ecdf::new(v.to_vec()).unwrap()
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = e(&[1.0, 2.0, 3.0]);
        assert_eq!(ks(&a, &a), 0.0);
        assert_eq!(discrepancy(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = e(&[1.0, 2.0]);
        let b = e(&[10.0, 11.0]);
        assert_eq!(ks(&a, &b), 1.0);
        assert_eq!(discrepancy(&a, &b), 1.0);
    }

    #[test]
    fn ks_shifted_half() {
        // F puts mass at {1, 3}, G at {2, 4}: max gap is 0.5.
        let a = e(&[1.0, 3.0]);
        let b = e(&[2.0, 4.0]);
        assert!((ks(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn discrepancy_at_most_twice_ks_and_at_least_ks() {
        // D ≤ 2·KS (paper §2.1) and D ≥ KS (one-sided intervals are a
        // special case of two-sided when the support is bounded below).
        let a = e(&[0.0, 1.0, 2.0, 3.0, 10.0]);
        let b = e(&[0.5, 1.5, 2.5, 3.5, 4.0]);
        let k = ks(&a, &b);
        let d = discrepancy(&a, &b);
        assert!(d <= 2.0 * k + 1e-12, "D = {d}, KS = {k}");
        assert!(d >= k - 1e-12, "D = {d}, KS = {k}");
    }

    #[test]
    fn discrepancy_interleaved_exceeds_ks() {
        // Interleaved supports: each one-sided gap is 1/2, but the interval
        // [1, 1] vs its complement pushes the two-sided measure higher.
        let a = e(&[1.0, 1.0]); // point mass at 1
        let b = e(&[0.0, 2.0]); // mass surrounding it
        let k = ks(&a, &b);
        let d = discrepancy(&a, &b);
        assert!((k - 0.5).abs() < 1e-12);
        assert!(
            (d - 1.0).abs() < 1e-12,
            "interval [1,1] captures all of a, none of b"
        );
    }

    #[test]
    fn lambda_reduces_discrepancy() {
        let a = e(&[1.0, 1.0]);
        let b = e(&[0.0, 2.0]);
        // With λ = 3 the interval must span the whole support: difference 0
        // at [−∞-ish, ∞-ish] style windows, but windows of length ≥ 3
        // containing 1 also contain 0 or 2 partially... compute and compare.
        let d0 = lambda_discrepancy(&a, &b, 0.0);
        let d3 = lambda_discrepancy(&a, &b, 3.0);
        assert!(d3 <= d0);
        // Monotone in λ.
        let d1 = lambda_discrepancy(&a, &b, 1.0);
        assert!(d1 <= d0 && d3 <= d1, "d0={d0} d1={d1} d3={d3}");
    }

    #[test]
    fn lambda_zero_equals_discrepancy() {
        let a = e(&[0.3, 0.7, 1.2, 5.0]);
        let b = e(&[0.1, 0.9, 1.0, 4.0]);
        assert_eq!(discrepancy(&a, &b), lambda_discrepancy(&a, &b, 0.0));
    }

    #[test]
    fn ks_to_analytic_normal() {
        // Large equiprobable grid from the normal quantiles has tiny KS.
        let m = 2000;
        let samples: Vec<f64> = (1..=m)
            .map(|i| crate::special::norm_ppf((i as f64 - 0.5) / m as f64))
            .collect();
        let ec = Ecdf::new(samples).unwrap();
        let d = ks_to_cdf(&ec, norm_cdf);
        assert!(d < 1.0 / m as f64 + 1e-6, "KS to analytic = {d}");
    }

    #[test]
    fn discrepancy_symmetry() {
        let a = e(&[0.0, 1.0, 4.0]);
        let b = e(&[0.5, 2.0, 3.0]);
        assert!((discrepancy(&a, &b) - discrepancy(&b, &a)).abs() < 1e-15);
        assert!((ks(&a, &b) - ks(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn brute_force_agreement_small_cases() {
        // Exhaustively check the sweep against an O(k²) brute force on the
        // candidate grid for several small sample sets.
        let cases = [
            (vec![1.0, 2.0, 3.0], vec![1.5, 2.5, 3.5]),
            (vec![0.0, 0.0, 5.0], vec![1.0, 4.0, 4.0]),
            (vec![2.0], vec![1.0, 3.0]),
        ];
        for (xs, ys) in cases {
            let a = e(&xs);
            let b = e(&ys);
            for &lambda in &[0.0, 0.5, 1.0, 2.0] {
                let fast = lambda_discrepancy(&a, &b, lambda);
                let brute = brute_lambda_discrepancy(&a, &b, lambda);
                assert!(
                    (fast - brute).abs() < 1e-12,
                    "λ={lambda}: fast={fast} brute={brute} xs={xs:?} ys={ys:?}"
                );
            }
        }
    }

    /// O(k²) reference: try every pair of candidate endpoints on a fine grid
    /// derived from the supports.
    fn brute_lambda_discrepancy(f: &Ecdf, g: &Ecdf, lambda: f64) -> f64 {
        let mut pts: Vec<f64> = f.values().iter().chain(g.values()).copied().collect();
        // Candidate a/b endpoints: at each support point and slightly around it.
        let eps = 1e-9;
        let mut cand = Vec::new();
        for &p in &pts {
            cand.extend_from_slice(&[p - eps, p, p + eps]);
        }
        pts = cand;
        pts.push(f.min().min(g.min()) - 1.0);
        pts.push(f.max().max(g.max()) + 1.0);
        pts.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let mut best = 0.0f64;
        for (i, &a) in pts.iter().enumerate() {
            for &b in &pts[i..] {
                if b - a < lambda {
                    continue;
                }
                let d = (f.interval_prob(a, b) - g.interval_prob(a, b)).abs();
                best = best.max(d);
            }
        }
        best
    }
}
