//! Probability and statistics substrate.
//!
//! Implements everything §2 of the paper ("An Approximation Framework")
//! relies on, from scratch:
//!
//! * special functions (`erf`, `Φ`, `Φ⁻¹`, `ln Γ`, regularized incomplete
//!   gamma) — [`special`];
//! * univariate distributions with sampling, pdf/cdf, mean/variance —
//!   [`dist`];
//! * multivariate uncertain inputs (independent marginals or a correlated
//!   Gaussian via Cholesky) — [`input`];
//! * empirical CDFs — [`ecdf`];
//! * the **discrepancy**, **λ-discrepancy** and **KS** distance metrics
//!   (Definitions 1–3) — [`metrics`];
//! * DKW / Hoeffding sample-size and confidence-interval helpers
//!   (Algorithm 1's `m = ln(2/δ)/(2ε²)` and Remark 2.1) — [`bounds`].

pub mod bounds;
pub mod dist;
pub mod ecdf;
pub mod input;
pub mod metrics;
pub mod special;

pub use dist::{
    Degenerate, Exponential, Gamma, GaussianMixture1d, Normal, TruncatedNormal, Uniform, Univariate,
};
pub use ecdf::Ecdf;
pub use input::InputDistribution;

use std::fmt;

/// Errors raised by probability-layer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A distribution parameter was out of its valid domain.
    InvalidParameter { what: &'static str, value: f64 },
    /// An operation needed at least one sample / component.
    Empty(&'static str),
    /// Dimension mismatch between an input distribution and a point.
    DimensionMismatch { expected: usize, found: usize },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what} = {value}")
            }
            ProbError::Empty(what) => write!(f, "operation requires non-empty {what}"),
            ProbError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ProbError {}

/// Result alias for probability operations.
pub type Result<T> = std::result::Result<T, ProbError>;
