//! Univariate distributions with sampling (via `rand`), pdf/cdf, and moments.
//!
//! The paper evaluates on Gaussian inputs by default and additionally on
//! Gamma and exponential inputs (§6.1-B); Gaussian mixtures double as the
//! synthetic UDF *shape* generator (§6.1-A). Sampling algorithms:
//! Box–Muller-free polar method for the normal, inverse CDF for the
//! exponential, Marsaglia–Tsang for the Gamma.

use crate::special::{gamma_p, ln_gamma, norm_cdf, norm_pdf, norm_ppf};
use crate::{ProbError, Result};
use rand::Rng;

/// A univariate continuous distribution.
///
/// Object-safe so heterogeneous marginals can be boxed inside an
/// [`crate::InputDistribution`].
pub trait Univariate: Send + Sync + std::fmt::Debug {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Mean.
    fn mean(&self) -> f64;
    /// Variance.
    fn variance(&self) -> f64;
    /// Quantile function; default inverts the CDF by bisection over an
    /// envelope around the mean (distributions override when analytic).
    fn quantile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        let (mut lo, mut hi) = (
            self.mean() - 20.0 * self.variance().sqrt().max(1e-12),
            self.mean() + 20.0 * self.variance().sqrt().max(1e-12),
        );
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Draw a standard normal deviate by the Marsaglia polar method.
pub fn sample_standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal distribution `N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create `N(mu, sigma²)`; `sigma` must be positive and finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !(sigma > 0.0 && sigma.is_finite() && mu.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "Normal sigma/mu",
                value: sigma,
            });
        }
        Ok(Normal { mu, sigma })
    }

    /// Mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Univariate for Normal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.mu + self.sigma * sample_standard_normal(rng)
    }
    fn pdf(&self, x: f64) -> f64 {
        norm_pdf((x - self.mu) / self.sigma) / self.sigma
    }
    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mu) / self.sigma)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * norm_ppf(p)
    }
}

/// Continuous uniform on `[a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Create `U[a, b)`; requires `a < b`.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !(a < b && a.is_finite() && b.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "Uniform bounds",
                value: b - a,
            });
        }
        Ok(Uniform { a, b })
    }
}

impl Univariate for Uniform {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        rng.gen_range(self.a..self.b)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x < self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }
    fn variance(&self) -> f64 {
        (self.b - self.a).powi(2) / 12.0
    }
    fn quantile(&self, p: f64) -> f64 {
        self.a + p * (self.b - self.a)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create `Exp(lambda)`; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "Exponential lambda",
                value: lambda,
            });
        }
        Ok(Exponential { lambda })
    }
}

impl Univariate for Exponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        -(1.0 - u).ln() / self.lambda
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
    fn variance(&self) -> f64 {
        1.0 / (self.lambda * self.lambda)
    }
    fn quantile(&self, p: f64) -> f64 {
        -(1.0 - p).ln() / self.lambda
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create `Gamma(shape, scale)`; both must be positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "Gamma shape",
                value: shape,
            });
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "Gamma scale",
                value: scale,
            });
        }
        Ok(Gamma { shape, scale })
    }

    /// Marsaglia–Tsang sampler for shape ≥ 1 (boosted for shape < 1).
    fn sample_raw(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let a = if self.shape < 1.0 {
            self.shape + 1.0
        } else {
            self.shape
        };
        let d = a - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let g = loop {
            let x = sample_standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(0.0f64..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                break d * v;
            }
        };
        if self.shape < 1.0 {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            g * u.powf(1.0 / self.shape)
        } else {
            g
        }
    }
}

impl Univariate for Gamma {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.sample_raw(rng) * self.scale
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        ((k - 1.0) * (x / self.scale).ln() - x / self.scale - ln_gamma(k)).exp() / self.scale
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale
    }
    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// Normal distribution truncated to `[lo, hi]`, used when a selection
/// predicate truncates a result distribution (§2.1, Q2 discussion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    base: Normal,
    lo: f64,
    hi: f64,
    /// Φ((lo-μ)/σ), cached.
    cdf_lo: f64,
    /// Mass of the untruncated distribution inside [lo, hi], cached.
    mass: f64,
}

impl TruncatedNormal {
    /// Truncate `base` to `[lo, hi]`; requires `lo < hi` and nonzero mass.
    pub fn new(base: Normal, lo: f64, hi: f64) -> Result<Self> {
        if lo >= hi {
            return Err(ProbError::InvalidParameter {
                what: "TruncatedNormal bounds",
                value: hi - lo,
            });
        }
        let cdf_lo = base.cdf(lo);
        let mass = base.cdf(hi) - cdf_lo;
        if mass <= 0.0 {
            return Err(ProbError::InvalidParameter {
                what: "TruncatedNormal mass",
                value: mass,
            });
        }
        Ok(TruncatedNormal {
            base,
            lo,
            hi,
            cdf_lo,
            mass,
        })
    }
}

impl Univariate for TruncatedNormal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Inverse-CDF sampling; exact and branch-free for moderate truncation.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        self.base.quantile(self.cdf_lo + u * self.mass)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            self.base.pdf(x) / self.mass
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (self.base.cdf(x) - self.cdf_lo) / self.mass
        }
    }
    fn mean(&self) -> f64 {
        // μ + σ (φ(α) − φ(β)) / Z with α, β standardized bounds.
        let (mu, s) = (self.base.mu(), self.base.sigma());
        let a = (self.lo - mu) / s;
        let b = (self.hi - mu) / s;
        mu + s * (norm_pdf(a) - norm_pdf(b)) / self.mass
    }
    fn variance(&self) -> f64 {
        let (mu, s) = (self.base.mu(), self.base.sigma());
        let a = (self.lo - mu) / s;
        let b = (self.hi - mu) / s;
        let z = self.mass;
        let term = (a * norm_pdf(a) - b * norm_pdf(b)) / z;
        let shift = (norm_pdf(a) - norm_pdf(b)) / z;
        s * s * (1.0 + term - shift * shift)
    }
}

/// A degenerate (point-mass) distribution — a deterministic attribute viewed
/// as a random variable, so deterministic and uncertain columns mix freely
/// in one input vector (Q2 passes the constant `AREA` to `ComoveVol`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degenerate {
    value: f64,
}

impl Degenerate {
    /// Point mass at `value` (must be finite).
    pub fn new(value: f64) -> Result<Self> {
        if !value.is_finite() {
            return Err(ProbError::InvalidParameter {
                what: "Degenerate value",
                value,
            });
        }
        Ok(Degenerate { value })
    }
}

impl Univariate for Degenerate {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.value
    }
    fn pdf(&self, x: f64) -> f64 {
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn quantile(&self, _p: f64) -> f64 {
        self.value
    }
}

/// One-dimensional Gaussian mixture `Σ w_i N(mu_i, sigma_i²)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture1d {
    components: Vec<(f64, Normal)>,
}

impl GaussianMixture1d {
    /// Create a mixture from `(weight, component)` pairs; weights must be
    /// positive and are normalized to sum to 1.
    pub fn new(components: Vec<(f64, Normal)>) -> Result<Self> {
        if components.is_empty() {
            return Err(ProbError::Empty("mixture components"));
        }
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        if !(total > 0.0 && total.is_finite()) {
            return Err(ProbError::InvalidParameter {
                what: "mixture weight sum",
                value: total,
            });
        }
        Ok(GaussianMixture1d {
            components: components
                .into_iter()
                .map(|(w, n)| (w / total, n))
                .collect(),
        })
    }

    /// Component view.
    pub fn components(&self) -> &[(f64, Normal)] {
        &self.components
    }
}

impl Univariate for GaussianMixture1d {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let mut u: f64 = rng.gen_range(0.0f64..1.0);
        for (w, n) in &self.components {
            if u < *w {
                return n.sample(rng);
            }
            u -= w;
        }
        // Guard against floating-point slop in the weight sum.
        self.components.last().expect("non-empty").1.sample(rng)
    }
    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, n)| w * n.pdf(x)).sum()
    }
    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, n)| w * n.cdf(x)).sum()
    }
    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, n)| w * n.mean()).sum()
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.components
            .iter()
            .map(|(w, n)| w * (n.variance() + (n.mean() - m).powi(2)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(d: &dyn Univariate, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn normal_moments_and_sampling() {
        let d = Normal::new(3.0, 2.0).unwrap();
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 4.0);
        let (m, v) = sample_stats(&d, 40_000, 42);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
        assert!((d.cdf(3.0) - 0.5).abs() < 1e-9);
        assert!((d.quantile(0.975) - (3.0 + 2.0 * 1.959964)).abs() < 1e-4);
    }

    #[test]
    fn normal_rejects_bad_sigma() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_basics() {
        let d = Uniform::new(-1.0, 3.0).unwrap();
        assert_eq!(d.mean(), 1.0);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(d.cdf(-2.0), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert!((d.quantile(0.25) - 0.0).abs() < 1e-12);
        assert!(Uniform::new(1.0, 1.0).is_err());
    }

    #[test]
    fn exponential_cdf_sampling() {
        let d = Exponential::new(2.0).unwrap();
        assert!((d.mean() - 0.5).abs() < 1e-12);
        let (m, _) = sample_stats(&d, 40_000, 7);
        assert!((m - 0.5).abs() < 0.02);
        assert!((d.cdf(d.quantile(0.9)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn gamma_moments_and_cdf() {
        let d = Gamma::new(3.0, 2.0).unwrap();
        assert_eq!(d.mean(), 6.0);
        assert_eq!(d.variance(), 12.0);
        let (m, v) = sample_stats(&d, 60_000, 11);
        assert!((m - 6.0).abs() < 0.1, "mean {m}");
        assert!((v - 12.0).abs() < 0.6, "var {v}");
        // CDF at the mean of an Erlang(3) should be in a sane band.
        let c = d.cdf(6.0);
        assert!(c > 0.5 && c < 0.7, "cdf {c}");
        // Shape < 1 branch.
        let d2 = Gamma::new(0.5, 1.0).unwrap();
        let (m2, _) = sample_stats(&d2, 60_000, 13);
        assert!((m2 - 0.5).abs() < 0.02, "mean {m2}");
    }

    #[test]
    fn truncated_normal_mass_and_moments() {
        let base = Normal::new(0.0, 1.0).unwrap();
        let d = TruncatedNormal::new(base, -1.0, 2.0).unwrap();
        assert_eq!(d.cdf(-1.5), 0.0);
        assert_eq!(d.cdf(2.5), 1.0);
        let (m, v) = sample_stats(&d, 60_000, 17);
        assert!((m - d.mean()).abs() < 0.02, "mean {m} vs {}", d.mean());
        assert!((v - d.variance()).abs() < 0.02);
        // Zero-mass truncation rejected.
        assert!(TruncatedNormal::new(base, 50.0, 51.0).is_err());
        assert!(TruncatedNormal::new(base, 1.0, 1.0).is_err());
    }

    #[test]
    fn mixture_normalizes_weights() {
        let m = GaussianMixture1d::new(vec![
            (2.0, Normal::new(-2.0, 0.5).unwrap()),
            (2.0, Normal::new(2.0, 0.5).unwrap()),
        ])
        .unwrap();
        assert!((m.mean()).abs() < 1e-12);
        assert!((m.cdf(0.0) - 0.5).abs() < 1e-9);
        let (mean, _) = sample_stats(&m, 40_000, 19);
        assert!(mean.abs() < 0.05);
        assert!(GaussianMixture1d::new(vec![]).is_err());
    }

    #[test]
    fn mixture_variance_law_of_total_variance() {
        let m = GaussianMixture1d::new(vec![
            (1.0, Normal::new(0.0, 1.0).unwrap()),
            (1.0, Normal::new(4.0, 1.0).unwrap()),
        ])
        .unwrap();
        // Var = E[Var] + Var[E] = 1 + 4.
        assert!((m.variance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn generic_quantile_bisection() {
        // Gamma has no closed-form quantile: exercise the default method.
        let d = Gamma::new(2.0, 1.0).unwrap();
        for &p in &[0.1, 0.5, 0.9] {
            let q = d.quantile(p);
            assert!((d.cdf(q) - p).abs() < 1e-6, "p = {p}");
        }
    }
}
