//! Property-based tests for metrics, ECDFs and distributions.

use proptest::prelude::*;
use udf_prob::metrics::{discrepancy, ks, lambda_discrepancy};
use udf_prob::special::{norm_cdf, norm_ppf};
use udf_prob::{Ecdf, Normal, Univariate};

fn samples(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    n.prop_flat_map(|len| prop::collection::vec(-50.0f64..50.0, len.max(1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn metric_axioms(xs in samples(1..40), ys in samples(1..40)) {
        let a = Ecdf::new(xs).unwrap();
        let b = Ecdf::new(ys).unwrap();
        let k = ks(&a, &b);
        let d = discrepancy(&a, &b);
        // Range.
        prop_assert!((0.0..=1.0).contains(&k));
        prop_assert!((0.0..=1.0).contains(&d));
        // Identity of indiscernibles (same samples → 0).
        prop_assert!(ks(&a, &a) == 0.0);
        prop_assert!(discrepancy(&a, &a) == 0.0);
        // Symmetry.
        prop_assert!((k - ks(&b, &a)).abs() < 1e-15);
        prop_assert!((d - discrepancy(&b, &a)).abs() < 1e-15);
        // Paper §2.1: KS ≤ D ≤ 2 KS.
        prop_assert!(d <= 2.0 * k + 1e-12, "D = {d} > 2 KS = {}", 2.0 * k);
        prop_assert!(k <= d + 1e-12, "KS = {k} > D = {d}");
    }

    #[test]
    fn lambda_monotone(xs in samples(2..30), ys in samples(2..30),
                       l1 in 0.0f64..5.0, l2 in 0.0f64..5.0) {
        let a = Ecdf::new(xs).unwrap();
        let b = Ecdf::new(ys).unwrap();
        let (lo, hi) = if l1 < l2 { (l1, l2) } else { (l2, l1) };
        // Larger λ restricts the supremum set → smaller value.
        prop_assert!(lambda_discrepancy(&a, &b, hi) <= lambda_discrepancy(&a, &b, lo) + 1e-12);
    }

    #[test]
    fn ks_triangle_inequality(
        xs in samples(1..25), ys in samples(1..25), zs in samples(1..25)
    ) {
        let a = Ecdf::new(xs).unwrap();
        let b = Ecdf::new(ys).unwrap();
        let c = Ecdf::new(zs).unwrap();
        prop_assert!(ks(&a, &c) <= ks(&a, &b) + ks(&b, &c) + 1e-12);
        prop_assert!(discrepancy(&a, &c) <= discrepancy(&a, &b) + discrepancy(&b, &c) + 1e-12);
    }

    #[test]
    fn ecdf_cdf_monotone(xs in samples(1..60), q1 in -60.0f64..60.0, q2 in -60.0f64..60.0) {
        let e = Ecdf::new(xs).unwrap();
        let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(e.cdf(lo) <= e.cdf(hi));
        prop_assert!(e.cdf(e.max()) == 1.0);
        // interval_prob consistency with cdf on intervals below the support.
        prop_assert!((e.interval_prob(e.min() - 1.0, hi) - e.cdf(hi)).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_quantile_roundtrip(mu in -5.0f64..5.0, sigma in 0.1f64..4.0, p in 0.001f64..0.999) {
        let n = Normal::new(mu, sigma).unwrap();
        let q = n.quantile(p);
        prop_assert!((n.cdf(q) - p).abs() < 1e-9);
    }

    #[test]
    fn norm_ppf_cdf_consistent(z in -5.0f64..5.0) {
        let p = norm_cdf(z);
        if p > 1e-12 && p < 1.0 - 1e-12 {
            prop_assert!((norm_ppf(p) - z).abs() < 1e-7, "z = {z}");
        }
    }
}
