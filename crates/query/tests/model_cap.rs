//! The model-cap contract on the relational executor: a capped
//! `select_batch` over a spiky UDF (F2) at a tight accuracy keeps the GP
//! model bounded and total UDF calls linear in the batch length, where the
//! uncapped run's model grows with the relation — and cap decisions are
//! deterministic under the scheduler (workers 1/2/8 byte-identity).

use std::sync::Arc;
use udf_core::config::{AccuracyRequirement, Metric, ModelBudget};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_core::udf::{BlackBoxUdf, CostModel};
use udf_query::{EvalStrategy, Executor, ProjectedTuple, Relation, Schema, Tuple, UdfCall, Value};
use udf_workloads::synthetic::{sweep_mean, PaperFunction};

const SEED: u64 = 0xF2CA9;
const CAP: usize = 16;

/// A relation whose uncertain attribute sweeps the synthetic domain on the
/// golden-ratio schedule — every stretch of tuples visits fresh regions,
/// the adversarial input for GP model growth.
fn sweep_rel(n: usize) -> Relation {
    let schema = Schema::new(&["objID", "x"]);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: sweep_mean(i),
                    sigma: 0.4,
                },
            ])
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

/// Tight requirement (ε = 0.1, the satellite's bound) on the spiky F2.
fn acc() -> AccuracyRequirement {
    AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Ks).unwrap()
}

fn f2_udf() -> (BlackBoxUdf, f64) {
    let f2 = PaperFunction::F2.instantiate(1);
    let range = f2.output_range();
    (BlackBoxUdf::new(Arc::new(f2), CostModel::Free), range)
}

/// Wide predicate: F2 is ≈ 0 over most of the domain and peaks within the
/// range, so everything stays in-interval — the test exercises the cap,
/// not the filter.
fn pred() -> Predicate {
    Predicate::new(-0.5, 2.5, 0.3).unwrap()
}

fn run_select(n: usize, cap: usize, workers: usize) -> (Vec<ProjectedTuple>, Executor) {
    let r = sweep_rel(n);
    let (udf, range) = f2_udf();
    let call = UdfCall::resolve(udf, r.schema(), &["x"]).unwrap();
    let mut ex = Executor::new(EvalStrategy::Gp, acc(), &call, range)
        .unwrap()
        .with_model_cap(cap, ModelBudget::StopGrowing)
        .unwrap();
    let sched = BatchScheduler::new(workers);
    let rows = ex.select_batch(&r, &call, &pred(), &sched, SEED).unwrap();
    (rows, ex)
}

#[test]
fn capped_f2_bounds_model_where_uncapped_grows() {
    // 48 tuples keep the *uncapped* arm affordable in CI — it is the
    // pathological O(n³) path this PR bounds, and it already overshoots
    // the cap severalfold at this size; `gp/model_cap` in the benches
    // prices the full-length divergence.
    let (_, capped) = run_select(48, CAP, 2);
    let (_, uncapped) = run_select(48, 0, 2);
    let capped_len = capped.olgapro().unwrap().model().len();
    let uncapped_len = uncapped.olgapro().unwrap().model().len();
    assert!(
        capped_len <= CAP,
        "capped model grew to {capped_len} > {CAP}"
    );
    assert!(
        uncapped_len > CAP,
        "workload too easy: uncapped model stayed at {uncapped_len}"
    );
    assert!(capped.stats().cap_hits > 0, "cap hits must be observable");
    assert_eq!(uncapped.stats().cap_hits, 0);
    assert!(
        capped.stats().udf_calls < uncapped.stats().udf_calls,
        "cap must bound training cost: {} vs {}",
        capped.stats().udf_calls,
        uncapped.stats().udf_calls
    );
}

#[test]
fn capped_udf_calls_grow_linearly_in_batch_length() {
    let (rows_n, ex_n) = run_select(48, CAP, 1);
    let (rows_2n, ex_2n) = run_select(96, CAP, 1);
    assert_eq!(rows_n.len(), 48, "wide predicate must keep every tuple");
    assert_eq!(rows_2n.len(), 96);
    let (calls_n, calls_2n) = (ex_n.stats().udf_calls, ex_2n.stats().udf_calls);
    // Once the model is full, a stop-growing run stops calling the UDF at
    // all, so doubling the relation costs at most the same training budget
    // again — linear (in fact constant) growth, never the uncapped
    // per-tuple climb.
    assert!(
        calls_2n <= 2 * calls_n,
        "super-linear UDF cost under a cap: {calls_n} → {calls_2n}"
    );
    assert!(
        calls_2n - calls_n <= (CAP + 10) as u64,
        "second half kept training: {calls_n} → {calls_2n}"
    );
}

#[test]
fn capped_rows_identical_for_workers_1_2_8() {
    let (r1, e1) = run_select(64, CAP, 1);
    let (r2, e2) = run_select(64, CAP, 2);
    let (r8, e8) = run_select(64, CAP, 8);
    assert_eq!(e1.stats(), e2.stats(), "stats must not depend on workers");
    assert_eq!(e1.stats(), e8.stats());
    assert!(e1.stats().cap_hits > 0, "cap never exercised");
    for (other, label) in [(&r2, "2"), (&r8, "8")] {
        assert_eq!(
            r1.len(),
            other.len(),
            "row count differs at workers {label}"
        );
        for (a, b) in r1.iter().zip(other.iter()) {
            assert_eq!(a.source, b.source, "workers {label}");
            assert_eq!(a.tep.to_bits(), b.tep.to_bits(), "workers {label}");
            assert_eq!(
                a.output.error_bound.to_bits(),
                b.output.error_bound.to_bits(),
                "workers {label}"
            );
            assert_eq!(
                a.output.ecdf.values(),
                b.output.ecdf.values(),
                "workers {label}, tuple {}",
                a.source
            );
        }
    }
}
