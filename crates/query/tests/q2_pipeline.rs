//! End-to-end Q2-style pipeline tests: self-join → UDF selection → UDF
//! projection, under both evaluation strategies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::udf::BlackBoxUdf;
use udf_query::{EvalStrategy, Executor, Relation, Schema, Tuple, UdfCall, Value};

fn galaxies(n: usize) -> Relation {
    let schema = Schema::new(&["objID", "redshift"]);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.2 + 0.25 * i as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

fn acc() -> AccuracyRequirement {
    AccuracyRequirement::new(0.15, 0.05, 0.01, Metric::Discrepancy).unwrap()
}

/// |z1 - z2| as a cheap stand-in for a distance UDF.
fn zdist() -> BlackBoxUdf {
    BlackBoxUdf::from_fn("zdist", 2, |x| (x[0] - x[1]).abs())
}

#[test]
fn self_join_selection_keeps_expected_pairs() {
    let g = galaxies(6); // redshifts 0.2, 0.45, ..., 1.45
    let pairs = g.cross_join("g1", &g, "g2", |i, j| i < j).unwrap();
    assert_eq!(pairs.len(), 15);
    let call = UdfCall::resolve(zdist(), pairs.schema(), &["g1.redshift", "g2.redshift"]).unwrap();
    // Keep pairs with |Δz| ∈ [0.2, 0.3]: exactly the adjacent pairs (Δ=0.25).
    let pred = Predicate::new(0.2, 0.3, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for strategy in [EvalStrategy::Mc, EvalStrategy::Gp] {
        let mut ex = Executor::new(strategy, acc(), &call, 1.5).unwrap();
        let rows = ex.select(&pairs, &call, &pred, &mut rng).unwrap();
        // 5 adjacent pairs out of 15.
        assert_eq!(
            rows.len(),
            5,
            "{strategy:?}: kept {:?}",
            rows.iter().map(|r| r.source).collect::<Vec<_>>()
        );
        for r in &rows {
            assert!(r.tep > 0.8, "{strategy:?}: adjacent pair TEP {}", r.tep);
        }
    }
}

#[test]
fn projection_after_selection_composes() {
    let g = galaxies(5);
    let pairs = g.cross_join("a", &g, "b", |i, j| i < j).unwrap();
    let call = UdfCall::resolve(zdist(), pairs.schema(), &["a.redshift", "b.redshift"]).unwrap();
    let pred = Predicate::new(0.4, 2.0, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut ex = Executor::new(EvalStrategy::Mc, acc(), &call, 1.5).unwrap();
    let kept = ex.select(&pairs, &call, &pred, &mut rng).unwrap();
    assert!(!kept.is_empty());

    // Re-project a second UDF (sum of redshifts) over survivors.
    let survivors = Relation::new(
        pairs.schema().clone(),
        kept.iter()
            .map(|r| pairs.tuples()[r.source].clone())
            .collect(),
    )
    .unwrap();
    let zsum = BlackBoxUdf::from_fn("zsum", 2, |x| x[0] + x[1]);
    let call2 = UdfCall::resolve(zsum, survivors.schema(), &["a.redshift", "b.redshift"]).unwrap();
    let mut ex2 = Executor::new(EvalStrategy::Mc, acc(), &call2, 3.0).unwrap();
    let rows = ex2.project(&survivors, &call2, &mut rng).unwrap();
    assert_eq!(rows.len(), survivors.len());
    for (row, t) in rows.iter().zip(survivors.tuples()) {
        let expect = t.value(1).mean() + t.value(3).mean();
        let got = row.output.ecdf.quantile(0.5);
        assert!((got - expect).abs() < 0.05, "median {got} vs {expect}");
    }
}

#[test]
fn deterministic_and_uncertain_columns_mix_in_one_udf() {
    // UDF over (objID, redshift): deterministic column must behave as a
    // point mass inside the joint input.
    let g = galaxies(3);
    let udf = BlackBoxUdf::from_fn("mix", 2, |x| x[0] * 10.0 + x[1]);
    let call = UdfCall::resolve(udf, g.schema(), &["objID", "redshift"]).unwrap();
    let mut ex = Executor::new(EvalStrategy::Mc, acc(), &call, 30.0).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let rows = ex.project(&g, &call, &mut rng).unwrap();
    for (i, row) in rows.iter().enumerate() {
        let expect = i as f64 * 10.0 + (0.2 + 0.25 * i as f64);
        let got = row.output.ecdf.quantile(0.5);
        assert!((got - expect).abs() < 0.05, "row {i}: {got} vs {expect}");
        // Spread comes only from the redshift's σ = 0.02.
        let spread = row.output.ecdf.quantile(0.975) - row.output.ecdf.quantile(0.025);
        assert!(spread < 0.02 * 4.5, "spread {spread}");
    }
}

#[test]
fn gp_strategy_amortizes_across_join_pairs() {
    let g = galaxies(6);
    let pairs = g.cross_join("a", &g, "b", |i, j| i < j).unwrap();
    let call = UdfCall::resolve(zdist(), pairs.schema(), &["a.redshift", "b.redshift"]).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut ex = Executor::new(EvalStrategy::Gp, acc(), &call, 1.5).unwrap();
    let rows = ex.project(&pairs, &call, &mut rng).unwrap();
    assert_eq!(rows.len(), 15);
    let mc_equiv = acc().mc_samples() as u64 * 15;
    assert!(
        ex.stats().udf_calls < mc_equiv / 5,
        "GP used {} UDF calls; MC would use {mc_equiv}",
        ex.stats().udf_calls
    );
}
