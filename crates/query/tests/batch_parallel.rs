//! The batch-parallel executor's contract: for a fixed seed the rows are
//! byte-identical for worker counts 1, 2, and 8, and — because tuple `i`
//! always sees an RNG seeded `mix_seed(seed, 0, i)` and model-mutating work
//! folds in tuple order — identical to evaluating the tuples sequentially
//! with the same per-tuple seeds, on both an MC and a GP workload.

use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::filtering::{mc_filtered, FilterDecision, Predicate};
use udf_core::olgapro::Olgapro;
use udf_core::sched::{mix_seed, BatchScheduler};
use udf_core::udf::BlackBoxUdf;
use udf_core::McEvaluator;
use udf_query::{EvalStrategy, Executor, ProjectedTuple, Relation, Schema, Tuple, UdfCall, Value};

const SEED: u64 = 0xBA7C4;

fn rel(n: usize) -> Relation {
    let schema = Schema::new(&["objID", "z"]);
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.5 + (i as f64 * 0.7) % 6.0,
                    sigma: 0.3,
                },
            ])
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

fn acc(metric: Metric) -> AccuracyRequirement {
    AccuracyRequirement::new(0.25, 0.05, 0.02, metric).unwrap()
}

fn sin_call(r: &Relation) -> UdfCall {
    let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
    UdfCall::resolve(udf, r.schema(), &["z"]).unwrap()
}

fn assert_rows_identical(a: &[ProjectedTuple], b: &[ProjectedTuple], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: row count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.source, y.source, "{label}: row {i} source");
        assert_eq!(
            x.output.ecdf.values(),
            y.output.ecdf.values(),
            "{label}: row {i} distribution"
        );
        assert_eq!(x.tep, y.tep, "{label}: row {i} TEP");
        assert_eq!(
            x.output.udf_calls, y.output.udf_calls,
            "{label}: row {i} calls"
        );
    }
}

#[test]
fn mc_project_batch_is_worker_invariant_and_matches_sequential() {
    let r = rel(12);
    let call = sin_call(&r);
    let run = |workers: usize| {
        let mut ex = Executor::new(EvalStrategy::Mc, acc(Metric::Ks), &call, 2.0).unwrap();
        let sched = BatchScheduler::new(workers);
        ex.project_batch(&r, &call, &sched, SEED).unwrap()
    };
    let r1 = run(1);
    let r2 = run(2);
    let r8 = run(8);
    assert_rows_identical(&r1, &r2, "1 vs 2 workers");
    assert_rows_identical(&r1, &r8, "1 vs 8 workers");

    // Sequential reference: the same per-tuple seed derivation, no
    // scheduler involved at all.
    let reference: Vec<ProjectedTuple> = r
        .tuples()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let input = call.input_distribution(t).unwrap();
            let mut rng = StdRng::seed_from_u64(mix_seed(SEED, 0, i as u64));
            let output = McEvaluator::new(call.udf.fork_counter())
                .compute(&input, &acc(Metric::Ks), &mut rng)
                .unwrap();
            ProjectedTuple {
                source: i,
                output,
                tep: 1.0,
            }
        })
        .collect();
    assert_rows_identical(&r1, &reference, "batch vs sequential reference");
}

#[test]
fn gp_project_batch_is_worker_invariant_and_matches_sequential() {
    let r = rel(10);
    let call = sin_call(&r);
    let run = |workers: usize| {
        let mut ex = Executor::new(EvalStrategy::Gp, acc(Metric::Discrepancy), &call, 2.0).unwrap();
        let sched = BatchScheduler::new(workers);
        // Two batches over the same relation: the first exercises bootstrap
        // and slow-path model growth, the second is mostly fast-path.
        let cold = ex.project_batch(&r, &call, &sched, SEED).unwrap();
        let warm = ex.project_batch(&r, &call, &sched, SEED + 1).unwrap();
        (cold, warm, ex.stats())
    };
    let (c1, w1, s1) = run(1);
    let (c2, w2, s2) = run(2);
    let (c8, w8, s8) = run(8);
    assert_rows_identical(&c1, &c2, "cold, 1 vs 2 workers");
    assert_rows_identical(&c1, &c8, "cold, 1 vs 8 workers");
    assert_rows_identical(&w1, &w2, "warm, 1 vs 2 workers");
    assert_rows_identical(&w1, &w8, "warm, 1 vs 8 workers");
    assert_eq!(s1, s2, "stats, 1 vs 2 workers");
    assert_eq!(s1, s8, "stats, 1 vs 8 workers");

    // Sequential reference: a fresh OLGAPRO processed tuple-by-tuple in
    // order with the same per-tuple seeds. During the cold batch, batch
    // mode legitimately diverges from tuple-at-a-time evaluation — accepted
    // fast-path rows are inferred against the *batch-start* model, while a
    // sequential loop sees every earlier tuple's tuning — but the model
    // *mutations* coincide, so once the model is warm (no mid-batch
    // tuning), the rows must match the sequential executor tuple-for-tuple.
    let cfg = OlgaproConfig::new(acc(Metric::Discrepancy), 2.0).unwrap();
    let mut olga = Olgapro::new(call.udf.clone(), cfg);
    // Evolve the reference model through the cold batch's tuples.
    for (i, t) in r.tuples().iter().enumerate() {
        let input = call.input_distribution(t).unwrap();
        let mut rng = StdRng::seed_from_u64(mix_seed(SEED, 0, i as u64));
        olga.process(&input, &mut rng).unwrap();
    }
    let mut reference = Vec::new();
    for (i, t) in r.tuples().iter().enumerate() {
        let input = call.input_distribution(t).unwrap();
        let mut rng = StdRng::seed_from_u64(mix_seed(SEED + 1, 0, i as u64));
        let out = olga.process(&input, &mut rng).unwrap();
        assert_eq!(
            out.points_added, 0,
            "tuple {i}: warm batch must not tune (weaken the workload?)"
        );
        reference.push(ProjectedTuple {
            source: i,
            output: out.into_distribution(),
            tep: 1.0,
        });
    }
    assert_rows_identical(&w1, &reference, "warm batch vs sequential OLGAPRO");
}

#[test]
fn mc_select_batch_agrees_with_sequential_filtering() {
    let r = rel(12);
    let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
    let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
    let pred = Predicate::new(2.0, 4.5, 0.5).unwrap();
    let run = |workers: usize| {
        let mut ex = Executor::new(EvalStrategy::Mc, acc(Metric::Ks), &call, 2.0).unwrap();
        let sched = BatchScheduler::new(workers);
        ex.select_batch(&r, &call, &pred, &sched, SEED).unwrap()
    };
    let r1 = run(1);
    let r8 = run(8);
    assert_rows_identical(&r1, &r8, "1 vs 8 workers");
    assert!(!r1.is_empty(), "predicate too strict: nothing kept");
    assert!(r1.len() < 12, "predicate not selective: everything kept");

    // Sequential reference via mc_filtered with the same per-tuple seeds.
    let mut reference = Vec::new();
    for (i, t) in r.tuples().iter().enumerate() {
        let input = call.input_distribution(t).unwrap();
        let mut rng = StdRng::seed_from_u64(mix_seed(SEED, 0, i as u64));
        let local = call.udf.fork_counter();
        if let FilterDecision::Kept { output, tep } =
            mc_filtered(&local, &input, &acc(Metric::Ks), &pred, &mut rng).unwrap()
        {
            reference.push(ProjectedTuple {
                source: i,
                output,
                tep,
            });
        }
    }
    assert_rows_identical(&r1, &reference, "batch vs sequential mc_filtered");
}

#[test]
fn gp_select_batch_is_worker_invariant_and_filters() {
    let r = rel(12);
    let call = sin_call(&r);
    // sin(0.8 z) lives in [-1, 1]; keep the upper half.
    let pred = Predicate::new(0.3, 1.5, 0.4).unwrap();
    let run = |workers: usize| {
        let mut ex = Executor::new(EvalStrategy::Gp, acc(Metric::Discrepancy), &call, 2.0).unwrap();
        let sched = BatchScheduler::new(workers);
        let cold = ex.select_batch(&r, &call, &pred, &sched, SEED).unwrap();
        let warm = ex.select_batch(&r, &call, &pred, &sched, SEED + 1).unwrap();
        (cold, warm)
    };
    let (c1, w1) = run(1);
    let (c2, w2) = run(2);
    let (c8, w8) = run(8);
    assert_rows_identical(&c1, &c2, "cold, 1 vs 2 workers");
    assert_rows_identical(&c1, &c8, "cold, 1 vs 8 workers");
    assert_rows_identical(&w1, &w2, "warm, 1 vs 2 workers");
    assert_rows_identical(&w1, &w8, "warm, 1 vs 8 workers");
    assert!(!w1.is_empty(), "predicate too strict: nothing kept");
    assert!(w1.len() < 12, "predicate not selective: everything kept");
    for row in &w1 {
        assert!(
            row.tep >= 0.2,
            "kept row {} with TEP {}",
            row.source,
            row.tep
        );
    }
}
