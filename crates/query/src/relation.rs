//! Relations whose attributes may be uncertain.

use crate::{QueryError, Result};
use udf_core::udf::BlackBoxUdf;
use udf_prob::{Degenerate, InputDistribution, Normal, Univariate};

/// One attribute value: deterministic or Gaussian-uncertain (the paper's
/// SDSS modeling; richer marginals can be added the same way).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Known constant.
    Det(f64),
    /// Gaussian-uncertain attribute `N(mu, sigma²)`.
    Gaussian {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
}

impl Value {
    /// Expected value of the attribute.
    pub fn mean(&self) -> f64 {
        match self {
            Value::Det(v) => *v,
            Value::Gaussian { mu, .. } => *mu,
        }
    }

    /// View as a sampling marginal — the exact distribution
    /// [`UdfCall::input_distribution`] builds per argument, exposed so
    /// streaming consumers (udf-join's pair pruner) can construct
    /// bit-identical inputs without materializing a joined tuple.
    pub fn marginal(&self) -> Result<Box<dyn Univariate>> {
        match self {
            Value::Det(v) => Ok(Box::new(Degenerate::new(*v)?)),
            Value::Gaussian { mu, sigma } => Ok(Box::new(Normal::new(*mu, *sigma)?)),
        }
    }
}

/// Column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Build from column names.
    pub fn new(columns: &[&str]) -> Self {
        Schema {
            columns: columns.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| QueryError::UnknownColumn(name.to_string()))
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Concatenate two schemas with prefixes (for joins):
    /// `g1.redshift`, `g2.redshift`, ...
    ///
    /// Fails with [`QueryError::DuplicateColumn`] when the prefixed names
    /// collide — equal prefixes over overlapping columns, or a prefix that
    /// reproduces an already-qualified column of the other side (joining a
    /// join). The old silent behavior made the duplicate unresolvable by
    /// name, poisoning every later [`Schema::index_of`].
    pub fn join(&self, prefix_a: &str, other: &Schema, prefix_b: &str) -> Result<Schema> {
        let mut columns: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{prefix_a}.{c}"))
            .collect();
        columns.extend(other.columns.iter().map(|c| format!("{prefix_b}.{c}")));
        let mut seen = std::collections::BTreeSet::new();
        for c in &columns {
            if !seen.insert(c.as_str()) {
                return Err(QueryError::DuplicateColumn(c.clone()));
            }
        }
        Ok(Schema { columns })
    }
}

/// A row.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Attribute at `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All attributes.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Concatenate (for joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }
}

/// A materialized relation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Build, checking arity.
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            if t.values().len() != schema.arity() {
                return Err(QueryError::ArityMismatch {
                    expected: schema.arity(),
                    found: t.values().len(),
                });
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Schema accessor.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tuples accessor.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Cartesian product with prefixed column names (Q2's self-join; an
    /// optional pair filter trims the quadratic blowup, e.g. `i < j`).
    ///
    /// Fails with [`QueryError::DuplicateColumn`] on colliding prefixes and
    /// with [`QueryError::JoinTooLarge`] when the cross product exceeds
    /// [`u32::MAX`] pairs — materializing (or even enumerating) more would
    /// OOM long before producing anything useful; `udf_join`'s pruned
    /// executor streams pair batches instead of calling this.
    pub fn cross_join(
        &self,
        prefix_a: &str,
        other: &Relation,
        prefix_b: &str,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Result<Relation> {
        let schema = self.schema.join(prefix_a, &other.schema, prefix_b)?;
        let pairs = (self.len() as u64).checked_mul(other.len() as u64);
        if pairs.is_none_or(|p| p > u32::MAX as u64) {
            return Err(QueryError::JoinTooLarge {
                left: self.len(),
                right: other.len(),
            });
        }
        let mut tuples = Vec::new();
        for (i, a) in self.tuples.iter().enumerate() {
            for (j, b) in other.tuples.iter().enumerate() {
                if keep(i, j) {
                    tuples.push(a.concat(b));
                }
            }
        }
        Ok(Relation { schema, tuples })
    }
}

/// A UDF applied to a list of columns, e.g. `GalAge(redshift)`.
#[derive(Debug, Clone)]
pub struct UdfCall {
    /// The black-box function.
    pub udf: BlackBoxUdf,
    /// Argument column indices (resolved against the input schema).
    pub args: Vec<usize>,
}

impl UdfCall {
    /// Resolve argument names against a schema.
    pub fn resolve(udf: BlackBoxUdf, schema: &Schema, arg_names: &[&str]) -> Result<Self> {
        let args = arg_names
            .iter()
            .map(|n| schema.index_of(n))
            .collect::<Result<Vec<_>>>()?;
        if args.len() != udf.dim() {
            return Err(QueryError::Core(udf_core::CoreError::DimensionMismatch {
                expected: udf.dim(),
                found: args.len(),
            }));
        }
        Ok(UdfCall { udf, args })
    }

    /// The joint distribution of the UDF's input vector on one tuple.
    pub fn input_distribution(&self, tuple: &Tuple) -> Result<InputDistribution> {
        let marginals = self
            .args
            .iter()
            .map(|&i| tuple.value(i).marginal())
            .collect::<Result<Vec<_>>>()?;
        Ok(InputDistribution::independent(marginals)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn galaxy() -> Relation {
        let schema = Schema::new(&["objID", "redshift"]);
        let tuples = vec![
            Tuple::new(vec![
                Value::Det(1.0),
                Value::Gaussian {
                    mu: 0.5,
                    sigma: 0.02,
                },
            ]),
            Tuple::new(vec![
                Value::Det(2.0),
                Value::Gaussian {
                    mu: 1.1,
                    sigma: 0.05,
                },
            ]),
        ];
        Relation::new(schema, tuples).unwrap()
    }

    #[test]
    fn schema_lookup() {
        let r = galaxy();
        assert_eq!(r.schema().index_of("redshift").unwrap(), 1);
        assert!(matches!(
            r.schema().index_of("nope"),
            Err(QueryError::UnknownColumn(_))
        ));
    }

    #[test]
    fn arity_checked() {
        let schema = Schema::new(&["a", "b"]);
        let bad = vec![Tuple::new(vec![Value::Det(1.0)])];
        assert!(matches!(
            Relation::new(schema, bad),
            Err(QueryError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn cross_join_prefixes_and_filters() {
        let r = galaxy();
        let j = r.cross_join("g1", &r, "g2", |i, jj| i < jj).unwrap();
        assert_eq!(j.len(), 1); // (0,1) only
        assert_eq!(j.schema().arity(), 4);
        assert_eq!(j.schema().index_of("g2.redshift").unwrap(), 3);
    }

    #[test]
    fn cross_join_rejects_colliding_prefixes() {
        let r = galaxy();
        // Equal prefixes duplicate every column name.
        assert!(matches!(
            r.cross_join("g", &r, "g", |_, _| true),
            Err(QueryError::DuplicateColumn(c)) if c == "g.objID"
        ));
        // A prefix can also reproduce an already-qualified column of the
        // other side (joining a previous join): "a" + "b.x" ≡ "a.b" + "x".
        let left = Relation::new(
            Schema::new(&["b.x"]),
            vec![Tuple::new(vec![Value::Det(1.0)])],
        )
        .unwrap();
        let right =
            Relation::new(Schema::new(&["x"]), vec![Tuple::new(vec![Value::Det(2.0)])]).unwrap();
        assert!(matches!(
            left.cross_join("a", &right, "a.b", |_, _| true),
            Err(QueryError::DuplicateColumn(c)) if c == "a.b.x"
        ));
        // Distinct prefixes on distinct schemas stay fine.
        assert!(r.cross_join("g1", &r, "g2", |_, _| true).is_ok());
    }

    #[test]
    fn cross_join_rejects_pair_blowup() {
        // 2^16 × 2^16 candidate pairs exceed u32::MAX by one; the join must
        // refuse before enumerating anything.
        let n = 1usize << 16;
        let schema = Schema::new(&["x"]);
        let tuples = vec![Tuple::new(vec![Value::Det(0.0)]); n];
        let big = Relation::new(schema, tuples).unwrap();
        assert!(matches!(
            big.cross_join("a", &big, "b", |_, _| false),
            Err(QueryError::JoinTooLarge {
                left,
                right
            }) if left == n && right == n
        ));
    }

    #[test]
    fn udf_call_builds_input_distribution() {
        let r = galaxy();
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let call = UdfCall::resolve(udf, r.schema(), &["redshift"]).unwrap();
        let d = call.input_distribution(&r.tuples()[0]).unwrap();
        assert_eq!(d.dim(), 1);
        assert_eq!(d.mean(), vec![0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.sample(&mut rng)[0].is_finite());
    }

    #[test]
    fn udf_call_rejects_wrong_arity() {
        let r = galaxy();
        let udf = BlackBoxUdf::from_fn("two", 2, |x| x[0] + x[1]);
        assert!(UdfCall::resolve(udf, r.schema(), &["redshift"]).is_err());
    }

    #[test]
    fn deterministic_values_become_degenerate() {
        let r = galaxy();
        let udf = BlackBoxUdf::from_fn("both", 2, |x| x[0] + x[1]);
        let call = UdfCall::resolve(udf, r.schema(), &["objID", "redshift"]).unwrap();
        let d = call.input_distribution(&r.tuples()[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            assert_eq!(d.sample(&mut rng)[0], 1.0, "objID is deterministic");
        }
    }
}
