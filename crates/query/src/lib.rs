//! A minimal relational executor over uncertain tuples.
//!
//! The paper's motivating queries (§1) invoke UDFs inside SELECT lists and
//! WHERE clauses over relations whose attributes carry distributions:
//!
//! ```sql
//! Q1: SELECT G.objID, GalAge(G.redshift) FROM Galaxy G
//! Q2: SELECT ..., ComoveVol(G1.redshift, G2.redshift, AREA)
//!     FROM Galaxy G1, Galaxy G2
//!     WHERE Distance(G1.pos, G2.pos) IN [l, u]
//! ```
//!
//! This crate provides the substrate to run such queries end-to-end:
//! relations with per-attribute marginals ([`Value`]), a nested-loop join,
//! UDF projection, and UDF selection with tuple-existence-probability
//! filtering, all parameterized by evaluation strategy (MC or OLGAPRO).

pub mod executor;
pub mod relation;

pub use executor::{EvalStrategy, Executor, ProjectedTuple, QueryStats};
pub use relation::{Relation, Schema, Tuple, UdfCall, Value};

use std::fmt;

/// Errors raised by query execution.
#[derive(Debug)]
pub enum QueryError {
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A join would produce two columns with the same qualified name
    /// (equal prefixes, or a prefix colliding with an existing qualified
    /// column).
    DuplicateColumn(String),
    /// A join's cross product exceeds the supported pair count.
    JoinTooLarge {
        /// Left-side row count.
        left: usize,
        /// Right-side row count.
        right: usize,
    },
    /// Evaluation-framework failure.
    Core(udf_core::CoreError),
    /// Probability-layer failure.
    Prob(udf_prob::ProbError),
    /// Schema arity and tuple arity disagree.
    ArityMismatch { expected: usize, found: usize },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            QueryError::DuplicateColumn(c) => {
                write!(
                    f,
                    "join would produce duplicate column {c:?}; use distinct prefixes"
                )
            }
            QueryError::JoinTooLarge { left, right } => write!(
                f,
                "join of {left} x {right} rows exceeds the {} supported pairs",
                u32::MAX
            ),
            QueryError::Core(e) => write!(f, "evaluation error: {e}"),
            QueryError::Prob(e) => write!(f, "probability error: {e}"),
            QueryError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match schema arity {expected}"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<udf_core::CoreError> for QueryError {
    fn from(e: udf_core::CoreError) -> Self {
        QueryError::Core(e)
    }
}

impl From<udf_prob::ProbError> for QueryError {
    fn from(e: udf_prob::ProbError) -> Self {
        QueryError::Prob(e)
    }
}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, QueryError>;
