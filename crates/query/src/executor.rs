//! Query execution: UDF projection and UDF selection over relations.

use crate::relation::{Relation, Tuple, UdfCall};
use crate::Result;
use udf_core::config::{AccuracyRequirement, OlgaproConfig};
use udf_core::filtering::{gp_filtered, mc_filtered, FilterDecision, Predicate};
use udf_core::olgapro::Olgapro;
use udf_core::output::OutputDistribution;
use udf_core::McEvaluator;

/// How UDF outputs are computed per tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Direct Monte Carlo sampling (Algorithm 1).
    Mc,
    /// OLGAPRO (Algorithm 5). State (the GP model) persists across tuples,
    /// which is where the online speedup comes from.
    Gp,
}

/// Execution counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Tuples examined.
    pub tuples_in: u64,
    /// Tuples emitted (survived filters).
    pub tuples_out: u64,
    /// UDF invocations across all tuples.
    pub udf_calls: u64,
}

/// One output row of a UDF projection.
#[derive(Debug, Clone)]
pub struct ProjectedTuple {
    /// Index of the source tuple in the input relation.
    pub source: usize,
    /// The UDF output distribution.
    pub output: OutputDistribution,
    /// Tuple-existence probability (1 unless a predicate truncated it).
    pub tep: f64,
}

/// Executes UDF operators over relations with a chosen strategy.
///
/// The executor owns one OLGAPRO instance per query (the model warms up
/// across tuples); construct a fresh executor per (query, UDF) pair.
#[derive(Debug)]
pub struct Executor {
    strategy: EvalStrategy,
    accuracy: AccuracyRequirement,
    olgapro: Option<Olgapro>,
    stats: QueryStats,
}

impl Executor {
    /// Build an executor for one UDF call.
    ///
    /// `output_range` is the caller's estimate of the UDF output spread
    /// (used to scale Γ and λ for the GP path).
    pub fn new(
        strategy: EvalStrategy,
        accuracy: AccuracyRequirement,
        call: &UdfCall,
        output_range: f64,
    ) -> Result<Self> {
        let olgapro = match strategy {
            EvalStrategy::Mc => None,
            EvalStrategy::Gp => {
                let cfg = OlgaproConfig::new(accuracy, output_range)?;
                Some(Olgapro::new(call.udf.clone(), cfg))
            }
        };
        Ok(Executor {
            strategy,
            accuracy,
            olgapro,
            stats: QueryStats::default(),
        })
    }

    /// Execution counters so far.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// `SELECT udf(args) FROM rel` — compute the UDF output distribution
    /// for every tuple (query Q1).
    pub fn project(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<ProjectedTuple>> {
        let mut out = Vec::with_capacity(rel.len());
        for (i, t) in rel.tuples().iter().enumerate() {
            self.stats.tuples_in += 1;
            let output = self.eval_tuple(t, call, rng)?;
            self.stats.udf_calls += output.udf_calls;
            self.stats.tuples_out += 1;
            out.push(ProjectedTuple {
                source: i,
                output,
                tep: 1.0,
            });
        }
        Ok(out)
    }

    /// `SELECT udf(args) FROM rel WHERE udf(args) ∈ [lo, hi]` with TEP
    /// threshold θ (query Q2's selection) — tuples whose existence
    /// probability upper bound falls below θ are dropped early.
    pub fn select(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        predicate: &Predicate,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<ProjectedTuple>> {
        let mut out = Vec::new();
        for (i, t) in rel.tuples().iter().enumerate() {
            self.stats.tuples_in += 1;
            let input = call.input_distribution(t)?;
            match self.strategy {
                EvalStrategy::Mc => {
                    let d = mc_filtered(&call.udf, &input, &self.accuracy, predicate, rng)?;
                    match d {
                        FilterDecision::Filtered { udf_calls, .. } => {
                            self.stats.udf_calls += udf_calls;
                        }
                        FilterDecision::Kept { output, tep } => {
                            self.stats.udf_calls += output.udf_calls;
                            self.stats.tuples_out += 1;
                            out.push(ProjectedTuple {
                                source: i,
                                output,
                                tep,
                            });
                        }
                    }
                }
                EvalStrategy::Gp => {
                    let olga = self.olgapro.as_mut().expect("GP strategy has model");
                    let d = gp_filtered(olga, &input, predicate, rng)?;
                    match d {
                        FilterDecision::Filtered { udf_calls, .. } => {
                            self.stats.udf_calls += udf_calls;
                        }
                        FilterDecision::Kept { output, tep } => {
                            self.stats.udf_calls += output.udf_calls;
                            self.stats.tuples_out += 1;
                            out.push(ProjectedTuple {
                                source: i,
                                output: output.into_distribution(),
                                tep,
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn eval_tuple(
        &mut self,
        tuple: &Tuple,
        call: &UdfCall,
        rng: &mut dyn rand::RngCore,
    ) -> Result<OutputDistribution> {
        let input = call.input_distribution(tuple)?;
        match self.strategy {
            EvalStrategy::Mc => {
                let mc = McEvaluator::new(call.udf.clone());
                Ok(mc.compute(&input, &self.accuracy, rng)?)
            }
            EvalStrategy::Gp => {
                let olga = self.olgapro.as_mut().expect("GP strategy has model");
                Ok(olga.process(&input, rng)?.into_distribution())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Schema, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udf_core::config::Metric;
    use udf_core::udf::BlackBoxUdf;

    fn rel(n: usize) -> Relation {
        let schema = Schema::new(&["objID", "z"]);
        let tuples = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Det(i as f64),
                    Value::Gaussian {
                        mu: 1.0 + i as f64 * 0.5,
                        sigma: 0.1,
                    },
                ])
            })
            .collect();
        Relation::new(schema, tuples).unwrap()
    }

    fn acc(metric: Metric) -> AccuracyRequirement {
        AccuracyRequirement::new(0.2, 0.05, 0.02, metric).unwrap()
    }

    #[test]
    fn q1_style_projection_mc() {
        let r = rel(4);
        let udf = BlackBoxUdf::from_fn("sq", 1, |x| x[0] * x[0]);
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Mc, acc(Metric::Ks), &call, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = ex.project(&r, &call, &mut rng).unwrap();
        assert_eq!(rows.len(), 4);
        // Output medians should track (1 + 0.5 i)².
        for (i, row) in rows.iter().enumerate() {
            let want = (1.0 + 0.5 * i as f64).powi(2);
            let got = row.output.ecdf.quantile(0.5);
            assert!((got - want).abs() < 0.3, "row {i}: {got} vs {want}");
        }
        assert_eq!(ex.stats().tuples_out, 4);
    }

    #[test]
    fn q1_style_projection_gp_reuses_model() {
        let r = rel(6);
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Gp, acc(Metric::Discrepancy), &call, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let rows = ex.project(&r, &call, &mut rng).unwrap();
        assert_eq!(rows.len(), 6);
        // GP reuse: far fewer UDF calls than MC would need.
        let mc_calls = acc(Metric::Discrepancy).mc_samples() as u64 * 6;
        assert!(
            ex.stats().udf_calls < mc_calls / 10,
            "GP used {} calls, MC would use {}",
            ex.stats().udf_calls,
            mc_calls
        );
    }

    #[test]
    fn q2_style_selection_filters() {
        let r = rel(5);
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Mc, acc(Metric::Ks), &call, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Keep tuples whose z is likely in [2.4, 3.6]: rows with mu 2.5, 3.0 (+3.5 partially).
        let pred = Predicate::new(2.4, 3.6, 0.5).unwrap();
        let rows = ex.select(&r, &call, &pred, &mut rng).unwrap();
        let kept: Vec<usize> = rows.iter().map(|r| r.source).collect();
        assert!(kept.contains(&3), "mu = 2.5 row should survive");
        assert!(!kept.contains(&0), "mu = 1.0 row should be filtered");
        assert!(ex.stats().tuples_out < ex.stats().tuples_in);
        for row in &rows {
            assert!(row.tep >= 0.5 - 0.1, "kept tuple TEP {}", row.tep);
        }
    }

    #[test]
    fn q2_style_selection_gp() {
        let r = rel(5);
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Gp, acc(Metric::Discrepancy), &call, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // sin output lives in [-1, 1]; ask for an impossible interval.
        let pred = Predicate::new(5.0, 6.0, 0.1).unwrap();
        let rows = ex.select(&r, &call, &pred, &mut rng).unwrap();
        assert!(
            rows.is_empty(),
            "impossible predicate must filter everything"
        );
        assert_eq!(ex.stats().tuples_out, 0);
    }
}
