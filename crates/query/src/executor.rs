//! Query execution: UDF projection and UDF selection over relations.
//!
//! Two execution modes share one evaluation substrate:
//!
//! * the original tuple-at-a-time mode ([`Executor::project`] /
//!   [`Executor::select`]), driven by a caller-supplied RNG;
//! * a **batch-parallel** mode ([`Executor::project_batch`] /
//!   [`Executor::select_batch`]) built on the shared two-phase core
//!   [`udf_core::sched::BatchScheduler`]: read-only GP inference (or MC
//!   sampling) fans out across the persistent worker pool, and only tuples
//!   that miss the ε_GP budget take the sequential model-mutating path.
//!   Per-tuple RNGs derive from [`mix_seed`]`(seed, 0, i)`, so results are
//!   byte-identical for any worker count. On the MC path (and on the GP
//!   path once the model is warm) they are also identical to a sequential
//!   evaluation with the same per-tuple seeds; while the model is still
//!   being tuned, accepted fast-path rows are inferred against the
//!   batch-start model rather than each predecessor's tuning, exactly like
//!   [`udf_core::parallel::ParallelOlgapro`].

use crate::relation::{Relation, Tuple, UdfCall};
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_core::config::{AccuracyRequirement, ModelBudget, OlgaproConfig};
use udf_core::filtering::{gp_filtered, mc_eval_tuple, mc_filtered, FilterDecision, Predicate};
use udf_core::olgapro::{InferScratch, Olgapro, OlgaproMetrics};
use udf_core::output::{GpOutput, OutputDistribution};
use udf_core::sched::{mix_seed, BatchOps, BatchScheduler, BatchStats, Verdict};
use udf_core::McEvaluator;
use udf_prob::InputDistribution;

/// How UDF outputs are computed per tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Direct Monte Carlo sampling (Algorithm 1).
    Mc,
    /// OLGAPRO (Algorithm 5). State (the GP model) persists across tuples,
    /// which is where the online speedup comes from.
    Gp,
}

/// Execution counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Tuples examined.
    pub tuples_in: u64,
    /// Tuples emitted (survived filters).
    pub tuples_out: u64,
    /// UDF invocations across all tuples.
    pub udf_calls: u64,
    /// Tuples evaluated at a degraded (achieved) error bound because the
    /// GP model cap blocked further online tuning — nonzero only when a
    /// cap is set via [`Executor::with_model_cap`].
    pub cap_hits: u64,
    /// Tuples fully served by the parallel read-only fast path (batch
    /// modes; fed from [`BatchStats`]).
    pub fast_path: u64,
    /// Tuples that took the sequential model-mutating slow path —
    /// rerouted batch tuples plus every tuple of the tuple-at-a-time
    /// modes ([`Executor::project`] / [`Executor::select`] /
    /// [`Executor::select_seeded`], which always run the full path).
    pub slow_path: u64,
}

/// One output row of a UDF projection.
#[derive(Debug, Clone)]
pub struct ProjectedTuple {
    /// Index of the source tuple in the input relation.
    pub source: usize,
    /// The UDF output distribution.
    pub output: OutputDistribution,
    /// Tuple-existence probability (1 unless a predicate truncated it).
    pub tep: f64,
}

/// Executes UDF operators over relations with a chosen strategy.
///
/// The executor owns one OLGAPRO instance per query (the model warms up
/// across tuples); construct a fresh executor per (query, UDF) pair. The
/// UDF is captured at construction and is what every method evaluates —
/// the `call` passed to the relation-level methods must be the one the
/// executor was built for (it contributes the argument/column bindings;
/// its UDF handle is the same shared black box).
///
/// Cloning snapshots the executor — including its warmed GP evaluator, if
/// any — so a post-warmup state can be captured once and restored per
/// execution (the prepared-statement warm-reuse path).
#[derive(Clone, Debug)]
pub struct Executor {
    strategy: EvalStrategy,
    accuracy: AccuracyRequirement,
    udf: udf_core::udf::BlackBoxUdf,
    olgapro: Option<Olgapro>,
    stats: QueryStats,
}

impl Executor {
    /// Build an executor for one UDF call.
    ///
    /// `output_range` is the caller's estimate of the UDF output spread
    /// (used to scale Γ and λ for the GP path).
    pub fn new(
        strategy: EvalStrategy,
        accuracy: AccuracyRequirement,
        call: &UdfCall,
        output_range: f64,
    ) -> Result<Self> {
        let olgapro = match strategy {
            EvalStrategy::Mc => None,
            EvalStrategy::Gp => {
                let cfg = OlgaproConfig::new(accuracy, output_range)?;
                Some(Olgapro::new(call.udf.clone(), cfg))
            }
        };
        Ok(Executor {
            strategy,
            accuracy,
            udf: call.udf.clone(),
            olgapro,
            stats: QueryStats::default(),
        })
    }

    /// Cap the GP model at `n` training points under the given budget
    /// policy. **`0` is the uncapped sentinel (the default)** — on long
    /// relations an uncapped model makes per-tuple inference O(m²) and
    /// retraining O(m³) in the model size m. Nonzero caps below the GP
    /// bootstrap size are rejected; the MC strategy ignores the cap.
    ///
    /// Capped runs accept over-budget tuples at their *achieved* error
    /// bound (attached to every output row) and count them in
    /// [`QueryStats::cap_hits`].
    pub fn with_model_cap(mut self, n: usize, budget: ModelBudget) -> Result<Self> {
        if let Some(olga) = &mut self.olgapro {
            olga.set_model_cap(n, budget)?;
        }
        Ok(self)
    }

    /// Cap the GP online-tuning budget at `n` training points per tuple
    /// (engine default 10; see [`Olgapro::set_tuning_budget`]). Small
    /// budgets spread model growth evenly across a batch instead of
    /// letting the first fresh-region tuples exhaust the model cap — the
    /// knob udf-join's strided warmup uses. Rejects 0; the MC strategy
    /// ignores it.
    pub fn with_tuning_budget(mut self, n: usize) -> Result<Self> {
        if let Some(olga) = &mut self.olgapro {
            olga.set_tuning_budget(n)?;
        }
        Ok(self)
    }

    /// Wire observability: the executor's OLGAPRO instance (if any)
    /// registers its `olgapro.*` handles in `reg`. Purely observational —
    /// results are byte-identical wired or not. The MC strategy has no
    /// per-executor timers and ignores this.
    pub fn with_metrics(mut self, reg: &udf_obs::MetricsRegistry) -> Self {
        if let Some(olga) = &mut self.olgapro {
            olga.set_metrics(OlgaproMetrics::register(reg));
        }
        self
    }

    /// Wire structured tracing: the executor's OLGAPRO instance (if any)
    /// emits model-lifecycle events (`ModelGrow`/`ModelEvict`/`CapHit`)
    /// into `tracer`'s rings. Purely observational — results are
    /// byte-identical wired or not. The MC strategy has no model and
    /// ignores this.
    pub fn with_tracer(mut self, tracer: &udf_obs::TraceBuffer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// In-place variant of [`with_tracer`](Self::with_tracer).
    pub fn set_tracer(&mut self, tracer: &udf_obs::TraceBuffer) {
        if let Some(olga) = &mut self.olgapro {
            olga.set_tracer(tracer.clone());
        }
    }

    /// The GP evaluator, when the strategy is [`EvalStrategy::Gp`] —
    /// exposes model size and core statistics for observability.
    pub fn olgapro(&self) -> Option<&Olgapro> {
        self.olgapro.as_ref()
    }

    /// Execution counters so far.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// `SELECT udf(args) FROM rel` — compute the UDF output distribution
    /// for every tuple (query Q1).
    pub fn project(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<ProjectedTuple>> {
        let mut out = Vec::with_capacity(rel.len());
        for (i, t) in rel.tuples().iter().enumerate() {
            self.stats.tuples_in += 1;
            self.stats.slow_path += 1;
            let output = self.eval_tuple(t, call, rng)?;
            self.stats.udf_calls += output.udf_calls;
            self.stats.tuples_out += 1;
            out.push(ProjectedTuple {
                source: i,
                output,
                tep: 1.0,
            });
        }
        Ok(out)
    }

    /// `SELECT udf(args) FROM rel WHERE udf(args) ∈ [lo, hi]` with TEP
    /// threshold θ (query Q2's selection) — tuples whose existence
    /// probability upper bound falls below θ are dropped early.
    pub fn select(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        predicate: &Predicate,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<ProjectedTuple>> {
        let mut out = Vec::new();
        for (i, t) in rel.tuples().iter().enumerate() {
            self.stats.tuples_in += 1;
            self.stats.slow_path += 1;
            let input = call.input_distribution(t)?;
            match self.strategy {
                EvalStrategy::Mc => {
                    let d = mc_filtered(&call.udf, &input, &self.accuracy, predicate, rng)?;
                    match d {
                        FilterDecision::Filtered { udf_calls, .. } => {
                            self.stats.udf_calls += udf_calls;
                        }
                        FilterDecision::Kept { output, tep } => {
                            self.stats.udf_calls += output.udf_calls;
                            self.stats.tuples_out += 1;
                            out.push(ProjectedTuple {
                                source: i,
                                output,
                                tep,
                            });
                        }
                    }
                }
                EvalStrategy::Gp => {
                    let olga = self.olgapro.as_mut().expect("GP strategy has model");
                    let cap_before = olga.stats().cap_hits;
                    let d = gp_filtered(olga, &input, predicate, rng)?;
                    let cap_delta = olga.stats().cap_hits - cap_before;
                    self.stats.cap_hits += cap_delta;
                    match d {
                        FilterDecision::Filtered { udf_calls, .. } => {
                            self.stats.udf_calls += udf_calls;
                        }
                        FilterDecision::Kept { output, tep } => {
                            self.stats.udf_calls += output.udf_calls;
                            self.stats.tuples_out += 1;
                            out.push(ProjectedTuple {
                                source: i,
                                output: output.into_distribution(),
                                tep,
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Sequential, fully-seeded evaluation of an explicit `(original
    /// index, input)` list through the complete model-mutating path —
    /// tuple `idx` runs under [`mix_seed`]`(seed, 0, idx)`, exactly the
    /// RNG a batch would hand it. Unlike a batch's fast phase (which
    /// judges every tuple against the frozen batch-start model), each
    /// tuple here tunes the model *before* the next one is judged, so
    /// cold-model verdicts never poison downstream decisions. This is
    /// `udf_join`'s GP warmup round; results are trivially independent of
    /// worker count (nothing runs concurrently).
    pub fn select_seeded(
        &mut self,
        inputs: &[(usize, InputDistribution)],
        predicate: Option<&Predicate>,
        seed: u64,
    ) -> Result<Vec<ProjectedTuple>> {
        let mut out = Vec::new();
        for (idx, input) in inputs {
            self.stats.tuples_in += 1;
            self.stats.slow_path += 1;
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, *idx as u64));
            let decision = match self.strategy {
                EvalStrategy::Mc => {
                    mc_eval_tuple(&self.udf, input, &self.accuracy, predicate, &mut rng)?
                }
                EvalStrategy::Gp => {
                    let olga = self.olgapro.as_mut().expect("GP strategy has model");
                    let cap_before = olga.stats().cap_hits;
                    let d = match predicate {
                        Some(pred) => match gp_filtered(olga, input, pred, &mut rng)? {
                            FilterDecision::Kept { output, tep } => FilterDecision::Kept {
                                output: output.into_distribution(),
                                tep,
                            },
                            FilterDecision::Filtered {
                                rho_upper,
                                udf_calls,
                            } => FilterDecision::Filtered {
                                rho_upper,
                                udf_calls,
                            },
                        },
                        None => {
                            let o = olga.process(input, &mut rng)?;
                            FilterDecision::Kept {
                                output: o.into_distribution(),
                                tep: 1.0,
                            }
                        }
                    };
                    self.stats.cap_hits += olga.stats().cap_hits - cap_before;
                    d
                }
            };
            match decision {
                FilterDecision::Kept { output, tep } => {
                    self.stats.udf_calls += output.udf_calls;
                    self.stats.tuples_out += 1;
                    out.push(ProjectedTuple {
                        source: *idx,
                        output,
                        tep,
                    });
                }
                FilterDecision::Filtered { udf_calls, .. } => {
                    self.stats.udf_calls += udf_calls;
                }
            }
        }
        Ok(out)
    }

    /// Batch-parallel Q1 projection: like [`project`](Executor::project),
    /// but the whole relation is one batch on `sched`'s worker pool.
    ///
    /// Tuple `i` is evaluated with an RNG seeded
    /// [`mix_seed`]`(seed, 0, i)`, so the rows are byte-identical for any
    /// worker count — and, once the GP model is warm (MC: always),
    /// identical to processing the tuples sequentially in order with the
    /// same per-tuple seeds.
    pub fn project_batch(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        sched: &BatchScheduler,
        seed: u64,
    ) -> Result<Vec<ProjectedTuple>> {
        self.run_batch(rel, call, None, sched, seed)
    }

    /// Batch-parallel Q2 selection: like [`select`](Executor::select), but
    /// the whole relation is one batch on `sched`'s worker pool. On the GP
    /// path, tuples are filtered from the fast-path envelope bounds (§5.5)
    /// before any model-mutating work is scheduled.
    pub fn select_batch(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        predicate: &Predicate,
        sched: &BatchScheduler,
        seed: u64,
    ) -> Result<Vec<ProjectedTuple>> {
        self.run_batch(rel, call, Some(*predicate), sched, seed)
    }

    /// Batch-parallel selection over an *explicit, possibly sparse* list of
    /// `(original_index, input_distribution)` tuples. Seeds, emitted
    /// `source` ids, and slow-path fold order all come from the original
    /// index, so evaluating a subset is bit-identical to the corresponding
    /// tuples of a full [`select_batch`](Executor::select_batch) run —
    /// provided the skipped tuples are ones the accept hook would have
    /// filtered (they mutate nothing and emit nothing). This is the
    /// contract `udf_join`'s envelope pruning relies on; the returned
    /// [`BatchStats`] expose the fast/slow/filtered split.
    pub fn select_batch_indexed(
        &mut self,
        inputs: &[(usize, InputDistribution)],
        predicate: &Predicate,
        sched: &BatchScheduler,
        seed: u64,
    ) -> Result<(Vec<ProjectedTuple>, BatchStats)> {
        self.run_batch_indexed(inputs, Some(*predicate), sched, seed)
    }

    /// [`select_batch_indexed`](Executor::select_batch_indexed) without a
    /// predicate: indexed batch-parallel projection. Multi-round callers
    /// (udf-join's warmup + main split) use this for Q1-style pair
    /// projections.
    pub fn project_batch_indexed(
        &mut self,
        inputs: &[(usize, InputDistribution)],
        sched: &BatchScheduler,
        seed: u64,
    ) -> Result<(Vec<ProjectedTuple>, BatchStats)> {
        self.run_batch_indexed(inputs, None, sched, seed)
    }

    /// Shared batch driver for projection (`predicate = None`) and
    /// selection (`Some`).
    fn run_batch(
        &mut self,
        rel: &Relation,
        call: &UdfCall,
        predicate: Option<Predicate>,
        sched: &BatchScheduler,
        seed: u64,
    ) -> Result<Vec<ProjectedTuple>> {
        let inputs: Vec<(usize, InputDistribution)> = rel
            .tuples()
            .iter()
            .map(|t| call.input_distribution(t))
            .enumerate()
            .map(|(i, d)| d.map(|d| (i, d)))
            .collect::<Result<_>>()?;
        Ok(self.run_batch_indexed(&inputs, predicate, sched, seed)?.0)
    }

    /// The indexed core behind [`run_batch`](Executor::run_batch) and
    /// [`select_batch_indexed`](Executor::select_batch_indexed).
    fn run_batch_indexed(
        &mut self,
        inputs: &[(usize, InputDistribution)],
        predicate: Option<Predicate>,
        sched: &BatchScheduler,
        seed: u64,
    ) -> Result<(Vec<ProjectedTuple>, BatchStats)> {
        let n = inputs.len();
        self.stats.tuples_in += n as u64;
        let mut rows = Vec::with_capacity(n);
        let mut batch_stats = BatchStats::default();
        match self.strategy {
            EvalStrategy::Mc => {
                // MC never mutates shared state: the whole batch is one
                // parallel map (mc_eval_tuple forks the UDF's call counter
                // so per-tuple accounting stays exact under concurrency).
                let accuracy = self.accuracy;
                let udf = &self.udf;
                let results: Vec<udf_core::Result<FilterDecision<OutputDistribution>>> = sched
                    .try_map(n, |i| {
                        let (orig, input) = &inputs[i];
                        let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, *orig as u64));
                        mc_eval_tuple(udf, input, &accuracy, predicate.as_ref(), &mut rng)
                    })?;
                for ((orig, _), res) in inputs.iter().zip(results) {
                    match res? {
                        FilterDecision::Kept { output, tep } => {
                            self.stats.udf_calls += output.udf_calls;
                            self.stats.tuples_out += 1;
                            batch_stats.fast_path += 1;
                            rows.push(ProjectedTuple {
                                source: *orig,
                                output,
                                tep,
                            });
                        }
                        FilterDecision::Filtered { udf_calls, .. } => {
                            self.stats.udf_calls += udf_calls;
                            batch_stats.filtered += 1;
                        }
                    }
                }
            }
            EvalStrategy::Gp => {
                let olga = self.olgapro.as_mut().expect("GP strategy has model");
                let eps_gp_budget = olga.config().split().eps_gp;
                let mut ops = GpRelationOps {
                    olga,
                    inputs,
                    predicate,
                    seed,
                    eps_gp_budget,
                    rows: &mut rows,
                    udf_calls: 0,
                    cap_hits: 0,
                };
                batch_stats = sched.run_two_phase(&mut ops, n)?;
                self.stats.udf_calls += ops.udf_calls;
                self.stats.cap_hits += ops.cap_hits;
                self.stats.tuples_out += rows.len() as u64;
            }
        }
        self.stats.fast_path += batch_stats.fast_path as u64;
        self.stats.slow_path += batch_stats.slow_path as u64;
        Ok((rows, batch_stats))
    }

    fn eval_tuple(
        &mut self,
        tuple: &Tuple,
        call: &UdfCall,
        rng: &mut dyn rand::RngCore,
    ) -> Result<OutputDistribution> {
        let input = call.input_distribution(tuple)?;
        match self.strategy {
            EvalStrategy::Mc => {
                let mc = McEvaluator::new(call.udf.clone());
                Ok(mc.compute(&input, &self.accuracy, rng)?)
            }
            EvalStrategy::Gp => {
                let olga = self.olgapro.as_mut().expect("GP strategy has model");
                let cap_before = olga.stats().cap_hits;
                let out = olga.process(&input, rng)?;
                let cap_delta = olga.stats().cap_hits - cap_before;
                self.stats.cap_hits += cap_delta;
                Ok(out.into_distribution())
            }
        }
    }
}

/// [`BatchOps`] adapter for one GP batch over a relation: fast path =
/// read-only inference, accept hook = optional §5.5 filter + ε_GP budget,
/// slow path = full Algorithm 5 (with filtering when a predicate is
/// attached). Kept rows are pushed in tuple order, so the output relation
/// preserves source order exactly like the sequential executor. Inputs
/// carry their original tuple index (sparse batches evaluate a subset with
/// unchanged seeds — see [`Executor::select_batch_indexed`]).
struct GpRelationOps<'a> {
    olga: &'a mut Olgapro,
    inputs: &'a [(usize, InputDistribution)],
    predicate: Option<Predicate>,
    seed: u64,
    eps_gp_budget: f64,
    rows: &'a mut Vec<ProjectedTuple>,
    udf_calls: u64,
    cap_hits: u64,
}

impl BatchOps for GpRelationOps<'_> {
    fn tuple_seed(&self, idx: usize) -> u64 {
        mix_seed(self.seed, 0, self.inputs[idx].0 as u64)
    }

    fn needs_bootstrap(&self) -> bool {
        self.olga.model().is_empty()
    }

    fn fast(
        &self,
        idx: usize,
        rng: &mut StdRng,
        scratch: &mut InferScratch,
    ) -> udf_core::Result<GpOutput> {
        self.olga.infer_only_with(&self.inputs[idx].1, rng, scratch)
    }

    fn accept(&self, _idx: usize, out: &GpOutput) -> Verdict {
        if let Some(pred) = self.predicate {
            let (_, _, rho_u) = out.tep_bounds(pred.lo, pred.hi);
            if rho_u < pred.theta {
                return Verdict::Filter { rho_upper: rho_u };
            }
        }
        // A full stop-growing model accepts at the achieved bound — the
        // slow path could neither tune nor change the result.
        if out.eps_gp <= self.eps_gp_budget || self.olga.model_full() {
            Verdict::Accept
        } else {
            Verdict::Reroute
        }
    }

    fn emit_fast(&mut self, idx: usize, out: GpOutput) -> udf_core::Result<()> {
        if out.eps_gp > self.eps_gp_budget {
            // Only reachable through the model-full acceptance above.
            self.olga.note_cap_hit();
            self.cap_hits += 1;
        }
        let tep = self
            .predicate
            .map(|p| out.tep_bounds(p.lo, p.hi).1)
            .unwrap_or(1.0);
        self.rows.push(ProjectedTuple {
            source: self.inputs[idx].0,
            output: out.into_distribution(),
            tep,
        });
        Ok(())
    }

    fn slow(&mut self, idx: usize, rng: &mut StdRng) -> udf_core::Result<()> {
        let (source, input) = &self.inputs[idx];
        let cap_before = self.olga.stats().cap_hits;
        match self.predicate {
            Some(pred) => match gp_filtered(self.olga, input, &pred, rng)? {
                FilterDecision::Kept { output, tep } => {
                    self.udf_calls += output.udf_calls;
                    self.rows.push(ProjectedTuple {
                        source: *source,
                        output: output.into_distribution(),
                        tep,
                    });
                }
                FilterDecision::Filtered { udf_calls, .. } => {
                    self.udf_calls += udf_calls;
                }
            },
            None => {
                let out = self.olga.process(input, rng)?;
                self.udf_calls += out.udf_calls;
                self.rows.push(ProjectedTuple {
                    source: *source,
                    output: out.into_distribution(),
                    tep: 1.0,
                });
            }
        }
        // A reroute that crossed the cap mid-tuple is a degraded
        // acceptance too (Algorithm 5 counted it in the core stats).
        self.cap_hits += self.olga.stats().cap_hits - cap_before;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Schema, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udf_core::config::Metric;
    use udf_core::udf::BlackBoxUdf;

    fn rel(n: usize) -> Relation {
        let schema = Schema::new(&["objID", "z"]);
        let tuples = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Det(i as f64),
                    Value::Gaussian {
                        mu: 1.0 + i as f64 * 0.5,
                        sigma: 0.1,
                    },
                ])
            })
            .collect();
        Relation::new(schema, tuples).unwrap()
    }

    fn acc(metric: Metric) -> AccuracyRequirement {
        AccuracyRequirement::new(0.2, 0.05, 0.02, metric).unwrap()
    }

    #[test]
    fn q1_style_projection_mc() {
        let r = rel(4);
        let udf = BlackBoxUdf::from_fn("sq", 1, |x| x[0] * x[0]);
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Mc, acc(Metric::Ks), &call, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = ex.project(&r, &call, &mut rng).unwrap();
        assert_eq!(rows.len(), 4);
        // Output medians should track (1 + 0.5 i)².
        for (i, row) in rows.iter().enumerate() {
            let want = (1.0 + 0.5 * i as f64).powi(2);
            let got = row.output.ecdf.quantile(0.5);
            assert!((got - want).abs() < 0.3, "row {i}: {got} vs {want}");
        }
        assert_eq!(ex.stats().tuples_out, 4);
    }

    #[test]
    fn q1_style_projection_gp_reuses_model() {
        let r = rel(6);
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Gp, acc(Metric::Discrepancy), &call, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let rows = ex.project(&r, &call, &mut rng).unwrap();
        assert_eq!(rows.len(), 6);
        // GP reuse: far fewer UDF calls than MC would need.
        let mc_calls = acc(Metric::Discrepancy).mc_samples() as u64 * 6;
        assert!(
            ex.stats().udf_calls < mc_calls / 10,
            "GP used {} calls, MC would use {}",
            ex.stats().udf_calls,
            mc_calls
        );
    }

    #[test]
    fn q2_style_selection_filters() {
        let r = rel(5);
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Mc, acc(Metric::Ks), &call, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Keep tuples whose z is likely in [2.4, 3.6]: rows with mu 2.5, 3.0 (+3.5 partially).
        let pred = Predicate::new(2.4, 3.6, 0.5).unwrap();
        let rows = ex.select(&r, &call, &pred, &mut rng).unwrap();
        let kept: Vec<usize> = rows.iter().map(|r| r.source).collect();
        assert!(kept.contains(&3), "mu = 2.5 row should survive");
        assert!(!kept.contains(&0), "mu = 1.0 row should be filtered");
        assert!(ex.stats().tuples_out < ex.stats().tuples_in);
        for row in &rows {
            assert!(row.tep >= 0.5 - 0.1, "kept tuple TEP {}", row.tep);
        }
    }

    #[test]
    fn q2_style_selection_gp() {
        let r = rel(5);
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let call = UdfCall::resolve(udf, r.schema(), &["z"]).unwrap();
        let mut ex = Executor::new(EvalStrategy::Gp, acc(Metric::Discrepancy), &call, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // sin output lives in [-1, 1]; ask for an impossible interval.
        let pred = Predicate::new(5.0, 6.0, 0.1).unwrap();
        let rows = ex.select(&r, &call, &pred, &mut rng).unwrap();
        assert!(
            rows.is_empty(),
            "impossible predicate must filter everything"
        );
        assert_eq!(ex.stats().tuples_out, 0);
    }
}
