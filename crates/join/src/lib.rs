//! # udf-join — the uncertain θ-join subsystem
//!
//! The paper's §1 motivating query Q2 is a *self-join*: find galaxy pairs
//! whose `AngDist(a, b)` falls in a range with probability ≥ θ. This crate
//! executes that shape end to end:
//!
//! * a [`JoinSpec`] names the two sides (with column prefixes), an
//!   optional `ON` pair filter over deterministic key columns, the pair
//!   UDF with per-side argument bindings, and the
//!   `Pr[f(a, b) ∈ [lo, hi]] ≥ θ` predicate;
//! * the [`JoinExecutor`] generates candidate pairs and routes them
//!   through the shared [`udf_core::sched::BatchScheduler`] fast/slow
//!   split — one warm OLGAPRO model amortizes across all O(n²) pairs, and
//!   results are byte-identical to running
//!   [`Relation::cross_join`](udf_query::Relation::cross_join) +
//!   [`Executor::select_batch`](udf_query::Executor::select_batch) by
//!   hand, for any worker count;
//! * the **pruning layer** ([`prune`]) indexes each side's input-domain
//!   boxes in the `udf_spatial` R-tree and, once the GP model is warm,
//!   certifies `TEP = 0` (or `= 1`) over a candidate pair's sample box
//!   from the §4.2 envelope band bounds — skipping per-sample inference
//!   entirely for provably-rejectable pairs. Pruning never changes the
//!   result: it only skips pairs the envelope proves the accept hook
//!   would have filtered, which the parity tests pin byte-for-byte.
//!
//! ```
//! use udf_core::config::{AccuracyRequirement, Metric};
//! use udf_core::filtering::Predicate;
//! use udf_core::sched::BatchScheduler;
//! use udf_core::udf::BlackBoxUdf;
//! use udf_join::{JoinExecutor, JoinSpec, Side};
//! use udf_query::{EvalStrategy, Relation, Schema, Tuple, Value};
//!
//! let schema = Schema::new(&["objID", "z"]);
//! let tuples = (0..8)
//!     .map(|i| {
//!         Tuple::new(vec![
//!             Value::Det(i as f64),
//!             Value::Gaussian { mu: 0.2 + 0.2 * i as f64, sigma: 0.02 },
//!         ])
//!     })
//!     .collect();
//! let sky = Relation::new(schema, tuples).unwrap();
//!
//! let zdist = BlackBoxUdf::from_fn("zdist", 2, |x| (x[0] - x[1]).abs());
//! let acc = AccuracyRequirement::new(0.15, 0.05, 0.01, Metric::Discrepancy).unwrap();
//! let spec = JoinSpec::new(&sky, "a", &sky, "b", zdist, &[(Side::Left, "z"), (Side::Right, "z")], acc, 1.5)
//!     .unwrap()
//!     .on_less_than("objID", "objID")
//!     .unwrap()
//!     .predicate(Predicate::new(0.15, 0.25, 0.5).unwrap())
//!     .strategy(EvalStrategy::Gp)
//!     .prune(true)
//!     .seed(7);
//! let sched = BatchScheduler::new(2);
//! let out = JoinExecutor::new(&spec).unwrap().run(&sched).unwrap();
//! assert_eq!(out.stats.pairs_generated, 28); // 8·7/2 ordered pairs
//! assert!(!out.rows.is_empty());
//! ```

pub mod executor;
pub mod prune;
pub mod spec;

pub use executor::{
    warmup_indices, JoinExecutor, JoinMetrics, JoinOutput, JoinStats, JoinedPair, WarmJoinState,
    WarmMode,
};
pub use prune::PairPruner;
pub use spec::{JoinAttr, JoinSpec, OnCondition, Side};

use std::fmt;

/// Errors raised by join construction and execution.
#[derive(Debug)]
pub enum JoinError {
    /// The spec is inconsistent (bad argument binding, pruning without a
    /// predicate, pruning under MC, …).
    InvalidSpec(String),
    /// Relational-layer failure (duplicate columns, pair blowup, …).
    Query(udf_query::QueryError),
    /// Evaluation-framework failure.
    Core(udf_core::CoreError),
    /// Probability-layer failure.
    Prob(udf_prob::ProbError),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::InvalidSpec(m) => write!(f, "invalid join spec: {m}"),
            JoinError::Query(e) => write!(f, "{e}"),
            JoinError::Core(e) => write!(f, "evaluation error: {e}"),
            JoinError::Prob(e) => write!(f, "probability error: {e}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<udf_query::QueryError> for JoinError {
    fn from(e: udf_query::QueryError) -> Self {
        JoinError::Query(e)
    }
}

impl From<udf_core::CoreError> for JoinError {
    fn from(e: udf_core::CoreError) -> Self {
        JoinError::Core(e)
    }
}

impl From<udf_prob::ProbError> for JoinError {
    fn from(e: udf_prob::ProbError) -> Self {
        JoinError::Prob(e)
    }
}

/// Result alias for join operations.
pub type Result<T> = std::result::Result<T, JoinError>;
