//! Envelope-based pair pruning (§4.2 band bounds + §5.5 filtering, applied
//! per candidate pair).
//!
//! Two tiers, split so that *correctness never depends on the cheap tier*:
//!
//! 1. **R-tree screen** — the right side's argument-mean points are
//!    indexed in a [`udf_spatial::RTree`]; its leaf cells cluster nearby
//!    tuples. For each left tuple × right cell, one posterior-mean probe
//!    at the cell's joint center decides whether the cell's pairs are
//!    *worth attempting* to prune (mean far outside the predicate
//!    interval → likely certifiable). A wrong screen costs (or saves)
//!    only certificate attempts, never output rows.
//! 2. **exact per-pair certificate** — draws the pair's canonical Monte
//!    Carlo samples (same seed stream as the fast path would use), takes
//!    their bounding box and the fast path's own `z_α`, and asks
//!    [`envelope_certify_gap`] to prove `ρ_U = 0` from band bounds over the
//!    box. A certified pair is *provably* one the two-phase accept hook
//!    would have filtered at fast-path cost, so skipping it cannot change
//!    any output — the parity tests pin this byte-for-byte. What it saves
//!    is the per-sample local GP inference (the `O(l³)` subset factor
//!    plus `O(l²)` variance per sample), the dominant cost of a filtered
//!    pair.

use crate::spec::{JoinSpec, Side};
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_core::filtering::{envelope_certify_gap, EnvelopeDecision, Predicate};
use udf_core::olgapro::Olgapro;
use udf_core::sched::mix_seed;
use udf_gp::band::simultaneous_z;
use udf_prob::InputDistribution;
use udf_spatial::{BoundingBox, RTree};

/// Screen margin in predicate-interval widths: a cell is worth certifying
/// when the posterior mean at its joint center sits at least this many
/// interval widths outside `[lo, hi]`. Screens are heuristics (see module
/// docs), so this needs to be plausible, not sound.
const SCREEN_MARGIN_WIDTHS: f64 = 1.0;

/// Screen coverage radius: the distance at which the (isotropic) kernel
/// decays to this fraction of its zero-distance value. Beyond it the
/// single-point variance bound is already a sizeable fraction of the
/// prior sd, so certificates rarely decide — screens skip such regions.
const COVERAGE_KERNEL_FRACTION: f64 = 0.9;

/// Distance where `k(r) = COVERAGE_KERNEL_FRACTION · k(0)` (bisection;
/// prior-sd fallback of 0 disables attempts for non-isotropic kernels).
/// Depends only on the model's kernel — compute once per join and pass
/// into every [`PairPruner::attempts`] call.
pub fn coverage_radius(olga: &Olgapro) -> f64 {
    let kernel = olga.model().kernel();
    let Some(k0) = kernel.eval_dist(0.0) else {
        return 0.0;
    };
    let target = COVERAGE_KERNEL_FRACTION * k0;
    let mut hi = 1.0;
    while kernel.eval_dist(hi).expect("isotropic") > target && hi < 1e6 {
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if kernel.eval_dist(mid).expect("isotropic") > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The joint input distribution of pair `(i, j)` — bit-identical to what
/// [`udf_query::UdfCall::input_distribution`] builds on the concatenated
/// tuple, without materializing it.
pub fn pair_input(spec: &JoinSpec<'_>, i: usize, j: usize) -> Result<InputDistribution> {
    let marginals = spec
        .arg_values(i, j)
        .iter()
        .map(|v| v.marginal())
        .collect::<udf_query::Result<Vec<_>>>()?;
    Ok(InputDistribution::independent(marginals)?)
}

/// One right-side leaf cell of the screen index.
struct Cell {
    /// Box over member argument-mean points (right-arg dims only).
    bbox: BoundingBox,
    /// Member right-tuple indices.
    members: Vec<usize>,
}

/// The pruning context for one join: the right side's screen index plus
/// the argument layout needed to assemble joint boxes in call order.
pub struct PairPruner {
    cells: Vec<Cell>,
    /// For each UDF argument: `Some(r)` when it is the `r`-th *right*-side
    /// argument (its dimension in the cell boxes), `None` for left args.
    right_pos: Vec<Option<usize>>,
}

impl PairPruner {
    /// Index the right side's argument means in an R-tree and snapshot its
    /// leaf cells.
    pub fn new(spec: &JoinSpec<'_>) -> Self {
        let mut right_pos = Vec::with_capacity(spec.args.len());
        let mut right_args = Vec::new();
        for a in &spec.args {
            match a.side {
                Side::Left => right_pos.push(None),
                Side::Right => {
                    right_pos.push(Some(right_args.len()));
                    right_args.push(a.index);
                }
            }
        }
        let nr = spec.right.len();
        let cells = if right_args.is_empty() || nr == 0 {
            // Degenerate: no right-side argument dims to cluster on — one
            // cell holding everyone (the screen reduces to the left point).
            vec![Cell {
                bbox: BoundingBox::from_point(&[]),
                members: (0..nr).collect(),
            }]
        } else {
            let points: Vec<(Vec<f64>, usize)> = (0..nr)
                .map(|j| {
                    let t = &spec.right.tuples()[j];
                    (right_args.iter().map(|&c| t.value(c).mean()).collect(), j)
                })
                .collect();
            let tree = RTree::bulk_load(right_args.len(), points);
            tree.leaf_groups()
                .into_iter()
                .map(|(bbox, members)| Cell { bbox, members })
                .collect()
        };
        PairPruner { cells, right_pos }
    }

    /// Number of screen cells (R-tree leaves) on the right side.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Screen left tuple `i` against every right cell: returns, per right
    /// tuple `j`, whether the exact per-pair certificate is worth
    /// attempting (the posterior mean at the cell's joint center sits well
    /// outside the predicate interval). Purely advisory — see the module
    /// docs.
    pub fn attempts(
        &self,
        spec: &JoinSpec<'_>,
        i: usize,
        olga: &Olgapro,
        pred: &Predicate,
        coverage: f64,
    ) -> Vec<bool> {
        let mut attempt = vec![false; spec.right.len()];
        let margin = SCREEN_MARGIN_WIDTHS * (pred.hi - pred.lo);
        for cell in &self.cells {
            let center = self.cell_center(spec, i, cell);
            let Ok(mean) = olga.model().predict_mean(&center) else {
                continue; // cold model: nothing is certifiable anyway
            };
            // Certificates only succeed where the band is tight: the mean
            // must sit well outside the interval AND the model must have
            // training data near the region (queried through the model's
            // own R-tree) — otherwise the sd bound is prior-wide and the
            // attempt is wasted work.
            if (mean < pred.lo - margin || mean > pred.hi + margin)
                && !olga
                    .model()
                    .spatial_index()
                    .query_within(&BoundingBox::from_point(&center), coverage)
                    .is_empty()
            {
                for &j in &cell.members {
                    attempt[j] = true;
                }
            }
        }
        attempt
    }

    /// The joint center of left tuple `i` × a right cell, in UDF-argument
    /// order: left argument means plus the cell box's midpoints.
    fn cell_center(&self, spec: &JoinSpec<'_>, i: usize, cell: &Cell) -> Vec<f64> {
        let left = &spec.left.tuples()[i];
        spec.args
            .iter()
            .zip(&self.right_pos)
            .map(|(a, rp)| match rp {
                None => left.value(a.index).mean(),
                Some(r) => 0.5 * (cell.bbox.lo()[*r] + cell.bbox.hi()[*r]),
            })
            .collect()
    }

    /// The exact certificate for pair `(i, j)` at global pair index `idx`:
    /// draw the pair's canonical samples, bracket the band over their
    /// bounding box with the fast path's own `z_α`, and decide. Returns
    /// the decision, the root-box `bound_gap` diagnostic (how far the
    /// bracket was from any certificate — see
    /// [`envelope_certify_gap`]), and the pair's input distribution
    /// (reused by the caller when the pair must be evaluated after all).
    pub fn certify_pair(
        &self,
        spec: &JoinSpec<'_>,
        olga: &Olgapro,
        pred: &Predicate,
        i: usize,
        j: usize,
        idx: usize,
    ) -> Result<(EnvelopeDecision, f64, InputDistribution)> {
        let input = pair_input(spec, i, j)?;
        let m = olga.config().samples_per_input();
        let delta_gp = olga.config().split().delta_gp;
        let mut rng = StdRng::seed_from_u64(mix_seed(spec.seed, 0, idx as u64));
        let samples = input.sample_n(&mut rng, m);
        let bbox = BoundingBox::from_points(samples.iter().map(|s| s.as_slice()));
        let z = simultaneous_z(olga.model().kernel(), &bbox, delta_gp);
        let (decision, gap) = envelope_certify_gap(olga, &bbox, z, pred);
        Ok((decision, gap, input))
    }
}
