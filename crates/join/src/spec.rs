//! The declarative description of one uncertain θ-join.

use crate::{JoinError, Result};
use udf_core::config::{AccuracyRequirement, ModelBudget};
use udf_core::filtering::Predicate;
use udf_core::udf::BlackBoxUdf;
use udf_query::{EvalStrategy, Relation, Schema, Tuple, Value};

/// Which join side an argument or key column is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left relation.
    Left,
    /// The right relation.
    Right,
}

/// One UDF argument (or ON operand): a resolved column on one side.
#[derive(Debug, Clone)]
pub struct JoinAttr {
    /// Which side the column lives on.
    pub side: Side,
    /// Column index into that side's schema.
    pub index: usize,
    /// Column name (unqualified).
    pub name: String,
}

/// The pair filter `mean(lhs) < mean(rhs)` over key columns — Q2's
/// `a.objID < b.objID` self-join deduplication. Means make deterministic
/// key columns compare exactly; on uncertain columns this compares
/// expected values (document your keys).
#[derive(Debug, Clone)]
pub struct OnCondition {
    /// Left operand of `<`.
    pub lhs: JoinAttr,
    /// Right operand of `<`.
    pub rhs: JoinAttr,
}

impl OnCondition {
    /// Evaluate the filter for the pair `(left_tuple, right_tuple)`.
    pub fn keep(&self, left: &Tuple, right: &Tuple) -> bool {
        let value = |attr: &JoinAttr| -> f64 {
            match attr.side {
                Side::Left => left.value(attr.index).mean(),
                Side::Right => right.value(attr.index).mean(),
            }
        };
        value(&self.lhs) < value(&self.rhs)
    }
}

/// Everything one uncertain θ-join needs: sides with prefixes, pair
/// filter, pair UDF with per-side argument bindings, the PR predicate,
/// and execution knobs. Build with [`JoinSpec::new`] and the chained
/// setters; [`crate::JoinExecutor::new`] validates cross-field rules
/// (pruning requires GP + a predicate).
#[derive(Debug)]
pub struct JoinSpec<'a> {
    /// Left relation.
    pub left: &'a Relation,
    /// Column prefix for the left side (the UQL alias).
    pub left_prefix: String,
    /// Right relation.
    pub right: &'a Relation,
    /// Column prefix for the right side.
    pub right_prefix: String,
    /// Optional `ON lhs < rhs` pair filter.
    pub on: Option<OnCondition>,
    /// The pair UDF.
    pub udf: BlackBoxUdf,
    /// Resolved UDF arguments, in call order.
    pub args: Vec<JoinAttr>,
    /// `Pr[f ∈ [lo, hi]] ≥ θ` selection; `None` makes the join a pure
    /// pair projection.
    pub predicate: Option<Predicate>,
    /// Evaluation strategy for pair outputs.
    pub strategy: EvalStrategy,
    /// Accuracy requirement per pair.
    pub accuracy: AccuracyRequirement,
    /// Output-spread estimate (scales Γ and λ on the GP path).
    pub output_range: f64,
    /// GP model cap (0 = uncapped), enforced through
    /// [`udf_query::Executor::with_model_cap`].
    pub model_cap: usize,
    /// Per-pair online-tuning budget (`None` = engine default 10). O(n²)
    /// joins over wide input domains pair a small budget with a model
    /// cap so the strided warmup *spreads* training points across the
    /// domain instead of exhausting the cap on its first fresh regions.
    pub tuning_budget: Option<usize>,
    /// Enable envelope-based pair pruning (GP + predicate only).
    pub prune: bool,
    /// Master RNG seed; pair `k` evaluates under
    /// [`mix_seed`](udf_core::sched::mix_seed)`(seed, 0, k)`.
    pub seed: u64,
}

impl<'a> JoinSpec<'a> {
    /// Build a spec, resolving `args` as `(side, column_name)` pairs
    /// against the respective schemas and checking the UDF arity.
    #[allow(clippy::too_many_arguments)] // a spec constructor names its parts
    pub fn new(
        left: &'a Relation,
        left_prefix: impl Into<String>,
        right: &'a Relation,
        right_prefix: impl Into<String>,
        udf: BlackBoxUdf,
        args: &[(Side, &str)],
        accuracy: AccuracyRequirement,
        output_range: f64,
    ) -> Result<Self> {
        let left_prefix = left_prefix.into();
        let right_prefix = right_prefix.into();
        if args.len() != udf.dim() {
            return Err(JoinError::InvalidSpec(format!(
                "UDF `{}` takes {} argument(s), got {}",
                udf.name(),
                udf.dim(),
                args.len()
            )));
        }
        let args = args
            .iter()
            .map(|&(side, name)| resolve(left, right, side, name))
            .collect::<Result<Vec<_>>>()?;
        Ok(JoinSpec {
            left,
            left_prefix,
            right,
            right_prefix,
            on: None,
            udf,
            args,
            predicate: None,
            strategy: EvalStrategy::Gp,
            accuracy,
            output_range,
            model_cap: 0,
            tuning_budget: None,
            prune: false,
            seed: 0,
        })
    }

    /// Add `ON left.lhs < right.rhs` (left column vs right column — pass a
    /// full [`OnCondition`] via [`on`](JoinSpec::on) for other pairings).
    pub fn on_less_than(self, lhs: &str, rhs: &str) -> Result<Self> {
        let lhs = resolve(self.left, self.right, Side::Left, lhs)?;
        let rhs = resolve(self.left, self.right, Side::Right, rhs)?;
        Ok(self.on(OnCondition { lhs, rhs }))
    }

    /// Attach a pre-resolved pair filter.
    pub fn on(mut self, on: OnCondition) -> Self {
        self.on = Some(on);
        self
    }

    /// Attach the PR predicate.
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Choose the evaluation strategy (default GP).
    pub fn strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Toggle envelope pruning (default off).
    pub fn prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Set the master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap the GP model (0 = uncapped, the default; policy is
    /// [`ModelBudget::StopGrowing`] like the UQL surface).
    pub fn model_cap(mut self, cap: usize) -> Self {
        self.model_cap = cap;
        self
    }

    /// Cap the per-pair online-tuning budget (engine default 10).
    pub fn tuning_budget(mut self, n: usize) -> Self {
        self.tuning_budget = Some(n);
        self
    }

    /// The model budget policy joins run under.
    pub fn budget(&self) -> ModelBudget {
        ModelBudget::StopGrowing
    }

    /// The joined (prefixed) output schema — also validates that the
    /// prefixes do not collide.
    pub fn joined_schema(&self) -> Result<Schema> {
        Ok(self
            .left
            .schema()
            .join(&self.left_prefix, self.right.schema(), &self.right_prefix)?)
    }

    /// Qualified argument names against [`joined_schema`](JoinSpec::joined_schema),
    /// e.g. `a.z`, `b.z`.
    pub fn qualified_args(&self) -> Vec<String> {
        self.args
            .iter()
            .map(|a| match a.side {
                Side::Left => format!("{}.{}", self.left_prefix, a.name),
                Side::Right => format!("{}.{}", self.right_prefix, a.name),
            })
            .collect()
    }

    /// Candidate-pair filter for `(i, j)` (the `ON` condition, or
    /// everything when absent).
    pub fn keep(&self, i: usize, j: usize) -> bool {
        match &self.on {
            None => true,
            Some(on) => on.keep(&self.left.tuples()[i], &self.right.tuples()[j]),
        }
    }

    /// The argument values of pair `(i, j)`, in call order.
    pub fn arg_values(&self, i: usize, j: usize) -> Vec<&Value> {
        self.args
            .iter()
            .map(|a| match a.side {
                Side::Left => self.left.tuples()[i].value(a.index),
                Side::Right => self.right.tuples()[j].value(a.index),
            })
            .collect()
    }
}

fn resolve(left: &Relation, right: &Relation, side: Side, name: &str) -> Result<JoinAttr> {
    let schema = match side {
        Side::Left => left.schema(),
        Side::Right => right.schema(),
    };
    let index = schema.index_of(name)?;
    Ok(JoinAttr {
        side,
        index,
        name: name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_core::config::Metric;
    use udf_query::Schema;

    fn rel() -> Relation {
        let tuples = (0..3)
            .map(|i| {
                Tuple::new(vec![
                    Value::Det(i as f64),
                    Value::Gaussian {
                        mu: i as f64,
                        sigma: 0.1,
                    },
                ])
            })
            .collect();
        Relation::new(Schema::new(&["id", "z"]), tuples).unwrap()
    }

    fn acc() -> AccuracyRequirement {
        AccuracyRequirement::new(0.2, 0.05, 0.01, Metric::Discrepancy).unwrap()
    }

    #[test]
    fn resolves_args_and_checks_arity() {
        let r = rel();
        let udf = BlackBoxUdf::from_fn("d", 2, |x| x[0] - x[1]);
        let spec = JoinSpec::new(
            &r,
            "a",
            &r,
            "b",
            udf.clone(),
            &[(Side::Left, "z"), (Side::Right, "z")],
            acc(),
            1.0,
        )
        .unwrap();
        assert_eq!(spec.qualified_args(), vec!["a.z", "b.z"]);
        assert_eq!(spec.args[0].index, 1);
        // Wrong arity.
        assert!(matches!(
            JoinSpec::new(
                &r,
                "a",
                &r,
                "b",
                udf.clone(),
                &[(Side::Left, "z")],
                acc(),
                1.0
            ),
            Err(JoinError::InvalidSpec(_))
        ));
        // Unknown column.
        assert!(matches!(
            JoinSpec::new(
                &r,
                "a",
                &r,
                "b",
                udf,
                &[(Side::Left, "z"), (Side::Right, "nope")],
                acc(),
                1.0
            ),
            Err(JoinError::Query(_))
        ));
    }

    #[test]
    fn on_condition_filters_pairs() {
        let r = rel();
        let udf = BlackBoxUdf::from_fn("d", 2, |x| x[0] - x[1]);
        let spec = JoinSpec::new(
            &r,
            "a",
            &r,
            "b",
            udf,
            &[(Side::Left, "z"), (Side::Right, "z")],
            acc(),
            1.0,
        )
        .unwrap()
        .on_less_than("id", "id")
        .unwrap();
        let kept: Vec<(usize, usize)> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .filter(|&(i, j)| spec.keep(i, j))
            .collect();
        assert_eq!(kept, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn joined_schema_rejects_equal_prefixes() {
        let r = rel();
        let udf = BlackBoxUdf::from_fn("d", 2, |x| x[0] - x[1]);
        let spec = JoinSpec::new(
            &r,
            "g",
            &r,
            "g",
            udf,
            &[(Side::Left, "z"), (Side::Right, "z")],
            acc(),
            1.0,
        )
        .unwrap();
        assert!(matches!(
            spec.joined_schema(),
            Err(JoinError::Query(udf_query::QueryError::DuplicateColumn(_)))
        ));
    }
}
